"""A1 — ablation of phi (equivalently eta): the edge-threshold constant
of the G_net construction (equations (3)-(4)).

The proof of Lemma 2.2 needs ``phi >= 1 + 2^(eta+1)`` with
``eta = ceil(log2(1 + 2/eps))``.  What if we shrink it?  Smaller
multipliers give smaller graphs — until navigability snaps.  This
ablation quantifies how much of phi is safety margin on benign data and
demonstrates (on an adversarial input) that the prescribed value is not
arbitrary."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.graphs import find_violations
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters, build_gnet, gnet_parameters
from repro.nets import NetHierarchy
from repro.workloads import (
    exponential_cluster_chain,
    make_dataset,
    uniform_queries,
)


def _build_with_phi_multiplier(ds, eps, multiplier):
    """Rebuild G_net with phi scaled by `multiplier` (< 1 = under-pruned)."""
    hier = NetHierarchy(ds)
    base = gnet_parameters(eps, 2.0 * hier.max_insertion_distance)
    params = GNetParameters(
        epsilon=eps,
        height=base.height,
        eta=base.eta,
        phi=base.phi * multiplier,
    )
    out_sets = [set() for _ in range(ds.n)]
    for i in range(params.height + 1):
        level = hier.level(i)
        radius = params.level_radius(i)
        for p in range(ds.n):
            d = ds.distances_from_index(p, level)
            for y in level[d <= radius]:
                if int(y) != p:
                    out_sets[p].add(int(y))
    return ProximityGraph.from_sets(ds.n, out_sets), params


def test_phi_ablation(benchmark, bench_rng):
    eps = 1.0
    pts = exponential_cluster_chain(8, 30, np.random.default_rng(9))
    ds = make_dataset(pts)
    queries = list(uniform_queries(120, np.asarray(ds.points), bench_rng))
    queries += [np.asarray(ds.points)[i] for i in range(0, ds.n, 5)]

    rows = []
    edges_at = {}
    violations_at = {}
    for mult in [1.0, 0.5, 0.25, 0.12, 0.06]:
        graph, params = _build_with_phi_multiplier(ds, eps, mult)
        v = find_violations(graph, ds, queries, eps, stop_at=None)
        edges_at[mult] = graph.num_edges
        violations_at[mult] = len(v)
        rows.append(
            [mult, round(params.phi, 2), graph.num_edges,
             graph.min_out_degree(), len(v)]
        )
    write_table(
        "ablation_phi",
        "A1: shrinking the phi threshold (eps=1, cluster chain)",
        ["phi multiplier", "phi", "edges", "min degree", "violations"],
        rows,
        notes=(
            "At multiplier 1.0 violations must be 0 (Theorem 1.1); as the "
            "threshold shrinks the graph thins and navigability eventually "
            "breaks — phi is load-bearing, not slack to be tuned away."
        ),
    )
    assert violations_at[1.0] == 0
    assert edges_at[0.06] < edges_at[1.0]
    assert violations_at[0.06] > 0, (
        "expected navigability failures at 6% of the prescribed phi"
    )

    benchmark.pedantic(
        lambda: _build_with_phi_multiplier(ds, eps, 0.5), rounds=1, iterations=1
    )


def test_reference_gnet_matches_multiplier_one(benchmark, bench_rng):
    """Sanity: the ablation harness at multiplier 1.0 reproduces the real
    builder's graph exactly."""
    pts = exponential_cluster_chain(4, 20, np.random.default_rng(9))
    ds = make_dataset(pts)
    ablation_graph, _ = _build_with_phi_multiplier(ds, 1.0, 1.0)
    reference = build_gnet(ds, 1.0, method="vectorized")
    assert ablation_graph == reference.graph

    benchmark.pedantic(
        lambda: build_gnet(ds, 1.0, method="vectorized"), rounds=1, iterations=1
    )
