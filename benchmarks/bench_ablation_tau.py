"""A2 — ablation of the jackpot rate tau = z/log2(Delta) (equation (17)).

Sweeping z trades edges against greedy speed: z -> 0 degenerates to the
bare theta-graph (small, slow), z -> infinity to the full merge with all
of G_net (big, fast).  The sweet spot the paper proves is z = Theta(1):
O((1/eps)^lambda n) edges and polylog query time simultaneously."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.core import measure_queries
from repro.graphs import build_gnet, build_merged_graph, build_theta_graph
from repro.workloads import exponential_cluster_chain, make_dataset, uniform_queries

EPS = 1.0
THETA = 0.25


def test_tau_sweep(benchmark, bench_rng):
    pts = exponential_cluster_chain(12, 25, np.random.default_rng(13), base=2.5)
    ds = make_dataset(pts)
    gnet = build_gnet(ds, EPS, method="grid")
    geo = build_theta_graph(ds, THETA, method="sweep")
    queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
    starts = list(bench_rng.integers(ds.n, size=len(queries)))

    rows = []
    evals_by_z = {}
    edges_by_z = {}
    for z in [0.25, 1.0, 3.0, 10.0, 1e9]:
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(21), gnet=gnet, geo=geo, z=z, runs=3
        )
        stats = measure_queries(
            merged.graph, ds, queries, epsilon=EPS, starts=starts
        )
        evals_by_z[z] = stats.mean_distance_evals
        edges_by_z[z] = merged.graph.num_edges
        rows.append(
            [
                "inf" if z > 1e6 else z,
                round(merged.tau, 3),
                merged.graph.num_edges,
                round(stats.mean_distance_evals, 1),
                round(stats.mean_hops, 1),
                round(stats.epsilon_satisfied_fraction, 3),
            ]
        )
        assert stats.epsilon_satisfied_fraction == 1.0  # guarantee is tau-free
    write_table(
        "ablation_tau",
        f"A2: jackpot-rate sweep on the merged graph (eps={EPS})",
        ["z", "tau", "edges", "evals/query", "hops/query", "eps_ok"],
        rows,
        notes=(
            "Correctness never depends on tau (G_geo's edges stay); edges "
            "grow with z while hops shrink — z = Theta(1) is the proven "
            "sweet spot (equation (17))."
        ),
    )
    assert edges_by_z[0.25] <= edges_by_z[1e9]
    assert evals_by_z[1e9] <= evals_by_z[0.25] * 1.5  # speed not worse with all edges

    benchmark.pedantic(
        lambda: build_merged_graph(
            ds, EPS, np.random.default_rng(21), gnet=gnet, geo=geo, z=3.0, runs=3
        ),
        rounds=1,
        iterations=1,
    )


def test_hops_shrink_with_tau(benchmark, bench_rng):
    """The speed mechanism isolated: on a worst-path query, hop counts
    fall as jackpot density rises."""
    pts = exponential_cluster_chain(20, 6, np.random.default_rng(17), base=2.5)
    ds = make_dataset(pts)
    gnet = build_gnet(ds, EPS, method="grid")
    geo = build_theta_graph(ds, THETA, method="sweep")
    coords = np.asarray(ds.points)
    q = coords[np.argmax(coords[:, 0])] + np.array([5.0, 0.0])
    start = int(np.argmin(coords[:, 0]))

    rows = []
    hops_by_z = {}
    for z in [0.25, 2.0, 1e9]:
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(29), gnet=gnet, geo=geo, z=z, runs=1
        )
        stats = measure_queries(
            merged.graph, ds, [q], epsilon=EPS, starts=[start]
        )
        hops_by_z[z] = stats.max_hops
        rows.append(["inf" if z > 1e6 else z, round(merged.tau, 3), stats.max_hops])
    write_table(
        "ablation_tau_hops",
        "A2b: worst-path hops vs jackpot density",
        ["z", "tau", "hops"],
        rows,
        notes="denser jackpots = more expressways = fewer hops",
    )
    assert hops_by_z[1e9] <= hops_by_z[0.25]

    benchmark.pedantic(
        lambda: build_merged_graph(
            ds, EPS, np.random.default_rng(29), gnet=gnet, geo=geo, z=2.0, runs=1
        ),
        rounds=1,
        iterations=1,
    )
