"""A3 — ablation of the cone angle theta (Lemma 5.1 prescribes eps/32).

The 1/32 constant is what the Appendix E geometry needs in the worst
case; on benign data much wider cones stay navigable.  This ablation maps
where violations actually appear as theta grows, quantifying the gap
between the proven constant and empirical robustness — useful guidance
for practitioners trading edges for risk."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.graphs import build_theta_graph, find_violations, theta_for_epsilon
from repro.workloads import make_dataset, uniform_cube, uniform_queries

EPS = 0.25


def test_theta_sweep_on_benign_data(benchmark, bench_rng):
    pts = uniform_cube(250, 2, np.random.default_rng(31))
    ds = make_dataset(pts)
    queries = list(uniform_queries(120, np.asarray(ds.points), bench_rng))
    queries += [np.asarray(ds.points)[i] for i in range(0, ds.n, 10)]

    prescribed = theta_for_epsilon(EPS)
    rows = []
    for mult in [1, 8, 32, 64, 128, 256]:
        theta = prescribed * mult
        res = build_theta_graph(ds, theta, method="sweep")
        v = find_violations(res.graph, ds, queries, EPS, stop_at=None)
        rows.append(
            [
                mult,
                round(theta, 4),
                res.cones.num_cones,
                res.graph.num_edges,
                len(v),
            ]
        )
    write_table(
        "ablation_theta",
        f"A3: cone-angle sweep at eps={EPS} (uniform R^2; prescribed "
        f"theta = eps/32 = {prescribed:.4f})",
        ["x prescribed", "theta", "cones", "edges", "violations"],
        rows,
        notes=(
            "At the prescribed angle violations must be 0 (Lemma 5.1).  The "
            "first failures appear only far above it on benign data — the "
            "1/32 is a worst-case constant, not a practical tuning point."
        ),
    )
    assert rows[0][-1] == 0, "Lemma 5.1's angle must be violation-free"
    edge_counts = [r[3] for r in rows]
    assert edge_counts == sorted(edge_counts, reverse=True), (
        "wider cones must mean fewer edges"
    )

    benchmark.pedantic(
        lambda: build_theta_graph(ds, prescribed * 32, method="sweep"),
        rounds=1,
        iterations=1,
    )


def test_theta_failure_threshold_on_adversarial_data(benchmark, bench_rng):
    """On a ring-plus-core input wide cones demonstrably break: find the
    failure and confirm the prescribed angle survives the same queries."""
    angles = np.linspace(0, 2 * np.pi, 80, endpoint=False)
    ring = np.stack([np.cos(angles), np.sin(angles)], axis=1) * 200.0
    core = np.random.default_rng(37).normal(size=(30, 2))
    ds = make_dataset(np.vstack([ring, core]))
    eps = 0.05
    queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
    queries += [np.asarray(ds.points)[i] * 1.001 for i in range(0, ds.n, 4)]

    wide = build_theta_graph(ds, 2.0, method="vectorized")
    wide_violations = find_violations(wide.graph, ds, queries, eps, stop_at=None)

    prescribed = build_theta_graph(ds, theta_for_epsilon(eps), method="sweep")
    safe_violations = find_violations(
        prescribed.graph, ds, queries, eps, stop_at=None
    )
    rows = [
        ["2.0 (wide)", wide.cones.num_cones, wide.graph.num_edges,
         len(wide_violations)],
        [f"{theta_for_epsilon(eps):.5f} (eps/32)", prescribed.cones.num_cones,
         prescribed.graph.num_edges, len(safe_violations)],
    ]
    write_table(
        "ablation_theta_adversarial",
        f"A3b: wide vs prescribed cones on ring-plus-core (eps={eps})",
        ["theta", "cones", "edges", "violations"],
        rows,
        notes="the wide setting must fail; the prescribed one must not",
    )
    assert len(wide_violations) > 0
    assert len(safe_violations) == 0

    benchmark.pedantic(
        lambda: build_theta_graph(ds, 2.0, method="vectorized"),
        rounds=1,
        iterations=1,
    )
