"""E10 — compiled traversal kernels vs the pinned numpy batch engine.

The accel backends (:mod:`repro.accel`) run the whole beam/greedy
traversal per batch in compiled code — CSR gather, array heaps,
generation-stamped visited sets, inline distances — and are required to
be *bit-identical* to the numpy engines: same ids, same distances, same
evaluation counts, on every workload they accept.  So this bench gates
two claims at once:

* **speedup** — the headline 20k-point Euclidean workload (vamana,
  ``k=10``, equal beam width) must clear 3x single-thread QPS over the
  numpy engine on whichever compiled backend is available (numba when
  installed, else the cffi C backend; the gate is skipped when neither
  can compile here);
* **equivalence** — recall@10 is computed from both result sets and
  asserted *equal* (not merely close), and a 3-seed sweep asserts
  bit-identity of ids/distances/evals across beam and greedy.

``results/bench_accel.json`` records the run.  JIT/C compile time is
reported separately (``jit_compile_seconds``) and one untimed warm-up
batch runs per backend before its clock starts.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import accel
from repro.core.index import ProximityGraphIndex
from repro.core.search import SearchParams
from repro.core.stats import compute_ground_truth_k
from repro.metrics.base import Dataset
from repro.metrics.euclidean import EuclideanMetric
from repro.workloads import uniform_cube, uniform_queries

N = 20_000
M = 1_000
K = 10
BEAM = 32
EPS = 1.0
SPEEDUP_FLOOR = 3.0


def _best_compiled() -> str | None:
    for name in ("numba", "cffi"):
        if name in accel.available_backends():
            return name
    return None


def _timed_search(index, queries, params) -> tuple:
    """(result, qps) with one untimed warm-up batch before the clock."""
    warm = min(len(queries), 64)
    index.search(queries[:warm], k=K, params=params)
    t0 = time.perf_counter()
    result = index.search(queries, k=K, params=params)
    return result, len(queries) / (time.perf_counter() - t0)


def _recall(result, gt) -> float:
    hits = sum(
        len(set(result.ids[i].tolist()) & set(gt[i].tolist()))
        for i in range(result.m)
    )
    return hits / (result.m * K)


def test_accel_speedup_20k(bench_rng):
    """Headline gate: >= 3x QPS at bit-identical results on 20k points."""
    compiled = _best_compiled()
    points = uniform_cube(N, 2, np.random.default_rng(7))
    queries = uniform_queries(M, points, bench_rng)
    gt, _ = compute_ground_truth_k(
        Dataset(EuclideanMetric(), points), queries, k=K
    )
    index = ProximityGraphIndex.build(
        points, epsilon=EPS, method="vamana", seed=42
    )

    base = SearchParams(mode="beam", beam_width=BEAM, seed=0, backend="numpy")
    numpy_res, numpy_qps = _timed_search(index, queries, base)
    record = {
        "n": N,
        "queries": M,
        "k": K,
        "beam_width": BEAM,
        "method": "vamana",
        "numpy_qps": round(numpy_qps, 1),
        "recall_at_10": round(_recall(numpy_res, gt), 4),
        "compiled_backend": compiled,
    }

    rows = [["numpy", round(numpy_qps, 0), 1.0,
             record["recall_at_10"], "-", 0.0]]
    if compiled is not None:
        compile_s = accel.warm(compiled)["compile_seconds"]
        params = SearchParams(
            mode="beam", beam_width=BEAM, seed=0, backend=compiled
        )
        res, qps = _timed_search(index, queries, params)
        identical = (
            np.array_equal(res.ids, numpy_res.ids)
            and np.array_equal(res.distances, numpy_res.distances)
            and np.array_equal(res.evals, numpy_res.evals)
        )
        speedup = qps / numpy_qps
        record.update(
            {
                "compiled_qps": round(qps, 1),
                "speedup": round(speedup, 2),
                "jit_compile_seconds": round(compile_s, 3),
                "bit_identical": identical,
                "compiled_recall_at_10": round(_recall(res, gt), 4),
            }
        )
        rows.append([compiled, round(qps, 0), round(speedup, 2),
                     record["compiled_recall_at_10"], identical,
                     round(compile_s, 3)])

    write_table(
        "bench_accel",
        f"E10: compiled traversal kernels (n={N}, k={K}, beam={BEAM})",
        ["backend", "qps", "speedup", "recall@10", "bit-identical",
         "compile s"],
        rows,
        notes=(
            "acceptance: the compiled backend must clear "
            f"{SPEEDUP_FLOOR}x single-thread QPS over the numpy engine at "
            "equal beam width, with bit-identical results (ids, distances, "
            "eval counts) — recall@10 is therefore *equal*, not merely "
            "close.  JIT/C compile time is excluded from the QPS window."
        ),
    )
    _write_json("euclidean_20k", record)

    if compiled is None:
        pytest.skip("no compiled accel backend available here")
    assert record["bit_identical"], f"{compiled} diverged from numpy"
    assert record["compiled_recall_at_10"] == record["recall_at_10"]
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"only {record['speedup']:.2f}x on the 20k workload"
    )


def test_accel_bit_identity_3seed(bench_rng):
    """3-seed equivalence sweep: every warmable backend vs numpy, beam
    and greedy, on a clustered 2k workload."""
    backends = [b for b in ("numba", "cffi", "python")
                if b in accel.available_backends()]
    if not backends:
        pytest.skip("no accel backend available here")
    points = uniform_cube(2_000, 3, np.random.default_rng(3))
    index = ProximityGraphIndex.build(
        points, epsilon=EPS, method="vamana", seed=42
    )
    queries = uniform_queries(200, points, bench_rng)
    seeds_green = []
    for seed in (0, 1, 2):
        for mode, k in (("beam", K), ("greedy", 1)):
            ref = index.search(
                queries, k=k,
                params=SearchParams(mode=mode, seed=seed, backend="numpy"),
            )
            for b in backends:
                got = index.search(
                    queries, k=k,
                    params=SearchParams(mode=mode, seed=seed, backend=b),
                )
                assert np.array_equal(got.ids, ref.ids), (b, mode, seed)
                assert np.array_equal(got.distances, ref.distances), (
                    b, mode, seed,
                )
                assert np.array_equal(got.evals, ref.evals), (b, mode, seed)
        seeds_green.append(seed)
    _write_json(
        "bit_identity_3seed",
        {"backends": backends, "seeds": seeds_green, "modes": ["beam", "greedy"],
         "n": 2_000, "queries": 200, "identical": True},
    )


def _write_json(key: str, record) -> None:
    """Merge one record into results/bench_accel.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_accel.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")
