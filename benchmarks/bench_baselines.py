"""E8 — the systems-context table: every construction in the library on
one clustered workload.

Columns follow the paper's cost model: space = edges, query time =
distance evaluations of the method's own search procedure, plus build
time and empirical quality.  The guaranteed methods (gnet, merged,
theta, diskann) must hit eps on every query; the empirical systems
(HNSW, NSW) are allowed to miss — that gap is the paper's motivation."""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_table
from repro.core import build, compute_ground_truth, measure_queries
from repro.workloads import gaussian_clusters, make_dataset, uniform_queries

EPS = 1.0
N = 1000


def test_baseline_comparison(benchmark, bench_rng):
    ds = make_dataset(gaussian_clusters(N, 2, np.random.default_rng(1), clusters=8))
    queries = list(uniform_queries(80, np.asarray(ds.points), bench_rng))
    # One exact-NN scan serves every builder below.
    gt = compute_ground_truth(ds, queries)

    configs = [
        ("gnet", {}),
        ("merged", {"theta": 0.25, "gnet_method": "grid", "theta_method": "sweep"}),
        ("theta", {"theta": 0.25, "method": "sweep"}),
        ("diskann", {}),
        ("vamana", {"max_degree": 16}),
        ("hnsw", {"m": 8, "ef_construction": 64}),
        ("nsw", {"m": 8, "ef_construction": 32}),
        ("knn", {"k": 8}),
    ]
    rows = []
    for name, opts in configs:
        rng = np.random.default_rng(42)
        t0 = time.perf_counter()
        built = build(name, ds, EPS, rng, **opts)
        build_s = time.perf_counter() - t0
        stats = measure_queries(built.graph, ds, queries, epsilon=EPS, ground_truth=gt)
        rows.append(
            [
                name + ("*" if built.guaranteed else ""),
                built.graph.num_edges,
                built.graph.max_out_degree(),
                round(build_s, 2),
                round(stats.mean_distance_evals, 1),
                round(stats.recall_at_1, 3),
                round(stats.epsilon_satisfied_fraction, 3),
            ]
        )
        if built.guaranteed and name != "theta":
            assert stats.epsilon_satisfied_fraction == 1.0, f"{name} broke eps"
    # theta with the generous demo angle is not covered by Lemma 5.1's
    # guarantee; report it but don't assert.
    write_table(
        "baselines",
        f"E8: all builders on clustered R^2 (n={N}, eps={EPS}; * = guaranteed)",
        ["method", "edges", "max deg", "build s", "evals/query",
         "recall@1", "eps_ok"],
        rows,
        notes=(
            "Greedy (the paper's model) drives every method here.  knn is "
            "the negative control: small and fast but eps_ok < 1 — precisely "
            "the failure mode proximity graphs exist to fix."
        ),
    )
    knn_row = rows[-1]
    assert knn_row[-1] < 1.0, "the k-NN digraph should fail somewhere"

    benchmark.pedantic(
        lambda: build("gnet", ds, EPS, np.random.default_rng(0)),
        rounds=1,
        iterations=1,
    )


def test_theory_vs_measured_constants(benchmark, bench_rng):
    """E8c: instantiate the Section 2.3 bounds with explicit constants
    and report the slack against the measured graph — quantifying how
    conservative the worst-case analysis is on realistic data."""
    from repro.analysis import gnet_theory_report
    from repro.graphs import build_gnet

    rows = []
    for name, ds in [
        ("uniform", make_dataset(
            gaussian_clusters(600, 2, np.random.default_rng(2), clusters=1,
                              spread=0.3))),
        ("clustered", make_dataset(
            gaussian_clusters(600, 2, np.random.default_rng(2), clusters=8))),
    ]:
        res = build_gnet(ds, epsilon=1.0, method="grid")
        report = gnet_theory_report(res, doubling_dimension=2.0)
        rows.append(
            [
                name,
                report.edges_measured,
                f"{report.edges_bound:.3g}",
                round(report.edge_slack, 1),
                report.max_degree_measured,
                f"{report.max_degree_bound:.3g}",
            ]
        )
        assert report.edge_slack >= 1.0
    write_table(
        "baselines_theory",
        "E8c: Fact 2.3 bounds vs measured G_net (eps=1, lambda=2)",
        ["workload", "edges", "edge bound", "slack x", "max deg", "deg bound"],
        rows,
        notes=(
            "The (16 phi)^lambda packing constant is famously loose; the "
            "slack column is the honest constant-factor gap on benign data."
        ),
    )

    ds = make_dataset(gaussian_clusters(600, 2, np.random.default_rng(2)))
    benchmark.pedantic(
        lambda: build_gnet(ds, epsilon=1.0, method="grid"), rounds=1, iterations=1
    )


def test_beam_search_extension(benchmark, bench_rng):
    """Practical extension: beam search (ef-style) on the guaranteed
    graphs recovers exact NN at modest extra cost — the bridge between
    the paper's greedy model and deployed systems."""
    from repro.graphs import beam_search

    ds = make_dataset(gaussian_clusters(600, 2, np.random.default_rng(1)))
    built = build("gnet", ds, EPS, np.random.default_rng(0))
    queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
    rows = []
    for width in [1, 4, 16]:
        hits = evals_total = 0
        for q in queries:
            found, evals = beam_search(
                built.graph, ds, 0, q, beam_width=width, k=1
            )
            evals_total += evals
            hits += found[0][0] == ds.nearest_neighbor(q)[0]
        rows.append(
            [width, round(hits / len(queries), 3),
             round(evals_total / len(queries), 1)]
        )
    write_table(
        "beam_extension",
        "E8b: beam width vs exact recall on G_net (eps=1)",
        ["beam width", "recall@1", "evals/query"],
        rows,
        notes="width 1 ~ greedy; modest widths push recall toward 1.0",
    )
    recalls = [r[1] for r in rows]
    assert recalls == sorted(recalls)

    q = queries[0]
    benchmark.pedantic(
        lambda: beam_search(built.graph, ds, 0, q, beam_width=16, k=1),
        rounds=3,
        iterations=1,
    )
