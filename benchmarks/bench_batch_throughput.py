"""E9 — throughput of the lockstep batch engine vs the scalar greedy
loop.

The paper's accounting (distance evaluations) is identical for both
engines — ``greedy_batch`` is bit-identical to per-query ``greedy`` —
so this bench measures pure wall-clock throughput: how much Python
per-hop overhead the CSR gather + segmented ``distances_many`` path
removes.  Two regimes:

* a cross-builder table (gnet / merged / hnsw / vamana) on one clustered
  workload — dense guaranteed graphs are arithmetic-bound and gain
  little, degree-capped graphs gain the most;
* the headline 10k-point Euclidean workload on the degree-capped
  builder, where the bench records (and asserts) the >= 5x speedup in
  ``results/batch_throughput.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import accel
from repro.core import build, compute_ground_truth, measure_queries
from repro.graphs import greedy, greedy_batch
from repro.workloads import gaussian_clusters, make_dataset, uniform_cube, uniform_queries

EPS = 1.0


def _throughput(graph, dataset, queries, starts, backend: str = "numpy") -> dict:
    """Time both engines on the same (queries, starts) and check equality.

    Non-numpy backends are warmed first (JIT/C compile time reported as
    ``jit_compile_seconds``, never inside the QPS window) and one small
    untimed warm-up batch runs before the clock starts so first-call
    costs — allocator, caches, lazy imports — don't pollute the numbers.
    """
    compile_s = 0.0
    if backend != "numpy":
        compile_s = accel.warm(backend)["compile_seconds"]
    warm_m = min(len(queries), 64)
    greedy_batch(graph, dataset, starts[:warm_m], queries[:warm_m], backend=backend)
    t0 = time.perf_counter()
    batch = greedy_batch(graph, dataset, starts, queries, backend=backend)
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = [
        greedy(graph, dataset, int(s), q) for q, s in zip(queries, starts)
    ]
    scalar_s = time.perf_counter() - t0
    identical = all(
        a.point == b.point
        and a.distance == b.distance
        and a.hops == b.hops
        and a.distance_evals == b.distance_evals
        for a, b in zip(scalar, batch)
    )
    return {
        "queries": len(queries),
        "backend": backend,
        "jit_compile_seconds": round(compile_s, 3),
        "warmup_batch": warm_m,
        "scalar_qps": len(queries) / scalar_s,
        "batch_qps": len(queries) / batch_s,
        "speedup": scalar_s / batch_s,
        "mean_evals": float(np.mean([r.distance_evals for r in batch])),
        "identical": identical,
    }


def test_engines_across_builders(benchmark, bench_rng):
    """Scalar vs batch QPS for every major builder on one workload."""
    n = 2000
    ds = make_dataset(gaussian_clusters(n, 2, np.random.default_rng(1), clusters=8))
    points = np.asarray(ds.points)
    queries = uniform_queries(400, points, bench_rng)
    starts = bench_rng.integers(ds.n, size=len(queries))
    gt = compute_ground_truth(ds, queries)

    configs = [
        ("gnet", {}),
        ("merged", {"theta": 0.25, "gnet_method": "grid", "theta_method": "sweep"}),
        ("hnsw", {"m": 8, "ef_construction": 64}),
        ("vamana", {"max_degree": 32}),
    ]
    rows, records = [], {}
    for name, opts in configs:
        built = build(name, ds, EPS, np.random.default_rng(42), **opts)
        r = _throughput(built.graph, ds, queries, starts)
        assert r["identical"], f"{name}: batch engine diverged from scalar greedy"
        stats = measure_queries(
            built.graph, ds, queries, epsilon=EPS, ground_truth=gt,
            starts=starts,
        )
        records[name] = {k: round(v, 1) if isinstance(v, float) else v
                         for k, v in r.items()}
        rows.append(
            [
                name,
                round(built.graph.mean_out_degree(), 1),
                round(r["mean_evals"], 1),
                round(r["scalar_qps"], 0),
                round(r["batch_qps"], 0),
                round(r["speedup"], 1),
                round(stats.recall_at_1, 3),
            ]
        )
    write_table(
        "batch_throughput_builders",
        f"E9a: scalar vs lockstep-batch greedy QPS (n={n}, eps={EPS})",
        ["method", "mean deg", "evals/query", "scalar qps", "batch qps",
         "speedup", "recall@1"],
        rows,
        notes=(
            "Dense guaranteed graphs (gnet/merged) are arithmetic-bound — "
            "both engines do the same distance work, so the gain is modest.  "
            "Degree-capped graphs route with small per-hop batches, where "
            "the scalar loop pays ~10us of Python per hop; lockstep "
            "amortizes it across the whole query batch."
        ),
    )
    # Only the deterministic bit-identity assert gates this test (it runs
    # in CI, where wall-clock ratios on shared runners are too noisy to
    # assert on); the speedup column is reporting, not a gate.
    vamana = build("vamana", ds, EPS, np.random.default_rng(42), max_degree=32)
    benchmark.pedantic(
        lambda: greedy_batch(vamana.graph, ds, starts, queries),
        rounds=3,
        iterations=1,
    )
    _write_json("builders_2k", records)


def test_batch_speedup_10k(benchmark, bench_rng):
    """Headline number: >= 5x QPS on a 10k-point Euclidean workload."""
    n = 10_000
    ds = make_dataset(uniform_cube(n, 2, np.random.default_rng(7)))
    points = np.asarray(ds.points)
    built = build("vamana", ds, EPS, np.random.default_rng(42), max_degree=32)
    queries = uniform_queries(1000, points, bench_rng)
    starts = bench_rng.integers(ds.n, size=len(queries))

    r = _throughput(built.graph, ds, queries, starts)
    assert r["identical"], "batch engine diverged from scalar greedy"
    write_table(
        "batch_throughput_10k",
        f"E9b: 10k-point Euclidean workload (vamana, eps={EPS})",
        ["n", "queries", "scalar qps", "batch qps", "speedup"],
        [[n, r["queries"], round(r["scalar_qps"], 0),
          round(r["batch_qps"], 0), round(r["speedup"], 1)]],
        notes="acceptance: the lockstep engine must clear 5x on this workload",
    )
    _write_json(
        "euclidean_10k",
        {
            "n": n,
            "method": "vamana",
            **{k: round(v, 1) if isinstance(v, float) else v for k, v in r.items()},
        },
    )
    assert r["speedup"] >= 5.0, f"only {r['speedup']:.1f}x on the 10k workload"

    benchmark.pedantic(
        lambda: greedy_batch(built.graph, ds, starts, queries),
        rounds=3,
        iterations=1,
    )


def _write_json(key: str, record) -> None:
    """Merge one record into results/batch_throughput.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "batch_throughput.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")
