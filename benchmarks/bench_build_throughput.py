"""E10 — throughput of the batched construction engine vs sequential
insertion.

After the batch *query* engine (E9) the build became the bottleneck:
HNSW, NSW, and Vamana still inserted one point at a time through scalar
Python beam searches.  The batched engine
(:func:`repro.graphs.engine.bulk_insert` +
:func:`~repro.graphs.engine.construction_beam_batch`) inserts points in
waves located lockstep against the frozen prefix graph.  This bench
records both regimes:

* a cross-builder table (hnsw / nsw / vamana / diskann) on one clustered
  2k-point workload;
* the headline 10k-point clustered workload on Vamana, where the bench
  records (and asserts) the >= 3x build speedup with recall@10 within
  0.01 of the sequential build in ``results/build_throughput.json`` —
  the acceptance gate of the batched-construction PR;
* the compiled-construction gate: the best available accel backend
  (numba, else cffi) must clear >= 5x over the numpy wave engine on a
  20k-point build at a *bit-identical* graph.  The backend is warmed
  (compiled + self-checked) before the clock — compile time reports
  separately as ``jit_compile_seconds`` — and one small untimed
  warm-up build runs first so the timed build measures steady state.

Wave sizes follow the engine's ramp (1, 1, 2, 4, ... up to
``batch_size``), so early insertions never search a prefix smaller than
their own wave.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import accel
from repro.core import build, compute_ground_truth_k
from repro.graphs import beam_search_batch
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import gaussian_clusters, uniform_queries

EPS = 1.0


def _workload(n: int, dim: int, seed: int, m_queries: int):
    pts = gaussian_clusters(n, dim, np.random.default_rng(seed), clusters=20)
    ds, _ = normalize_min_distance(Dataset(EuclideanMetric(), pts))
    rng = np.random.default_rng(2025)
    queries = uniform_queries(m_queries, pts, rng)
    starts = rng.integers(ds.n, size=m_queries)
    gt10, _ = compute_ground_truth_k(ds, queries, k=10)
    return ds, queries, starts, gt10


def _recall10(graph, ds, queries, starts, gt10) -> float:
    found = beam_search_batch(graph, ds, starts, queries, beam_width=64, k=10)
    hits = sum(
        len({v for v, _ in pairs} & set(gt10[i].tolist()))
        for i, (pairs, _evals) in enumerate(found)
    )
    return hits / (len(queries) * 10)


def _compare(name, opts, batch_size, ds, queries, starts, gt10) -> dict:
    t0 = time.perf_counter()
    seq = build(name, ds, EPS, np.random.default_rng(42), **opts)
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    bat = build(name, ds, EPS, np.random.default_rng(42), batch_size=batch_size, **opts)
    bat_s = time.perf_counter() - t0
    return {
        "n": int(ds.n),
        "batch_size": batch_size,
        "sequential_seconds": round(seq_s, 3),
        "batched_seconds": round(bat_s, 3),
        "speedup": round(seq_s / bat_s, 2),
        "sequential_recall_at_10": round(
            _recall10(seq.graph, ds, queries, starts, gt10), 4
        ),
        "batched_recall_at_10": round(
            _recall10(bat.graph, ds, queries, starts, gt10), 4
        ),
    }


def test_build_throughput_builders(benchmark):
    """Sequential vs batched build for every insertion-based builder."""
    ds, queries, starts, gt10 = _workload(2000, 4, seed=11, m_queries=300)
    configs = [
        ("hnsw", {"m": 8, "ef_construction": 64}),
        ("nsw", {"m": 8}),
        ("vamana", {"max_degree": 32, "beam_width": 64}),
        ("diskann", {}),
    ]
    rows, records = [], {}
    for name, opts in configs:
        r = _compare(name, opts, 200, ds, queries, starts, gt10)
        records[name] = r
        rows.append(
            [
                name,
                r["sequential_seconds"],
                r["batched_seconds"],
                r["speedup"],
                r["sequential_recall_at_10"],
                r["batched_recall_at_10"],
            ]
        )
        assert (
            r["sequential_recall_at_10"] - r["batched_recall_at_10"] <= 0.02
        ), f"{name}: batched build lost recall"
    write_table(
        "build_throughput_builders",
        f"E10a: sequential vs batched construction (n=2000, eps={EPS}, waves of 200)",
        ["method", "seq s", "batch s", "speedup", "recall@10 seq", "recall@10 batch"],
        rows,
        notes=(
            "Insertion builders locate each wave with one vectorized lockstep "
            "beam against the frozen prefix graph.  diskann's wave path only "
            "batches its candidate distance rows into one GEMM; its runtime "
            "is dominated by the per-kept pruning scan, which the wave path "
            "does not change, so it shows no gain — the knob exists there "
            "for API uniformity.  Recall: beam-64 search vs exact top-10."
        ),
    )
    _write_json("builders_2k", records)
    vam = lambda: build(  # noqa: E731 - bench closure
        "vamana", ds, EPS, np.random.default_rng(42),
        max_degree=32, beam_width=64, batch_size=200,
    )
    benchmark.pedantic(vam, rounds=1, iterations=1)


def test_build_speedup_10k(benchmark):
    """Headline number: >= 3x batched build on 10k points, recall held."""
    ds, queries, starts, gt10 = _workload(10_000, 4, seed=11, m_queries=500)
    r = _compare(
        "vamana", {"max_degree": 32, "beam_width": 64}, 1000,
        ds, queries, starts, gt10,
    )
    write_table(
        "build_throughput_10k",
        f"E10b: 10k-point clustered workload (vamana, eps={EPS}, waves of 1000)",
        ["n", "seq s", "batch s", "speedup", "recall@10 seq", "recall@10 batch"],
        [[
            r["n"], r["sequential_seconds"], r["batched_seconds"], r["speedup"],
            r["sequential_recall_at_10"], r["batched_recall_at_10"],
        ]],
        notes=(
            "acceptance: batched construction must clear 3x on this workload "
            "with recall@10 within 0.01 of the sequential build"
        ),
    )
    _write_json("vamana_10k", {"method": "vamana", **r})
    assert r["speedup"] >= 3.0, f"only {r['speedup']:.2f}x on the 10k build"
    # "Within 0.01" is one-sided: the batched build may not be more than
    # 0.01 *worse*; on this workload it is actually better (the
    # multi-expansion beam explores wider than the scalar one).
    assert (
        r["sequential_recall_at_10"] - r["batched_recall_at_10"] <= 0.01
    ), "batched build traded recall for speed"

    benchmark.pedantic(
        lambda: build(
            "vamana", ds, EPS, np.random.default_rng(42),
            max_degree=32, beam_width=64, batch_size=1000,
        ),
        rounds=1,
        iterations=1,
    )


def _best_compiled() -> str | None:
    for name in ("numba", "cffi"):
        if name in accel.available_backends():
            return name
    return None


def test_build_speedup_compiled_20k(benchmark):
    """Compiled-construction gate: >= 5x over the numpy wave engine on a
    20k-point build, graph bit-identical (so recall is identical too)."""
    compiled = _best_compiled()
    if compiled is None:
        pytest.skip("no compiled accel backend can run here")
    ds, queries, starts, gt10 = _workload(20_000, 4, seed=11, m_queries=500)
    opts = {"max_degree": 32, "beam_width": 64, "batch_size": 1000}

    # Warm BEFORE the clock: kernel compile (JIT or C) + self-check.
    compile_s = accel.warm(compiled)["compile_seconds"]
    # One untimed warm-up build over a small prefix pays any remaining
    # lazy setup (scratch buffers, mirror packing) outside the timing.
    warm_ds = Dataset(EuclideanMetric(), np.asarray(ds.points)[:2000])
    build("vamana", warm_ds, EPS, np.random.default_rng(42),
          backend=compiled, **opts)

    t0 = time.perf_counter()
    ref = build("vamana", ds, EPS, np.random.default_rng(42), **opts)
    numpy_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    acc = build("vamana", ds, EPS, np.random.default_rng(42),
                backend=compiled, **opts)
    acc_s = time.perf_counter() - t0

    ro, rt = ref.graph.csr()
    ao, at = acc.graph.csr()
    assert np.array_equal(ro, ao) and np.array_equal(rt, at), (
        "compiled build diverged from the numpy wave build"
    )
    rec = _recall10(acc.graph, ds, queries, starts, gt10)
    record = {
        "method": "vamana",
        "backend": compiled,
        "n": int(ds.n),
        "batch_size": 1000,
        "jit_compile_seconds": round(compile_s, 3),
        "numpy_seconds": round(numpy_s, 3),
        "compiled_seconds": round(acc_s, 3),
        "speedup": round(numpy_s / acc_s, 2),
        "graph_bit_identical": True,
        "recall_at_10": round(rec, 4),
    }
    write_table(
        "build_throughput_compiled_20k",
        f"E10c: compiled vs numpy wave construction (vamana, n=20000, eps={EPS})",
        ["backend", "jit s", "numpy s", "compiled s", "speedup", "recall@10"],
        [[compiled, record["jit_compile_seconds"], record["numpy_seconds"],
          record["compiled_seconds"], record["speedup"], record["recall_at_10"]]],
        notes=(
            "acceptance: the compiled construction path (wave location + "
            "whole-wave commit kernels) must clear 5x over the numpy wave "
            "engine at a bit-identical graph; backend warmed before the "
            "clock, one untimed warm-up build first"
        ),
    )
    _write_json(f"vamana_20k_compiled_{compiled}", record)
    assert record["speedup"] >= 5.0, (
        f"only {record['speedup']:.2f}x compiled build speedup on 20k points"
    )

    benchmark.pedantic(
        lambda: build(
            "vamana", ds, EPS, np.random.default_rng(42),
            backend=compiled, **opts,
        ),
        rounds=1,
        iterations=1,
    )


def _write_json(key: str, record) -> None:
    """Merge one record into results/build_throughput.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "build_throughput.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")
