"""PR 9 — beyond-RAM indexes: the v5 disk directory vs the v4 .npz.

The claim under test: a persisted index should *open* in O(header)
time, not O(index) time, and should answer bit-identically while
keeping only the hot tier (quantized codes + CSR adjacency) resident —
the full-precision ``vectors.bin`` stays on disk behind ``np.memmap``
and is paged in only by the exact-rerank gather.

* ``test_disk_smoke_gate`` — the CI gate: on the seeded 10k workload a
  v5 save/reopen with ``mmap=True`` answers with ids and distances
  bit-identical to the in-RAM index, opens under a pinned wall-clock
  bound, and the traversal-resident vector bytes do not exceed the
  quantized-code footprint;
* ``test_disk_acceptance_200k`` — the committed acceptance record: at
  n=200k the v5 mmap open is >= 100x faster than the v4 eager load,
  plus the ``compress=False`` save-time delta for the npz path.

Results persist to ``results/bench_disk.json`` (+ a text table).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import ProximityGraphIndex, SearchParams, load_any
from repro.core import compute_ground_truth_k
from repro.core.stats import recall_at_k
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import gaussian_clusters, uniform_queries

EPS = 1.0
K = 10
D = 16
BEAM_WIDTH = 64
STORAGE = "sq8"  # the intended beyond-RAM configuration: 8x hot-tier shrink

# The CI gate's cold-open bound: attaching a v5 directory is a header
# parse plus O(arrays) memmap calls — milliseconds at any n.  0.25 s
# leaves two orders of magnitude of headroom for a loaded CI runner.
GATE_OPEN_SECONDS = 0.25


def _workload(n: int, m_queries: int):
    pts = gaussian_clusters(n, D, np.random.default_rng(11), clusters=20)
    rng = np.random.default_rng(2025)
    queries = uniform_queries(m_queries, pts, rng)
    gt, _ = compute_ground_truth_k(Dataset(EuclideanMetric(), pts), queries, k=K)
    return pts, queries, gt


def _build(pts) -> ProximityGraphIndex:
    return ProximityGraphIndex.build(
        pts, epsilon=EPS, method="vamana", seed=42, storage=STORAGE,
        batch_size=max(32, min(2048, len(pts) // 8)),
    )


def _measure(index, queries, gt) -> dict:
    """Save v4 (compressed + not) and v5, time every (re)open, and pin
    the mmap index's answers against the in-RAM index."""
    params = SearchParams(beam_width=BEAM_WIDTH, seed=7)
    want = index.search(queries, k=K, params=params)
    out: dict = {"n": int(index.n), "queries": int(len(queries))}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        t0 = time.perf_counter()
        npz = index.save(tmp / "v4.npz")
        out["v4_save_seconds"] = round(time.perf_counter() - t0, 4)
        t0 = time.perf_counter()
        index.save(tmp / "v4_fast.npz", compress=False)
        out["v4_save_uncompressed_seconds"] = round(time.perf_counter() - t0, 4)
        t0 = time.perf_counter()
        disk = index.save(tmp / "v5", format="disk")
        out["v5_save_seconds"] = round(time.perf_counter() - t0, 4)

        out["v4_bytes"] = npz.stat().st_size
        out["v4_uncompressed_bytes"] = (tmp / "v4_fast.npz").stat().st_size
        out["v5_bytes"] = sum(p.stat().st_size for p in disk.iterdir())

        t0 = time.perf_counter()
        eager = load_any(npz)
        out["v4_load_seconds"] = round(time.perf_counter() - t0, 4)
        t0 = time.perf_counter()
        load_any(tmp / "v4_fast.npz")
        out["v4_load_uncompressed_seconds"] = round(
            time.perf_counter() - t0, 4
        )
        t0 = time.perf_counter()
        mapped = load_any(disk)
        out["v5_open_seconds"] = round(time.perf_counter() - t0, 4)
        out["cold_open_speedup"] = round(
            out["v4_load_seconds"] / max(out["v5_open_seconds"], 1e-9), 1
        )

        got = mapped.search(queries, k=K, params=params)
        out["ids_bit_identical"] = bool(
            np.array_equal(want.ids, got.ids)
            and np.array_equal(want.distances, got.distances)
        )
        out["recall_at_10"] = round(
            recall_at_k(mapped, queries, gt, K, params=params), 4
        )
        out["recall_at_10_ram"] = round(
            recall_at_k(index, queries, gt, K, params=params), 4
        )

        # Criterion (b): what traversal keeps resident.  The hot tier is
        # the quantized codes; vectors.bin is mapped, not resident.
        store = mapped.store
        out["traversal_resident_bytes"] = int(
            store.traversal_bytes_per_vector() * store.n
        )
        out["code_footprint_bytes"] = int(store.codes.nbytes)
        out["cold_tier_bytes"] = int(
            np.asarray(mapped.dataset.points).nbytes
        )
        out["eager_points_is_ram"] = not isinstance(
            eager.dataset.points, np.memmap
        )
        out["mapped_points_is_mmap"] = isinstance(
            mapped.dataset.points, np.memmap
        )
    return out


def _write_json(key: str, record) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_disk.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")


def _assert_quality(r: dict) -> None:
    assert r["ids_bit_identical"], (
        "mmap-backed search diverged from the in-RAM index"
    )
    assert r["recall_at_10"] == r["recall_at_10_ram"]
    assert r["traversal_resident_bytes"] <= r["code_footprint_bytes"], (
        f"traversal keeps {r['traversal_resident_bytes']} bytes resident, "
        f"more than the {r['code_footprint_bytes']}-byte code footprint"
    )
    assert r["mapped_points_is_mmap"]


def test_disk_smoke_gate():
    """CI gate: v5 reopen is bit-identical and opens in milliseconds."""
    pts, queries, gt = _workload(10_000, 300)
    r = _measure(_build(pts), queries, gt)
    _write_json("gate_10k", r)
    _assert_quality(r)
    assert r["v5_open_seconds"] < GATE_OPEN_SECONDS, (
        f"v5 open took {r['v5_open_seconds']} s; the attach path must be "
        f"O(header), bound {GATE_OPEN_SECONDS} s"
    )


def test_disk_acceptance_200k():
    """Acceptance record: >= 100x faster cold open than v4 at n=200k."""
    pts, queries, gt = _workload(200_000, 300)
    r = _measure(_build(pts), queries, gt)
    _write_json("acceptance_200k", r)
    _assert_quality(r)
    assert r["cold_open_speedup"] >= 100, (
        f"v5 open is only {r['cold_open_speedup']}x faster than the v4 "
        "eager load (need >= 100x at n=200k)"
    )
    assert r["v4_save_uncompressed_seconds"] <= r["v4_save_seconds"]
    write_table(
        "bench_disk",
        f"PR 9: v5 disk directory vs v4 .npz (vamana+{STORAGE}, "
        f"n={r['n']}, d={D}, beam={BEAM_WIDTH})",
        ["format", "save s", "open s", "bytes"],
        [
            ["v4 npz (compressed)", r["v4_save_seconds"],
             r["v4_load_seconds"], r["v4_bytes"]],
            ["v4 npz (compress=False)", r["v4_save_uncompressed_seconds"],
             r["v4_load_uncompressed_seconds"], r["v4_uncompressed_bytes"]],
            ["v5 disk dir (mmap)", r["v5_save_seconds"],
             r["v5_open_seconds"], r["v5_bytes"]],
        ],
        notes=(
            f"v5 opens {r['cold_open_speedup']}x faster than the v4 eager "
            "load because attach is a header parse + np.memmap calls — no "
            "array is read until touched.  Traversal keeps "
            f"{r['traversal_resident_bytes']} code bytes resident "
            f"({r['code_footprint_bytes']} footprint) and leaves the "
            f"{r['cold_tier_bytes']}-byte float64 cold tier on disk; the "
            "exact-rerank gather pages candidate rows in ascending-offset "
            "order.  Search answers are bit-identical to the in-RAM index "
            f"(recall@10 {r['recall_at_10']})."
        ),
    )
