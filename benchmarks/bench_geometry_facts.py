"""E9 — Figures 3-6 territory: the Appendix E geometry at scale, plus the
cone-family size accounting of Section 5.1."""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import loglog_slope, write_table
from repro.graphs import build_cone_family


def test_fact_e3_margin_profile(benchmark):
    """(2+eps)(2 tan g + 1 - cos g) < eps at g = eps/32: tabulate the
    margin across eps — the inequality that makes theta = eps/32 work."""
    rows = []
    for eps in [1.0, 0.5, 0.25, 0.125, 0.0625]:
        g = eps / 32.0
        lhs = (2 + eps) * (2 * math.tan(g) + 1 - math.cos(g))
        rows.append([eps, round(g, 5), round(lhs, 5), round(lhs / eps, 4)])
    write_table(
        "geometry_fact_e3",
        "E9a: Fact E.3 margin — lhs/eps must stay below 1",
        ["eps", "g = eps/32", "lhs", "lhs/eps"],
        rows,
        notes="lhs/eps ~ 0.4 for small eps: the 1/32 constant has ~2.5x slack",
    )
    assert all(r[2] < r[0] for r in rows)

    benchmark.pedantic(
        lambda: [(2 + e) * (2 * math.tan(e / 32) + 1 - math.cos(e / 32))
                 for e in np.linspace(0.01, 1, 1000)],
        rounds=3,
        iterations=1,
    )


def test_cone_counts_scale_as_theory(benchmark):
    """|C| = O((1/theta)^(d-1)): measure the exponent per dimension."""
    rows = []
    for dim in [2, 3]:
        thetas = [1.2, 0.8, 0.5, 0.3] if dim == 3 else [0.5, 0.25, 0.125, 0.0625]
        counts = [build_cone_family(t, dim).num_cones for t in thetas]
        slope = loglog_slope([1 / t for t in thetas], counts)
        rows.append([dim, str([round(t, 3) for t in thetas]), str(counts),
                     round(slope, 2), dim - 1])
    write_table(
        "geometry_cone_counts",
        "E9b: cone-family size vs 1/theta (Yao construction substitute)",
        ["d", "thetas", "|C|", "measured exponent", "theory d-1"],
        rows,
        notes="measured exponent should approach d-1 (up to grid rounding)",
    )
    for r in rows:
        assert r[3] <= r[4] + 0.7  # grid rounding inflates small counts

    benchmark.pedantic(lambda: build_cone_family(0.3, 3), rounds=1, iterations=1)


def test_cone_covering_certificates(benchmark, bench_rng):
    """The corner certificate really covers: stress with 10^5 random
    directions per family."""
    rows = []
    for dim, theta in [(2, 0.1), (3, 0.6), (4, 1.2)]:
        fam = build_cone_family(theta, dim)
        dirs = bench_rng.normal(size=(100_000, dim))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        member = fam.membership(dirs)
        uncovered = int((~member.any(axis=1)).sum())
        rows.append([dim, theta, fam.num_cones, uncovered])
        assert uncovered == 0
    write_table(
        "geometry_cone_cover",
        "E9c: covering stress test — uncovered directions out of 100k",
        ["d", "theta", "|C|", "uncovered"],
        rows,
        notes="must be 0 everywhere (cones must cover R^d for Lemma 5.1)",
    )

    fam = build_cone_family(0.6, 3)
    dirs = bench_rng.normal(size=(100_000, 3))
    benchmark.pedantic(lambda: fam.membership(dirs), rounds=1, iterations=1)
