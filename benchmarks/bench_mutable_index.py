"""E11 — the mutable index: add-then-search recall and filtered search.

The API redesign (ISSUE 3) made the index a mutable collection behind
one ``search()`` entry point.  Two quality gates ride on that, both on
the pinned 1k clustered workload of the recall-regression suite:

* **add-then-search** — an index built over 80% of the points and grown
  by ``add()`` to 100% must match a fresh full build's recall@10 within
  0.02.  Incremental repair may not quietly degrade the graph.
* **filtered search** — beam search under an ``allowed_ids`` mask must
  reach what brute force finds on the masked subset (recall@10 floor),
  at 50% and at 10% selectivity.  Tombstone exclusion is the same
  mechanism, so this also gates ``delete()``.

Results go to ``results/mutable_index.json`` (plus aligned text tables)
— the committed acceptance record for the PR.
"""

from __future__ import annotations

import json

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import ProximityGraphIndex, SearchParams
from repro.core import compute_ground_truth_k
from repro.core.stats import recall_at_k
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import gaussian_clusters, near_data_queries, uniform_queries

EPS = 1.0
N = 1000
M_QUERIES = 200
K = 10

CONFIGS = {
    "vamana": {"max_degree": 16},
    "hnsw": {"m": 8, "ef_construction": 64},
}


def _workload():
    pts = gaussian_clusters(N, 2, np.random.default_rng(2025), clusters=10)
    rng = np.random.default_rng(7)
    queries = np.concatenate(
        [uniform_queries(100, pts, rng), near_data_queries(100, pts, rng)]
    )
    return pts, queries


def _recall_at_k(index: ProximityGraphIndex, queries, gt: np.ndarray) -> float:
    return recall_at_k(
        index, queries, gt, K, params=SearchParams(beam_width=64, seed=0)
    )


def test_add_then_search_recall(benchmark):
    """Grown index vs fresh build: recall@10 within 0.02 (acceptance)."""
    pts, queries = _workload()
    ds = Dataset(EuclideanMetric(), pts)
    gt, _ = compute_ground_truth_k(ds, queries, k=K)
    cut = int(N * 0.8)

    rows, records = [], {}
    for name, opts in CONFIGS.items():
        fresh = ProximityGraphIndex.build(
            pts, epsilon=EPS, method=name, seed=42, **opts
        )
        grown = ProximityGraphIndex.build(
            pts[:cut], epsilon=EPS, method=name, seed=42, **opts
        )
        grown.add(pts[cut:], batch_size=50)
        assert grown.n == N

        r_fresh = _recall_at_k(fresh, queries, gt)
        r_grown = _recall_at_k(grown, queries, gt)
        gap = r_fresh - r_grown
        records[name] = {
            "n": N,
            "added_fraction": 0.2,
            "fresh_recall_at_10": round(r_fresh, 4),
            "grown_recall_at_10": round(r_grown, 4),
            "gap": round(gap, 4),
        }
        rows.append([name, round(r_fresh, 4), round(r_grown, 4), round(gap, 4)])
        assert gap <= 0.02, (
            f"{name}: add() lost {gap:.4f} recall@10 vs a fresh build"
        )

    write_table(
        "mutable_add_recall",
        f"E11a: add-then-search vs fresh build (n={N}, 20% added, eps={EPS})",
        ["method", "recall@10 fresh", "recall@10 grown", "gap"],
        rows,
        notes=(
            "Grown = built over 800 points, then add() of the remaining 200 "
            "through the wave-batched Vamana-style repair path (waves of 50). "
            "Acceptance: gap <= 0.02.  Search: beam-64, seeded starts."
        ),
    )
    _write_json("add_then_search", records)
    benchmark.pedantic(
        lambda: ProximityGraphIndex.build(
            pts[:cut], epsilon=EPS, method="vamana", seed=42, max_degree=16
        ).add(pts[cut:], batch_size=50),
        rounds=1,
        iterations=1,
    )


def test_filtered_search_recall(benchmark):
    """Filtered beam search vs brute force on the mask (acceptance)."""
    pts, queries = _workload()
    index = ProximityGraphIndex.build(
        pts, epsilon=EPS, method="vamana", seed=42, max_degree=16
    )
    rng = np.random.default_rng(99)

    rows, records = [], {}
    for selectivity in (0.5, 0.1):
        allowed = np.flatnonzero(rng.uniform(size=N) < selectivity)
        sub = Dataset(EuclideanMetric(), pts[allowed])
        gt_local, _ = compute_ground_truth_k(sub, queries, k=K)
        gt = allowed[gt_local]  # back to external ids

        r = index.search(
            queries,
            k=K,
            params=SearchParams(allowed_ids=allowed, beam_width=64, seed=0),
        )
        allowed_set = set(allowed.tolist())
        hits = 0
        for i in range(len(queries)):
            got = set(r.ids[i][r.ids[i] >= 0].tolist())
            assert got <= allowed_set, "filter leaked a disallowed id"
            hits += len(got & set(gt[i].tolist()))
        recall = hits / (len(queries) * K)
        records[f"selectivity_{selectivity}"] = {
            "allowed": int(len(allowed)),
            "recall_at_10_vs_masked_bruteforce": round(recall, 4),
        }
        rows.append([selectivity, len(allowed), round(recall, 4)])
        assert recall >= 0.95, (
            f"filtered recall@10 {recall:.4f} at selectivity {selectivity}"
        )

    write_table(
        "mutable_filtered_recall",
        f"E11b: filtered search vs masked brute force (n={N}, vamana, eps={EPS})",
        ["selectivity", "allowed points", "recall@10 vs masked GT"],
        rows,
        notes=(
            "allowed_ids masks are threaded into the beam engine: disallowed "
            "vertices still route (navigability intact) but never enter the "
            "result pool.  Ground truth = exact top-10 on the allowed subset. "
            "Acceptance floor: 0.95 at both selectivities."
        ),
    )
    _write_json("filtered_search", records)
    benchmark.pedantic(
        lambda: index.search(
            queries,
            k=K,
            params=SearchParams(
                allowed_ids=np.arange(0, N, 2), beam_width=64, seed=0
            ),
        ),
        rounds=1,
        iterations=1,
    )


def _write_json(key: str, record) -> None:
    """Merge one record into results/mutable_index.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "mutable_index.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")
