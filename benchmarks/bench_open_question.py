"""A4 — probing the paper's open question (Section 1.3 closing remark).

"Our lower bounds do not rule out a (1+eps)-PG of
O((1/eps)^lambda n + n log Delta) edges" — we build the natural
candidate within that budget (net-tree spine + own-scale laterals, see
``repro/graphs/hybrid.py``) and measure whether navigability survives.

Expected outcome (and what the table shows): the candidate is far
smaller than G_net and usually routes fine, but violations appear
already on benign workloads — this candidate does **not** settle the
question affirmatively.  The bench documents the failure rate so future
candidates have a quantitative baseline to beat."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.graphs import build_gnet
from repro.graphs.hybrid import probe_open_question
from repro.workloads import (
    exponential_cluster_chain,
    gaussian_clusters,
    make_dataset,
    uniform_cube,
    uniform_queries,
)

EPS = 1.0


def test_candidate_budget_and_failures(benchmark, bench_rng):
    workloads = [
        ("uniform", make_dataset(uniform_cube(400, 2, np.random.default_rng(1)))),
        (
            "clustered",
            make_dataset(gaussian_clusters(400, 2, np.random.default_rng(2))),
        ),
        (
            "chain",
            make_dataset(
                exponential_cluster_chain(8, 50, np.random.default_rng(3))
            ),
        ),
    ]
    rows = []
    any_violation = 0
    for name, ds in workloads:
        gnet = build_gnet(ds, EPS, method="grid")
        points = np.asarray(ds.points)
        queries = list(uniform_queries(80, points, bench_rng))
        queries += [points[i] * (1 + 1e-9) for i in range(0, ds.n, 10)]
        report = probe_open_question(
            ds, EPS, queries, gnet_edges=gnet.graph.num_edges
        )
        any_violation += report["violations"]
        rows.append(
            [
                name,
                report["edges"],
                report["spine_edges"],
                report["lateral_edges"],
                report["gnet_edges"],
                report["vs_gnet"],
                report["violations"],
            ]
        )
        assert report["within_budget"], "candidate exceeded the open-question budget"
        assert report["edges"] < report["gnet_edges"], (
            "the candidate must be smaller than G_net, else it probes nothing"
        )
    write_table(
        "open_question",
        f"A4: the O((1/eps)^lambda n + n log Delta) candidate (eps={EPS})",
        ["workload", "edges", "spine", "lateral", "gnet edges", "vs gnet",
         "violations"],
        rows,
        notes=(
            "Violations > 0 anywhere means this candidate does NOT resolve "
            "the paper's open question affirmatively; the failure counts "
            "are the baseline for future candidates."
        ),
    )
    # The honest headline: we do not assert violations == 0 (that would
    # claim the open question); we assert the probe ran meaningfully.
    assert all(r[1] > 0 for r in rows)

    ds = workloads[0][1]
    queries = list(uniform_queries(40, np.asarray(ds.points), bench_rng))
    benchmark.pedantic(
        lambda: probe_open_question(ds, EPS, queries), rounds=1, iterations=1
    )
