"""E10 — the Section 2.4 remark: running the pipeline without knowing
d_min or diam(P).

The remark replaces exact extremes with estimates (d_min_hat within
[d_min/2, d_min] from n 2-ANN queries; d_max_hat within [d_max, 2 d_max]
from one scan) and promises the same asymptotics.  We measure estimate
accuracy, the end-to-end cost of estimating, and the edge-count overhead
of building from estimates instead of exact values."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.anns import CoverTree
from repro.graphs import build_gnet, find_violations
from repro.metrics import Dataset, EuclideanMetric, estimate_extremes, normalize_min_distance
from repro.workloads import gaussian_clusters, uniform_cube, uniform_queries


def test_estimate_accuracy(benchmark, bench_rng):
    rows = []
    for name, pts in [
        ("uniform", uniform_cube(400, 2, bench_rng)),
        ("clustered", gaussian_clusters(400, 2, bench_rng)),
        ("uniform3d", uniform_cube(300, 3, bench_rng)),
    ]:
        ds = Dataset(EuclideanMetric(), pts)
        est = estimate_extremes(ds)
        d_min, d_max = ds.min_interpoint_distance(), ds.diameter()
        rows.append(
            [
                name,
                round(est.d_min_hat / d_min, 3),
                round(est.d_max_hat / d_max, 3),
                round(est.aspect_ratio_hat / (d_max / d_min), 3),
            ]
        )
    write_table(
        "scaling_estimates",
        "E10a: spread-estimate accuracy (remark of Section 2.4)",
        ["workload", "d_min_hat/d_min", "d_max_hat/d_max", "AR_hat/AR"],
        rows,
        notes=(
            "contracts: first column in [0.5, 1], second in [1, 2], third in "
            "[1, 4] — footnote 1 of the paper"
        ),
    )
    for r in rows:
        assert 0.5 - 1e-9 <= r[1] <= 1 + 1e-9
        assert 1 - 1e-9 <= r[2] <= 2 + 1e-9
        assert 1 - 1e-9 <= r[3] <= 4 + 1e-9

    ds = Dataset(EuclideanMetric(), uniform_cube(400, 2, bench_rng))
    benchmark.pedantic(lambda: estimate_extremes(ds), rounds=1, iterations=1)


def test_estimation_via_cover_tree_2ann(benchmark, bench_rng):
    """The remark's actual algorithm: answer the per-point 2-ANN queries
    with the dynamic structure (delete p, query, re-insert)."""
    pts = uniform_cube(300, 2, bench_rng)
    ds = Dataset(EuclideanMetric(), pts)
    tree = CoverTree(ds, point_ids=range(ds.n))

    def second_nearest(i: int) -> float:
        tree.delete(i)
        _, dist = tree.nearest(ds.points[i])
        tree.insert(i)
        return dist

    est = estimate_extremes(ds, second_nearest=second_nearest)
    d_min = ds.min_interpoint_distance()
    rows = [[round(est.d_min_hat / d_min, 3)]]
    write_table(
        "scaling_cover_tree",
        "E10b: d_min estimation through the dynamic structure",
        ["d_min_hat/d_min"],
        rows,
        notes="must lie in [0.5, 1]: the exact-NN answer is a valid 2-ANN",
    )
    assert 0.5 - 1e-9 <= est.d_min_hat / d_min <= 1 + 1e-9

    benchmark.pedantic(
        lambda: estimate_extremes(ds, second_nearest=second_nearest),
        rounds=1,
        iterations=1,
    )


def test_build_from_estimates_end_to_end(benchmark, bench_rng):
    """Normalize by the estimate, build, and stay navigable; quantify the
    edge overhead of the factor-2 slack."""
    pts = gaussian_clusters(350, 2, np.random.default_rng(6))
    ds = Dataset(EuclideanMetric(), pts)

    exact_ds, _ = normalize_min_distance(ds)
    exact_res = build_gnet(exact_ds, epsilon=1.0, method="grid")

    est = estimate_extremes(ds)
    est_ds, _ = normalize_min_distance(ds, spread=est)
    est_res = build_gnet(
        est_ds, epsilon=1.0, method="grid", diameter=est.d_max_hat * 2.0 / est.d_min_hat
    )

    queries = list(uniform_queries(50, np.asarray(est_ds.points), bench_rng))
    violations = find_violations(est_res.graph, est_ds, queries, 1.0, stop_at=None)
    rows = [
        [
            exact_res.graph.num_edges,
            est_res.graph.num_edges,
            round(est_res.graph.num_edges / exact_res.graph.num_edges, 3),
            len(violations),
        ]
    ]
    write_table(
        "scaling_end_to_end",
        "E10c: G_net built from exact vs estimated extremes",
        ["edges (exact)", "edges (estimated)", "ratio", "violations"],
        rows,
        notes=(
            "ratio stays O(1) (the constants absorb the factor-2 slack); "
            "violations must be 0 — correctness never depended on exactness"
        ),
    )
    assert violations == []
    assert rows[0][2] <= 4.0

    benchmark.pedantic(
        lambda: build_gnet(est_ds, epsilon=1.0, method="grid"),
        rounds=1,
        iterations=1,
    )
