"""E12 — the serving layer: coalesced micro-batching vs solo dispatch.

The lockstep engines answer a 64-query batch far cheaper than 64
single-query calls — the whole point of ``repro.serve`` is to harvest
that gap from *concurrent network traffic* that arrives one query at a
time.  This bench stands up the real HTTP server (``asyncio`` loop,
real sockets, keep-alive connections) and drives it with an in-process
asyncio load generator:

* ``test_serving_smoke_gate`` — the CI gate: 32 concurrent clients of
  mixed search + add/delete traffic; asserts coalesced batch sizes > 1
  showed up in ``/stats``, a (generous, CI-safe) p99 ceiling, and that
  no request observed a torn write.
* ``test_serving_acceptance_64_clients`` — the committed acceptance
  record: at 64 concurrent clients, coalesced serving (``max_batch=64``)
  must sustain >= 3x the QPS of sequential single-query dispatch
  (``max_batch=1`` — the same server, coalescing disabled, so the delta
  is *batching*, not HTTP overhead), with recall unchanged and zero
  atomicity violations during interleaved add/delete.  Persisted to
  ``results/bench_serving.json`` + ``.txt``.

Traffic is the paper's central query — greedy nearest-neighbour
(``k=1``) — which is also where the lockstep engines earn their keep:
a 64-row greedy batch costs ~12x less per query than 64 solo calls,
while wide-beam ``k=10`` batches only ~2x (per-row frontier divergence
erodes the lockstep win).  Serving beam traffic through the coalescer
still helps, but the headline ratio is a greedy-workload number.

The torn-write probe: the writer repeatedly adds a complete 4-point
cluster at a far-off corner and then deletes it; a prober queries with
``allowed_ids`` pinned to the writer's last add, so the engine returns
every live member of the set or none (retrieval luck can't fake a
miss).  Because every mutation builds on a snapshot and swaps
atomically, any proper subset observed would be a real isolation bug,
not scheduling noise.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import ProximityGraphIndex
from repro.core import compute_ground_truth_k
from repro.metrics import Dataset, EuclideanMetric
from repro.serve import IndexHolder, SearchServer
from repro.workloads import gaussian_clusters, uniform_queries

K = 1
DIM = 8


# ----------------------------------------------------------------------
# A minimal asyncio HTTP/1.1 client (keep-alive, one connection per
# simulated client) — stdlib only, like the server.
# ----------------------------------------------------------------------


class _Client:
    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "_Client":
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def post(self, path: str, payload: dict) -> tuple[int, dict]:
        return await self._request("POST", path, json.dumps(payload).encode())

    async def get(self, path: str) -> tuple[int, dict]:
        return await self._request("GET", path, b"")

    async def _request(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        assert self.writer is not None and self.reader is not None
        self.writer.write(head + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        data = await self.reader.readexactly(length)
        return status, json.loads(data)

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------


async def _drive(
    server_kw: dict,
    index: ProximityGraphIndex,
    queries: np.ndarray,
    clients: int,
    requests_per_client: int,
    with_writer: bool,
) -> dict:
    """Start a server, hammer it, return QPS/latency/recall ingredients."""
    holder = IndexHolder(index)
    server = SearchServer(holder, cache_size=0, **server_kw)
    host, port = await server.start("127.0.0.1", 0)
    latencies: list[float] = []
    answers: list[tuple[int, list[int]]] = []
    torn: list[list[int]] = []
    corner = np.full(DIM, 60.0)
    # Spaced 0.5 apart so degree pruning never treats the members as
    # near-duplicates (which could orphan one from the graph and make
    # retrieval — not atomicity — miss it).
    cluster = (corner + np.arange(4)[:, None] * 0.5).tolist()
    live_ids: list[list[int]] = [[]]  # writer publishes its latest add

    async def search_client(cid: int) -> None:
        client = await _Client(host, port).connect()
        try:
            for r in range(requests_per_client):
                qi = (cid * requests_per_client + r) % len(queries)
                t0 = time.perf_counter()
                status, body = await client.post(
                    "/search", {"query": queries[qi].tolist(), "k": K}
                )
                latencies.append(time.perf_counter() - t0)
                assert status == 200, body
                answers.append((qi, body["ids"]))
        finally:
            await client.close()

    async def writer_client() -> None:
        client = await _Client(host, port).connect()
        try:
            for _ in range(4):
                status, added = await client.post("/add", {"points": cluster})
                assert status == 200, added
                live_ids[0] = added["ids"]
                await asyncio.sleep(0.005)
                status, _d = await client.post(
                    "/delete", {"ids": added["ids"]}
                )
                assert status == 200
        finally:
            await client.close()

    async def probe_client() -> None:
        # The torn-write check must not depend on beam retrieval luck,
        # so it asks a question with a guaranteed answer: restricted to
        # the writer's last-added ids (``allowed_ids``), the engine
        # returns every live member of the set or none — unknown and
        # tombstoned ids just empty the filter.  A proper subset can
        # only mean a request saw a partially-applied add or delete.
        client = await _Client(host, port).connect()
        try:
            for _ in range(3 * requests_per_client):
                ids = live_ids[0]
                if not ids:
                    await asyncio.sleep(0)
                    continue
                _s, body = await client.post(
                    "/search",
                    {"query": corner.tolist(), "k": 4, "allowed_ids": ids},
                )
                close = [
                    v
                    for v, d in zip(body["ids"], body["distances"])
                    if d is not None
                ]
                if len(close) not in (0, 4):
                    torn.append(close)
        finally:
            await client.close()

    tasks = [search_client(c) for c in range(clients)]
    if with_writer:
        tasks += [writer_client(), probe_client()]
    t0 = time.perf_counter()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t0
    stats_client = await _Client(host, port).connect()
    _s, stats = await stats_client.get("/stats")
    await stats_client.close()
    await server.stop()

    lat = np.sort(np.asarray(latencies))
    total = clients * requests_per_client
    return {
        "clients": clients,
        "requests": total,
        "qps": total / wall,
        "p50_ms": float(lat[int(0.50 * (len(lat) - 1))]) * 1000,
        "p99_ms": float(lat[int(0.99 * (len(lat) - 1))]) * 1000,
        "stats": stats,
        "answers": answers,
        "torn": torn,
    }


def _recall(answers: list[tuple[int, list[int]]], gt: np.ndarray) -> float:
    """Mean recall over every answered request (not unique queries):
    the per-request sample is what the two dispatch modes share."""
    hits = sum(
        len(set(ids) & set(gt[qi].tolist())) for qi, ids in answers
    )
    return hits / (len(answers) * K)


def _workload(n: int, m: int, seed: int = 13):
    pts = gaussian_clusters(n, DIM, np.random.default_rng(seed), clusters=12)
    queries = uniform_queries(m, pts, np.random.default_rng(2025))
    gt, _ = compute_ground_truth_k(Dataset(EuclideanMetric(), pts), queries, k=K)
    index = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=42)
    return index, queries, gt


def _write_json(key: str, record) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_serving.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")


def _run(index, queries, clients, requests_per_client, max_batch, with_writer):
    return asyncio.run(
        _drive(
            {"max_batch": max_batch, "max_wait_ms": 2.0, "search_workers": 2},
            index,
            queries,
            clients,
            requests_per_client,
            with_writer,
        )
    )


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------


def test_serving_smoke_gate():
    """CI gate: batches form under concurrency, p99 stays sane, and
    mixed search/add/delete traffic never exposes a torn write."""
    index, queries, gt = _workload(1500, 128)
    r = _run(
        index, queries, clients=32, requests_per_client=8,
        max_batch=64, with_writer=True,
    )
    record = {
        "clients": r["clients"],
        "requests": r["requests"],
        "qps": round(r["qps"], 1),
        "p50_ms": round(r["p50_ms"], 2),
        "p99_ms": round(r["p99_ms"], 2),
        "max_batch_size": r["stats"]["coalescer"]["max_batch_size"],
        "mean_batch_size": r["stats"]["coalescer"]["mean_batch_size"],
        "recall_at_1": round(_recall(r["answers"], gt), 4),
        "torn_reads": len(r["torn"]),
        "generation": r["stats"]["index"]["generation"],
    }
    _write_json("gate_32_clients", record)
    assert record["max_batch_size"] > 1, (
        f"no coalescing under 32 concurrent clients: {record}"
    )
    # Generous ceiling — CI runners are slow and single-core; the point
    # is catching a hang/regression, not a latency SLO.
    assert record["p99_ms"] < 2000, record
    assert record["torn_reads"] == 0, r["torn"]
    assert record["generation"] >= 8  # the writer's adds+deletes landed


def test_serving_acceptance_64_clients():
    """Acceptance: >= 3x QPS from coalescing at 64 concurrent clients,
    recall unchanged, zero torn reads under interleaved add/delete.

    The QPS comparison runs matched search-only traffic through the
    same server (solo = ``max_batch=1``), so the delta is the dispatch
    policy alone.  Atomicity is probed in a third phase with the writer
    interleaved: each add/delete rebuilds an n=8000 snapshot, a cost
    that belongs to the mutation rate, not to the dispatch policy, so
    it would only blur the ratio if mixed into the QPS phases.
    """
    index, queries, gt = _workload(8000, 512)
    clients, per_client = 64, 24

    coalesced = _run(
        index, queries, clients, per_client, max_batch=64, with_writer=False,
    )
    solo = _run(
        index, queries, clients, per_client, max_batch=1, with_writer=False,
    )
    mutating = _run(
        index.snapshot(), queries, clients, per_client,
        max_batch=64, with_writer=True,
    )

    recall_coalesced = _recall(coalesced["answers"], gt)
    recall_solo = _recall(solo["answers"], gt)
    record = {
        "n": int(index.n),
        "clients": clients,
        "requests": coalesced["requests"],
        "cpu_count": os.cpu_count(),
        "coalesced_qps": round(coalesced["qps"], 1),
        "solo_qps": round(solo["qps"], 1),
        "qps_ratio": round(coalesced["qps"] / solo["qps"], 2),
        "coalesced_p50_ms": round(coalesced["p50_ms"], 2),
        "coalesced_p99_ms": round(coalesced["p99_ms"], 2),
        "solo_p50_ms": round(solo["p50_ms"], 2),
        "solo_p99_ms": round(solo["p99_ms"], 2),
        "coalesced_mean_batch": coalesced["stats"]["coalescer"][
            "mean_batch_size"
        ],
        "coalesced_max_batch": coalesced["stats"]["coalescer"][
            "max_batch_size"
        ],
        "recall_at_1_coalesced": round(recall_coalesced, 4),
        "recall_at_1_solo": round(recall_solo, 4),
        "mutating_qps": round(mutating["qps"], 1),
        "mutating_generation": mutating["stats"]["index"]["generation"],
        "torn_reads": len(mutating["torn"]),
    }
    _write_json("acceptance_64_clients", record)
    write_table(
        "bench_serving",
        f"E12: coalesced vs solo dispatch ({clients} concurrent clients, "
        f"vamana n={record['n']}, k={K})",
        ["dispatch", "qps", "p50 ms", "p99 ms", "mean batch", "recall@1"],
        [
            [
                "coalesced",
                record["coalesced_qps"],
                record["coalesced_p50_ms"],
                record["coalesced_p99_ms"],
                record["coalesced_mean_batch"],
                record["recall_at_1_coalesced"],
            ],
            [
                "solo",
                record["solo_qps"],
                record["solo_p50_ms"],
                record["solo_p99_ms"],
                1.0,
                record["recall_at_1_solo"],
            ],
        ],
        notes=(
            f"qps ratio {record['qps_ratio']}x; both modes run the same "
            "HTTP server (solo = max_batch 1), so the delta is batching "
            f"alone.  Interleaved add/delete phase: {record['mutating_qps']} "
            f"qps with {record['mutating_generation']} snapshot swaps and "
            f"{record['torn_reads']} torn reads."
        ),
    )
    assert record["qps_ratio"] >= 3.0, record
    # Per-row greedy walks are identical regardless of batch
    # composition; the only recall difference between the modes is
    # start-vertex sampling noise, ~0.025 std at 1536 Bernoulli
    # samples.  0.08 is ~3 sigma: catches a real quality change,
    # tolerates the draw.
    assert abs(recall_coalesced - recall_solo) <= 0.08, record
    assert record["torn_reads"] == 0, mutating["torn"]
    assert record["mutating_generation"] >= 8, record
