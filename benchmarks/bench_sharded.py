"""E11 — the sharded parallel index: build speedup and fan-out recall.

The sharded build path composes two engines: each shard builds over
``n/K`` points through the wave-batched construction driver, and the
shards build concurrently in a process pool over a zero-copy shared
-memory arena.  This bench records the acceptance numbers of the
sharded-index PR against the *flat default build* (what a user gets
from ``ProximityGraphIndex.build`` today):

* ``test_sharded_quality_gate_2k`` — the CI gate: fan-out recall@10
  must stay within 0.02 of the flat index (wall-clock is not gated in
  CI; single-core runners make ratios meaningless there);
* ``test_sharded_acceptance_20k`` — the committed acceptance record:
  >= 2x build speedup at 4 workers on a 20k-point workload with
  recall@10 within 0.02, persisted to ``results/bench_sharded.json``.

A fairness row records the flat *batched* build too, so the JSON shows
how much of the speedup is wave-batching (all of it on a single-core
runner) versus process parallelism (additive on real multicore hosts).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import ProximityGraphIndex, SearchParams, ShardedIndex
from repro.core import compute_ground_truth_k
from repro.core.stats import recall_at_k
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import gaussian_clusters, uniform_queries

EPS = 1.0
K = 10


def _workload(n: int, dim: int, seed: int, m_queries: int):
    pts = gaussian_clusters(n, dim, np.random.default_rng(seed), clusters=20)
    rng = np.random.default_rng(2025)
    queries = uniform_queries(m_queries, pts, rng)
    gt, _ = compute_ground_truth_k(Dataset(EuclideanMetric(), pts), queries, k=K)
    return pts, queries, gt


def _recall(index, queries, gt) -> float:
    return recall_at_k(
        index, queries, gt, K, params=SearchParams(beam_width=64, seed=7)
    )


def _compare(pts, queries, gt, shards: int, workers: int) -> dict:
    t0 = time.perf_counter()
    flat = ProximityGraphIndex.build(pts, epsilon=EPS, method="vamana", seed=42)
    flat_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = ShardedIndex.build(
        pts, epsilon=EPS, method="vamana", seed=42,
        shards=shards, workers=workers,
    )
    sharded_s = time.perf_counter() - t0

    # Fairness: the flat index with the same wave engine the shards use,
    # so the record separates wave-batching gains from sharding gains.
    t0 = time.perf_counter()
    ProximityGraphIndex.build(
        pts, epsilon=EPS, method="vamana", seed=42,
        batch_size=max(32, min(1024, len(pts) // 8)),
    )
    flat_batched_s = time.perf_counter() - t0

    record = {
        "n": int(len(pts)),
        "shards": shards,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "flat_seconds": round(flat_s, 3),
        "flat_batched_seconds": round(flat_batched_s, 3),
        "sharded_seconds": round(sharded_s, 3),
        "speedup": round(flat_s / sharded_s, 2),
        "flat_recall_at_10": round(_recall(flat, queries, gt), 4),
        "sharded_recall_at_10": round(_recall(sharded, queries, gt), 4),
    }
    sharded.close()
    return record


def _write_json(key: str, record) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_sharded.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_sharded_quality_gate_2k():
    """CI gate: fan-out recall parity on a small workload (no clocks)."""
    pts, queries, gt = _workload(2000, 4, seed=11, m_queries=300)
    r = _compare(pts, queries, gt, shards=4, workers=2)
    _write_json("gate_2k", r)
    assert r["flat_recall_at_10"] - r["sharded_recall_at_10"] <= 0.02, (
        f"fan-out recall {r['sharded_recall_at_10']} fell more than 0.02 "
        f"below flat {r['flat_recall_at_10']}"
    )


def test_sharded_acceptance_20k():
    """Acceptance record: >= 2x build at 4 workers on >= 20k points,
    recall@10 within 0.02 of the flat index."""
    pts, queries, gt = _workload(20_000, 4, seed=11, m_queries=500)
    r = _compare(pts, queries, gt, shards=4, workers=4)
    _write_json("acceptance_20k", r)
    write_table(
        "bench_sharded",
        f"E11: flat vs sharded build+search (vamana, eps={EPS}, "
        f"{r['shards']} shards, {r['workers']} workers)",
        [
            "n", "flat s", "flat batched s", "sharded s", "speedup",
            "recall@10 flat", "recall@10 sharded",
        ],
        [[
            r["n"], r["flat_seconds"], r["flat_batched_seconds"],
            r["sharded_seconds"], r["speedup"],
            r["flat_recall_at_10"], r["sharded_recall_at_10"],
        ]],
        notes=(
            "Sharded = 4 vamana shards built through the wave engine in a "
            "process pool over one shared-memory arena; search fans the "
            "query batch out per shard and merges top-10.  The flat-batched "
            "column isolates the wave-engine share of the win: on a "
            f"single-core runner (this one has {r['cpu_count']}) the pool "
            "adds no parallel speedup, on multicore hosts it multiplies."
        ),
    )
    assert r["speedup"] >= 2.0, f"only {r['speedup']:.2f}x at 4 workers"
    assert r["flat_recall_at_10"] - r["sharded_recall_at_10"] <= 0.02, (
        "sharded fan-out lost more than 0.02 recall@10"
    )
