"""E12 — quantized vector storage: recall-vs-memory and exactness pins.

One graph, three storages: the bench builds a single vamana index and
swaps its vector store (``set_storage``) between flat / SQ8 / PQ, so
every difference in the table is the storage layer — not build noise.

* ``test_storage_quality_gate_10k`` — the CI gate: on the seeded
  10k-point Euclidean workload, SQ8 and PQ recall@10 (rerank enabled,
  equal beam width) must clear pinned floors;
* ``test_storage_acceptance_20k`` — the committed acceptance record:
  on 20k points the quantized stores hold >= 4x smaller resident
  traversal bytes than flat while keeping recall@10 within 0.02 of the
  flat index at equal beam width, and flat-storage ``search()`` is
  bit-identical to the raw pre-storage engine calls across 3 seeds.

Results persist to ``results/bench_storage.json`` (+ a text table).
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_table
from repro import ProximityGraphIndex, SearchParams
from repro.core import compute_ground_truth_k
from repro.core.stats import recall_at_k, storage_breakdown
from repro.graphs.engine import beam_search_batch
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import gaussian_clusters, uniform_cube, uniform_queries

EPS = 1.0
K = 10
BEAM_WIDTH = 64

# CI floors for the 10k gate, ~3 recall points below the values
# measured at introduction (flat 0.9207, sq8 0.9217, pq 0.9283 on this
# seeded workload — the rerank over-fetch lifts the quantized stores
# slightly *above* flat) — room for BLAS drift, none for regressions.
GATE_FLOORS_10K = {"sq8": 0.89, "pq": 0.89}


def _workload(n: int, m_queries: int):
    pts = gaussian_clusters(n, 4, np.random.default_rng(11), clusters=20)
    rng = np.random.default_rng(2025)
    queries = uniform_queries(m_queries, pts, rng)
    gt, _ = compute_ground_truth_k(Dataset(EuclideanMetric(), pts), queries, k=K)
    return pts, queries, gt


def _compare(pts, queries, gt) -> dict:
    t0 = time.perf_counter()
    index = ProximityGraphIndex.build(
        pts, epsilon=EPS, method="vamana", seed=42,
        batch_size=max(32, min(1024, len(pts) // 8)),
    )
    build_s = time.perf_counter() - t0
    params = SearchParams(beam_width=BEAM_WIDTH, seed=7)  # equal width for all
    rows = {}
    for kind in ("flat", "sq8", "pq"):
        t0 = time.perf_counter()
        index.set_storage(kind)
        encode_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        recall = recall_at_k(index, queries, gt, K, params=params)
        search_s = time.perf_counter() - t0
        mem = storage_breakdown(index)
        rows[kind] = {
            "recall_at_10": round(recall, 4),
            "bytes_per_vector": mem["traversal_bytes_per_vector"],
            "traversal_bytes": mem["traversal_bytes"],
            "aux_bytes": mem["aux_bytes"],
            "compression": mem["compression"],
            "encode_seconds": round(encode_s, 3),
            "search_seconds": round(search_s, 3),
        }
    return {
        "n": int(len(pts)),
        "queries": int(len(queries)),
        "beam_width": BEAM_WIDTH,
        "build_seconds": round(build_s, 3),
        "storages": rows,
    }


def _flat_bit_identical(seeds=(0, 1, 2)) -> bool:
    """Flat-storage search() vs the raw engine calls the facade made
    before the storage layer existed — must match bit for bit."""
    for seed in seeds:
        pts = uniform_cube(800, 4, np.random.default_rng(seed))
        index = ProximityGraphIndex.build(
            pts, epsilon=EPS, method="vamana", seed=seed
        )
        queries = np.random.default_rng(seed + 50).uniform(size=(50, 4))
        starts = np.random.default_rng(index.seed).integers(
            index.n, size=len(queries)
        )
        r = index.search(queries, k=K, params=SearchParams(beam_width=BEAM_WIDTH))
        found = beam_search_batch(
            index.graph, index.dataset, starts, queries,
            beam_width=BEAM_WIDTH, k=K,
        )
        for i, (pairs, ev) in enumerate(found):
            if int(r.evals[i]) != ev:
                return False
            if r.ids[i].tolist() != [v for v, _ in pairs]:
                return False
            if not np.array_equal(
                r.distances[i], np.array([d for _, d in pairs]) / index.scale
            ):
                return False
    return True


def _write_json(key: str, record) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_storage.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_storage_quality_gate_10k():
    """CI gate: pinned quantized recall@10 floors on the 10k workload."""
    pts, queries, gt = _workload(10_000, 300)
    r = _compare(pts, queries, gt)
    _write_json("gate_10k", r)
    for kind, floor in GATE_FLOORS_10K.items():
        got = r["storages"][kind]["recall_at_10"]
        assert got >= floor, (
            f"{kind}: recall@10 {got:.4f} fell below the pinned floor {floor}"
        )


def test_storage_acceptance_20k():
    """Acceptance record: >= 4x smaller traversal bytes with recall@10
    within 0.02 of flat at equal beam width, plus flat bit-identity."""
    pts, queries, gt = _workload(20_000, 500)
    r = _compare(pts, queries, gt)
    r["flat_bit_identical_3_seeds"] = _flat_bit_identical()
    _write_json("acceptance_20k", r)
    flat = r["storages"]["flat"]
    write_table(
        "bench_storage",
        f"E12: vector storage comparison (vamana, eps={EPS}, n={r['n']}, "
        f"beam={BEAM_WIDTH}, rerank=storage default)",
        ["storage", "bytes/vec", "compression", "recall@10", "search s"],
        [
            [kind, row["bytes_per_vector"], f"{row['compression']}x",
             row["recall_at_10"], row["search_seconds"]]
            for kind, row in r["storages"].items()
        ],
        notes=(
            "One vamana graph, three vector stores (set_storage swap): "
            "traversal runs over each store's codes (PQ via per-query ADC "
            "LUTs bound once per batch) and an over-fetched pool is exact-"
            "reranked, so reported distances are exact everywhere.  "
            "bytes/vec counts traversal-resident vector bytes; the raw "
            "float array is retained for the rerank stage."
        ),
    )
    assert r["flat_bit_identical_3_seeds"], (
        "flat-storage search() diverged from the raw engine calls"
    )
    best = {}
    for kind in ("sq8", "pq"):
        row = r["storages"][kind]
        best[kind] = (row["compression"], flat["recall_at_10"] - row["recall_at_10"])
    assert any(c >= 4.0 and gap <= 0.02 for c, gap in best.values()), (
        f"no quantized store hit >= 4x compression within 0.02 recall: {best}"
    )
    # and each store individually must compress >= 4x
    assert all(c >= 4.0 for c, _gap in best.values()), best
