"""E3 — Theorem 1.1 construction time: near-linear in n, versus the
Omega(n^2)-or-worse prior constructions (DiskANN slow preprocessing).

We time three builders over an n sweep:

* G_net ``grid``  — the output-sensitive fast path (our stand-in for the
  paper's Har-Peled-Mendel + Cole-Gottlieb pipeline);
* G_net ``paper`` — the Section 2.4 loop against a dynamic cover tree
  (same asymptotics, bigger constants);
* DiskANN slow    — the only prior construction with guarantees, which is
  Theta(n^2) distance rows even before its per-candidate pruning work.

The assertion is about *shape*: DiskANN's time/n must grow markedly
faster than G_net's time/n.  (Pure-Python wall clock is noisy; we keep a
3x safety margin.)
"""

from __future__ import annotations

import time

from benchmarks.conftest import loglog_slope, write_table
from repro.baselines import build_diskann_slow
from repro.graphs import build_gnet
from repro.workloads import jittered_grid, make_dataset


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_construction_scaling(benchmark, bench_rng):
    sides = [12, 17, 24, 34]  # n = 144 .. 1156
    rows, ns = [], []
    t_grid, t_diskann = [], []
    for side in sides:
        ds = make_dataset(jittered_grid(side, 2, bench_rng, jitter=0.05))
        ns.append(ds.n)
        t_grid.append(_time(lambda: build_gnet(ds, 1.0, method="grid")))
        t_diskann.append(_time(lambda: build_diskann_slow(ds, epsilon=1.0)))
        rows.append(
            [
                ds.n,
                round(t_grid[-1], 3),
                round(t_diskann[-1], 3),
                round(1e3 * t_grid[-1] / ds.n, 3),
                round(1e3 * t_diskann[-1] / ds.n, 3),
            ]
        )
    slope_grid = loglog_slope(ns, t_grid)
    slope_diskann = loglog_slope(ns, t_diskann)
    write_table(
        "t11_construction",
        "E3: construction time scaling (eps=1, jittered grid R^2)",
        ["n", "gnet_grid_s", "diskann_s", "grid_ms/n", "diskann_ms/n"],
        rows,
        notes=(
            f"log-log slope: gnet_grid = {slope_grid:.2f}, "
            f"diskann_slow = {slope_diskann:.2f}.  Theorem 1.1's point: the "
            "net-based construction avoids the quadratic wall (paper: "
            "n polylog(n Delta) vs Omega(n^2)/O(n^3))."
        ),
    )
    # DiskANN per-point cost must grow visibly; G_net per-point cost must
    # grow strictly slower than DiskANN's.
    assert slope_diskann > slope_grid + 0.2, (
        f"expected a clear scaling separation, got grid={slope_grid:.2f} "
        f"diskann={slope_diskann:.2f}"
    )

    ds = make_dataset(jittered_grid(sides[-1], 2, bench_rng, jitter=0.05))
    benchmark.pedantic(
        lambda: build_gnet(ds, 1.0, method="grid"), rounds=1, iterations=1
    )


def test_construction_phase_breakdown(benchmark, bench_rng):
    """Where does G_net build time go?  Net hierarchy (the Gonzalez
    traversal: our quadratic-but-vectorized substitution) vs per-level
    edge generation (output-sensitive)."""
    from repro.nets import NetHierarchy

    rows = []
    for side in [17, 24, 34]:
        ds = make_dataset(jittered_grid(side, 2, bench_rng, jitter=0.05))
        t_h = _time(lambda: NetHierarchy(ds))
        hier = NetHierarchy(ds)
        t_e = _time(lambda: build_gnet(ds, 1.0, method="grid", hierarchy=hier))
        rows.append([ds.n, round(t_h, 3), round(t_e, 3)])
    write_table(
        "t11_construction_phases",
        "E3b: G_net build phase breakdown",
        ["n", "hierarchy_s", "edge_generation_s"],
        rows,
        notes=(
            "The hierarchy phase is our Gonzalez substitution (DESIGN.md §5); "
            "the edge-generation phase is the part Theorem 1.1's "
            "output-sensitivity argument is about."
        ),
    )

    ds = make_dataset(jittered_grid(24, 2, bench_rng, jitter=0.05))
    benchmark.pedantic(lambda: NetHierarchy(ds), rounds=1, iterations=1)


def test_paper_method_small_scale(benchmark, bench_rng):
    """The Section 2.4 loop (dynamic cover tree) timed on a small sweep.

    The asymptotics match the grid path; the pure-Python constants of the
    cover tree are ~two orders larger, which is why the scaling benches
    use the grid path.  Recorded for completeness and to demonstrate the
    paper-faithful pipeline end to end at a usable size."""
    rows = []
    for side in [8, 11, 15]:
        ds = make_dataset(jittered_grid(side, 2, bench_rng, jitter=0.05))
        t_paper = _time(lambda: build_gnet(ds, 1.0, method="paper"))
        t_grid = _time(lambda: build_gnet(ds, 1.0, method="grid"))
        rows.append(
            [ds.n, round(t_paper, 3), round(t_grid, 3),
             round(t_paper / max(t_grid, 1e-9), 1)]
        )
    write_table(
        "t11_construction_paper",
        "E3c: Section 2.4 loop (cover tree) vs grid path, small n",
        ["n", "paper_s", "grid_s", "paper/grid"],
        rows,
        notes=(
            "Identical output (tested in tests/test_gnet.py); the ratio is "
            "pure-Python constant factors, not asymptotics."
        ),
    )
    ds = make_dataset(jittered_grid(8, 2, bench_rng, jitter=0.05))
    benchmark.pedantic(
        lambda: build_gnet(ds, 1.0, method="paper"), rounds=1, iterations=1
    )
