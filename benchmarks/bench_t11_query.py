"""E2 — Theorem 1.1 query bound: greedy on G_net computes
``O((1/eps)^lambda log^2 Delta)`` distances and reaches a (1+eps)-ANN
within ``h`` hops (the log-drop property, Lemma 2.2)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.core import compute_ground_truth, measure_queries
from repro.graphs import build_gnet
from repro.workloads import (
    exponential_cluster_chain,
    make_dataset,
    uniform_cube,
    uniform_queries,
)


def test_query_cost_vs_log_delta(benchmark, bench_rng):
    """Distance evaluations should grow ~quadratically in log Delta
    (h hops x O(phi^lambda log Delta) degree) on the chain family."""
    rows = []
    for clusters in [2, 4, 8, 16]:
        pts = exponential_cluster_chain(clusters, 30, np.random.default_rng(3))
        ds = make_dataset(pts)
        res = build_gnet(ds, epsilon=1.0, method="grid")
        queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
        stats = measure_queries(res.graph, ds, queries, epsilon=1.0)
        h = res.params.height
        rows.append(
            [
                clusters,
                ds.n,
                h,
                round(stats.mean_distance_evals, 1),
                stats.max_distance_evals,
                round(stats.max_distance_evals / h**2, 2),
                stats.max_hops,
                round(stats.epsilon_satisfied_fraction, 3),
            ]
        )
    write_table(
        "t11_query_vs_logdelta",
        "E2a: greedy cost on G_net vs log Delta (eps=1, cluster chain)",
        ["clusters", "n", "h", "evals_mean", "evals_max", "evals_max/h^2",
         "hops_max", "eps_ok"],
        rows,
        notes=(
            "evals_max/h^2 should stay bounded (the O(phi^lambda log^2 Delta) "
            "query bound); eps_ok must be 1.0 throughout"
        ),
    )
    assert all(r[-1] == 1.0 for r in rows), "every query must be (1+eps)-served"
    normalized = [r[5] for r in rows]
    assert max(normalized) <= 25 * max(min(normalized), 0.1), (
        "evals/h^2 should not blow up with log Delta"
    )

    pts = exponential_cluster_chain(16, 30, np.random.default_rng(3))
    ds = make_dataset(pts)
    res = build_gnet(ds, epsilon=1.0, method="grid")
    queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
    benchmark.pedantic(
        lambda: measure_queries(res.graph, ds, queries, epsilon=1.0),
        rounds=1,
        iterations=1,
    )


def test_hops_bounded_by_h(benchmark, bench_rng):
    """Lemma 2.2: the hop at which greedy first holds a (1+eps)-ANN is at
    most h+1, for every start vertex and query."""
    from repro.graphs import greedy

    ds = make_dataset(uniform_cube(800, 2, bench_rng))
    eps = 0.5
    res = build_gnet(ds, epsilon=eps, method="grid")
    h = res.params.height
    rows = []
    worst_first_ann = 0
    coords = np.asarray(ds.points)
    for trial in range(150):
        # Adversarial regime: query a hair away from a data point (NN
        # distance ~ 0, so almost nothing qualifies as an ANN) and start
        # greedy at the farthest vertex from it.
        target = int(bench_rng.integers(ds.n))
        q = coords[target] + bench_rng.normal(size=2) * 1e-6
        dists = ds.distances_to_query_all(q)
        nn = float(dists.min())
        start = int(np.argmax(dists))
        result = greedy(res.graph, ds, start, q)
        first_ann = next(
            k
            for k, p in enumerate(result.hops)
            if ds.distance_to_query(q, p) <= (1 + eps) * nn + 1e-12
        )
        worst_first_ann = max(worst_first_ann, first_ann)
    rows.append([ds.n, h, worst_first_ann, h + 1])
    write_table(
        "t11_hops",
        "E2b: hops until first (1+eps)-ANN vs the h bound (eps=0.5)",
        ["n", "h", "worst first-ANN hop", "bound h+1"],
        rows,
        notes="Lemma 2.2's log-drop: the worst case must be <= h+1",
    )
    assert worst_first_ann <= h + 1

    q = bench_rng.uniform(-10, 100, size=2)
    benchmark.pedantic(
        lambda: greedy(res.graph, ds, 0, q), rounds=3, iterations=1
    )


def test_query_cost_vs_epsilon(benchmark, bench_rng):
    """Smaller eps: costlier queries (degree grows as (1/eps)^lambda) but
    tighter answers."""
    ds = make_dataset(uniform_cube(600, 2, bench_rng))
    queries = list(uniform_queries(60, np.asarray(ds.points), bench_rng))
    # The same query batch replays against every eps: scan for NNs once.
    gt = compute_ground_truth(ds, queries)
    rows = []
    for eps in [1.0, 0.5, 0.25]:
        res = build_gnet(ds, epsilon=eps, method="grid")
        stats = measure_queries(res.graph, ds, queries, epsilon=eps, ground_truth=gt)
        rows.append(
            [
                eps,
                res.graph.num_edges,
                round(stats.mean_distance_evals, 1),
                round(stats.mean_approximation, 4),
                round(stats.max_approximation, 4),
                round(stats.epsilon_satisfied_fraction, 3),
            ]
        )
    write_table(
        "t11_query_vs_epsilon",
        "E2c: greedy cost/quality vs eps on G_net (n=600, uniform R^2)",
        ["eps", "edges", "evals_mean", "approx_mean", "approx_max", "eps_ok"],
        rows,
        notes="approx_max must stay below 1+eps per row; cost rises as eps falls",
    )
    for eps, row in zip([1.0, 0.5, 0.25], rows):
        assert row[-1] == 1.0
        assert row[4] <= 1 + eps + 1e-9
    evals = [r[2] for r in rows]
    assert evals[0] <= evals[-1], "smaller eps should cost more distance evals"

    res = build_gnet(ds, epsilon=0.25, method="grid")
    benchmark.pedantic(
        lambda: measure_queries(res.graph, ds, queries, epsilon=0.25),
        rounds=1,
        iterations=1,
    )
