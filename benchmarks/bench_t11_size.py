"""E1 — Theorem 1.1 size bound: edges(G_net) = O((1/eps)^lambda n log Delta).

Three sweeps isolate the three factors:

* ``n`` at constant density (jittered grid) — edges track
  ``n * log Delta`` with ``log Delta = Theta(log n)`` (a fixed-``Delta``
  sweep is impossible: the packing bound forces ``Delta >= c n^(1/lambda)``);
* ``log Delta`` at fixed local geometry (exponential cluster chain) —
  edges per point grow ~linearly in ``log Delta``; this family is where
  the ``n log Delta`` bound is *tight* (cf. the Section 3 lower bound);
* ``1/eps`` — edges grow polynomially in ``1/eps`` (the ``(1/eps)^lambda``
  factor, lambda ~ 2 in the plane).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import loglog_slope, write_table
from repro.graphs import build_gnet
from repro.workloads import (
    exponential_cluster_chain,
    jittered_grid,
    make_dataset,
    uniform_cube,
)


def test_edges_vs_n(benchmark, bench_rng):
    sides = [16, 23, 32, 45]
    rows, xs, edges = [], [], []
    for side in sides:
        ds = make_dataset(jittered_grid(side, 2, bench_rng, jitter=0.05))
        res = build_gnet(ds, epsilon=1.0, method="grid")
        e = res.graph.num_edges
        log_delta = max(res.params.height - 1, 1)
        xs.append(ds.n * log_delta)
        edges.append(e)
        rows.append(
            [ds.n, log_delta, e, round(e / ds.n, 1), round(e / (ds.n * log_delta), 2)]
        )
    slope = loglog_slope(xs, edges)
    write_table(
        "t11_edges_vs_n",
        "E1a: G_net edges vs n (eps=1, jittered grid R^2, constant density)",
        ["n", "log2(Delta)", "edges", "edges/n", "edges/(n log Delta)"],
        rows,
        notes=(
            f"log-log slope of edges vs n*log2(Delta) = {slope:.2f} "
            "(paper predicts ~1.0: the O(n log Delta) size bound)"
        ),
    )
    assert 0.75 <= slope <= 1.3, "edges should track n * log Delta"

    ds = make_dataset(jittered_grid(sides[-1], 2, bench_rng, jitter=0.05))
    benchmark.pedantic(
        lambda: build_gnet(ds, epsilon=1.0, method="grid"), rounds=1, iterations=1
    )


def test_edges_vs_log_delta(benchmark, bench_rng):
    cluster_size = 40
    rows, log_deltas, per_point = [], [], []
    for clusters in [2, 4, 8, 16]:
        pts = exponential_cluster_chain(
            clusters, cluster_size, np.random.default_rng(7)
        )
        ds = make_dataset(pts)
        res = build_gnet(ds, epsilon=1.0, method="grid")
        log_delta = max(res.params.height - 1, 1)
        e = res.graph.num_edges
        log_deltas.append(log_delta)
        per_point.append(e / ds.n)
        rows.append([clusters, ds.n, log_delta, e, round(e / ds.n, 1)])
    increments = np.diff(per_point) / np.diff(log_deltas)
    write_table(
        "t11_edges_vs_logdelta",
        "E1b: G_net edges vs log Delta (eps=1, exponential cluster chain, "
        f"fixed cluster size {cluster_size})",
        ["clusters", "n", "log2(Delta)", "edges", "edges/n"],
        rows,
        notes=(
            "edges/n increments per extra log2(Delta): "
            + ", ".join(f"{x:.2f}" for x in increments)
            + "  (paper: roughly constant increments = linear log Delta growth; "
            "this family is where O(n log Delta) is tight)"
        ),
    )
    assert per_point[-1] > per_point[0], "edges/point must grow with log Delta"
    assert (increments > 0).all()

    pts = exponential_cluster_chain(16, cluster_size, np.random.default_rng(7))
    ds = make_dataset(pts)
    benchmark.pedantic(
        lambda: build_gnet(ds, epsilon=1.0, method="grid"), rounds=1, iterations=1
    )


def test_edges_vs_epsilon(benchmark, bench_rng):
    n = 700
    ds = make_dataset(uniform_cube(n, 2, bench_rng))
    rows, inv_eps, edges = [], [], []
    for eps in [1.0, 0.5, 0.25, 0.125]:
        res = build_gnet(ds, epsilon=eps, method="grid")
        e = res.graph.num_edges
        inv_eps.append(1 / eps)
        edges.append(e)
        rows.append([eps, res.params.phi, e, round(e / n, 1)])
    slope = loglog_slope(inv_eps, edges)
    write_table(
        "t11_edges_vs_epsilon",
        "E1c: G_net edges vs 1/eps (n=700, uniform R^2)",
        ["eps", "phi", "edges", "edges/n"],
        rows,
        notes=(
            f"log-log slope of edges vs 1/eps = {slope:.2f} "
            "(paper: <= lambda ~ 2 in the plane; saturates once the graph "
            "approaches completeness)"
        ),
    )
    assert edges == sorted(edges), "smaller eps must not shrink the graph"

    benchmark.pedantic(
        lambda: build_gnet(ds, epsilon=0.125, method="grid"), rounds=1, iterations=1
    )
