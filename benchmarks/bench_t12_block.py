"""E5 — Theorem 1.2(2) / Figure 2: the block instance plus the
non-Euclidean adversary point forces Omega(s^d * n) = Omega((1/eps)^lambda n)
edges for eps = 1/(2s), regardless of query time."""

from __future__ import annotations

from benchmarks.conftest import write_table
from repro.baselines import build_complete_graph
from repro.graphs import build_gnet
from repro.lowerbounds import attack_block_graph, build_block_instance


def test_required_edges_grid(benchmark):
    rows = []
    for s, t, d in [(2, 1, 1), (2, 4, 1), (3, 2, 1), (2, 2, 2), (3, 2, 2),
                    (4, 2, 2), (2, 2, 3)]:
        inst = build_block_instance(s, t, d)
        rows.append(
            [
                s,
                t,
                d,
                inst.n,
                round(inst.epsilon, 4),
                round(inst.metric.doubling_dimension_bound(), 2),
                inst.required_edge_count,
                round(inst.required_edge_count / inst.n, 1),
            ]
        )
    write_table(
        "t12_block_required",
        "E5a: block instance — edges every (1+1/(2s))-PG must contain (Fig. 2)",
        ["s", "t", "d", "n", "eps", "lambda<=", "required", "required/n"],
        rows,
        notes=(
            "required/n = s^d - 1 ~ (1/(2 eps))^d: the (1/eps)^lambda factor "
            "in graph size is unavoidable (Theorem 1.2(2))"
        ),
    )
    benchmark.pedantic(
        lambda: build_block_instance(4, 2, 2), rounds=3, iterations=1
    )


def test_gnet_meets_the_bound(benchmark):
    """G_net at the instance's own eps must survive Alice, hence carry
    every intra-block edge."""
    rows = []
    for s, t, d in [(2, 2, 1), (2, 2, 2), (3, 2, 2)]:
        inst = build_block_instance(s, t, d)
        res = build_gnet(
            inst.normalized_dataset(), epsilon=inst.epsilon, method="vectorized"
        )
        missing = inst.missing_required_edges(res.graph)
        cert = attack_block_graph(res.graph, inst)
        rows.append(
            [
                s, t, d,
                inst.required_edge_count,
                res.graph.num_edges,
                len(missing),
                "survived" if cert is None else "DEFEATED",
            ]
        )
        assert missing == [] and cert is None
    write_table(
        "t12_block_gnet",
        "E5b: G_net (eps=1/(2s)) against the block lower bound",
        ["s", "t", "d", "required", "gnet_edges", "missing", "adversary"],
        rows,
        notes="G_net must survive the adversary on every configuration",
    )
    inst = build_block_instance(3, 2, 2)
    benchmark.pedantic(
        lambda: build_gnet(
            inst.normalized_dataset(), epsilon=inst.epsilon, method="vectorized"
        ),
        rounds=1,
        iterations=1,
    )


def test_adversary_defeats_every_pruned_edge(benchmark):
    inst = build_block_instance(2, 2, 2)
    base = build_complete_graph(inst.dataset)
    defeated = total = 0
    for p1, p2 in inst.required_edges():
        g = base.copy()
        g.set_out_neighbors(p1, [x for x in g.out_neighbors(p1) if int(x) != p2])
        cert = attack_block_graph(g, inst)
        total += 1
        if cert is not None and cert.is_valid():
            defeated += 1
    write_table(
        "t12_block_adversary",
        "E5c: Alice's success rate over all single-edge prunings (s=2,t=2,d=2)",
        ["required edges tried", "defeated"],
        [[total, defeated]],
        notes="defeated must equal tried — Alice's commit always works",
    )
    assert defeated == total == inst.required_edge_count

    g = base.copy()
    p1, p2 = next(inst.required_edges())
    g.set_out_neighbors(p1, [x for x in g.out_neighbors(p1) if int(x) != p2])
    benchmark.pedantic(lambda: attack_block_graph(g, inst), rounds=3, iterations=1)


def test_epsilon_range_via_t(benchmark):
    """The paper's remark: the parameter t lets the bound cover a wide
    range of eps at any given n — tabulated."""
    rows = []
    n_target = 64
    for s in [2, 4, 8]:
        d = 1
        t = max(1, n_target // s)
        inst = build_block_instance(s, t, d)
        rows.append(
            [s, t, inst.n, round(inst.epsilon, 4), inst.required_edge_count]
        )
    write_table(
        "t12_block_eps_range",
        "E5d: sweeping eps at ~fixed n via the block count t (d=1)",
        ["s", "t", "n", "eps", "required"],
        rows,
        notes="t decouples n from s, extending the bound across eps regimes",
    )
    benchmark.pedantic(
        lambda: build_block_instance(8, 8, 1), rounds=3, iterations=1
    )
