"""E4 — Theorem 1.2(1) / Figure 1: the tree-metric instance forces
Omega(n log Delta) edges on any 2-PG, regardless of query time.

The bench (i) tabulates the required-edge count ``|P1| * |P2|`` across
the (n, Delta) grid, (ii) verifies our own G_net carries every required
edge (the bound is tight against the Theorem 1.1 construction), and
(iii) runs the executable adversary against pruned graphs — every single
removed required edge must yield a valid failure certificate."""

from __future__ import annotations

from benchmarks.conftest import write_table
from repro.baselines import build_complete_graph
from repro.graphs import build_gnet
from repro.lowerbounds import attack_tree_graph, build_tree_instance


def test_required_edges_grid(benchmark):
    rows = []
    for n, delta in [(16, 128), (16, 512), (16, 2048), (32, 1024), (64, 2048)]:
        inst = build_tree_instance(n, delta)
        rows.append(
            [
                n,
                delta,
                inst.height,
                inst.dataset.n,
                len(inst.p1),
                len(inst.p2),
                inst.required_edge_count,
                round(inst.required_edge_count / (n * (inst.height - 1)), 3),
            ]
        )
    write_table(
        "t12_tree_required",
        "E4a: tree instance — edges every 2-PG must contain (Fig. 1)",
        ["n", "Delta", "h", "|P|", "|P1|", "|P2|", "required",
         "required/(n log Delta)"],
        rows,
        notes=(
            "required = |P1|*|P2| = n * ~h/2: linear in log Delta at fixed n "
            "— the Omega(n log Delta) bound (Theorem 1.2(1))"
        ),
    )
    benchmark.pedantic(
        lambda: build_tree_instance(64, 2048), rounds=3, iterations=1
    )


def test_gnet_meets_the_bound(benchmark):
    """G_net at eps=1 is a 2-PG, so it must contain all required edges —
    and its total edge count shows the bound is within a constant of
    optimal on this instance."""
    rows = []
    for n, delta in [(16, 128), (16, 1024), (32, 1024)]:
        inst = build_tree_instance(n, delta)
        res = build_gnet(inst.dataset, epsilon=1.0, method="vectorized")
        missing = inst.missing_required_edges(res.graph)
        rows.append(
            [
                n,
                delta,
                inst.required_edge_count,
                res.graph.num_edges,
                len(missing),
                round(res.graph.num_edges / inst.required_edge_count, 2),
            ]
        )
        assert missing == [], "a 2-PG missed a required edge — impossible"
    write_table(
        "t12_tree_gnet",
        "E4b: G_net (eps=1) against the tree lower bound",
        ["n", "Delta", "required", "gnet_edges", "missing", "gnet/required"],
        rows,
        notes=(
            "missing must be 0 everywhere; gnet/required is the constant-"
            "factor gap between Theorem 1.1's upper bound and Theorem 1.2(1)"
        ),
    )
    inst = build_tree_instance(32, 1024)
    benchmark.pedantic(
        lambda: build_gnet(inst.dataset, epsilon=1.0, method="vectorized"),
        rounds=1,
        iterations=1,
    )


def test_adversary_defeats_every_pruned_edge(benchmark):
    """Remove each required edge in turn from a complete graph: the
    Section 3 adversary must produce a valid certificate every time."""
    inst = build_tree_instance(8, 64, strict=False)
    base = build_complete_graph(inst.dataset)
    defeated = 0
    total = 0
    for v1, v2 in inst.required_edges():
        g = base.copy()
        g.set_out_neighbors(v1, [x for x in g.out_neighbors(v1) if int(x) != v2])
        cert = attack_tree_graph(g, inst)
        total += 1
        if cert is not None and cert.is_valid():
            defeated += 1
    write_table(
        "t12_tree_adversary",
        "E4c: adversary success rate over all single-edge prunings",
        [
            "n", "Delta", "required edges tried", "defeated",
        ],
        [[8, 64, total, defeated]],
        notes="defeated must equal tried: every required edge is truly required",
    )
    assert defeated == total == inst.required_edge_count

    g = base.copy()
    v1, v2 = next(inst.required_edges())
    g.set_out_neighbors(v1, [x for x in g.out_neighbors(v1) if int(x) != v2])
    benchmark.pedantic(lambda: attack_tree_graph(g, inst), rounds=3, iterations=1)
