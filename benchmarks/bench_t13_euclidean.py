"""E6 — Theorem 1.3: the Euclidean separation.

On the exponential-cluster-chain family (where Theorem 1.1's
``n log Delta`` size is *tight* — bench E1b), sweep ``log Delta`` at
fixed local geometry and compare:

* G_net edges           — grow linearly in ``log Delta`` (Theorem 1.1);
* merged-graph edges    — stay ~flat at ``O((1/eps)^lambda n)`` (Theorem 1.3);
* theta-graph edges     — the flat ``O(n)`` core the merge inherits;

while the merged graph keeps polylog greedy cost and the (1+eps)
guarantee.  This is the paper's headline "Euclidean separation" made
measurable: in general metric spaces the flat line is *impossible*
(Theorem 1.2(1)), in Euclidean space we draw it."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.core import measure_queries
from repro.graphs import build_gnet, build_merged_graph, build_theta_graph
from repro.workloads import exponential_cluster_chain, make_dataset, uniform_queries

EPS = 1.0
THETA = 0.25  # generous demo angle: full eps/32 cones are exercised in tests


def test_separation_edges_vs_log_delta(benchmark, bench_rng):
    cluster_size = 40
    rows = []
    gnet_pp, merged_pp = [], []
    log_deltas = []
    for clusters in [2, 4, 8, 16]:
        pts = exponential_cluster_chain(clusters, cluster_size, np.random.default_rng(5))
        ds = make_dataset(pts)
        gnet = build_gnet(ds, EPS, method="grid")
        geo = build_theta_graph(ds, THETA, method="sweep")
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(11), gnet=gnet, geo=geo
        )
        log_delta = max(gnet.params.height - 1, 1)
        log_deltas.append(log_delta)
        gnet_pp.append(gnet.graph.num_edges / ds.n)
        merged_pp.append(merged.graph.num_edges / ds.n)
        rows.append(
            [
                clusters,
                ds.n,
                log_delta,
                round(gnet.graph.num_edges / ds.n, 1),
                round(merged.graph.num_edges / ds.n, 1),
                round(geo.graph.num_edges / ds.n, 1),
                round(merged.tau, 3),
            ]
        )
    gnet_growth = gnet_pp[-1] - gnet_pp[0]
    merged_growth = merged_pp[-1] - merged_pp[0]
    write_table(
        "t13_separation",
        "E6a: the Euclidean separation — edges/point vs log Delta "
        f"(eps={EPS}, cluster chain)",
        ["clusters", "n", "log2(Delta)", "gnet e/n", "merged e/n",
         "theta e/n", "tau"],
        rows,
        notes=(
            f"edges/point growth across the sweep: gnet +{gnet_growth:.1f}, "
            f"merged +{merged_growth:.1f}.  Theorem 1.3: the merged curve is "
            "~flat while G_net pays log Delta (impossible to avoid in general "
            "metrics by Theorem 1.2(1))."
        ),
    )
    assert gnet_growth > 0
    assert merged_growth < 0.5 * gnet_growth, (
        "merged graph should grow much slower than G_net with log Delta"
    )

    pts = exponential_cluster_chain(16, cluster_size, np.random.default_rng(5))
    ds = make_dataset(pts)
    benchmark.pedantic(
        lambda: build_merged_graph(
            ds, EPS, np.random.default_rng(11), theta=THETA, gnet_method="grid",
            theta_method="sweep",
        ),
        rounds=1,
        iterations=1,
    )


def test_merged_query_quality_and_cost(benchmark, bench_rng):
    """The merged graph must keep the (1+eps) guarantee and reasonable
    greedy cost across the same sweep."""
    rows = []
    for clusters in [4, 8, 16]:
        pts = exponential_cluster_chain(clusters, 40, np.random.default_rng(5))
        ds = make_dataset(pts)
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(11), theta=THETA,
            gnet_method="grid", theta_method="sweep",
        )
        queries = list(uniform_queries(50, np.asarray(ds.points), bench_rng))
        stats = measure_queries(merged.graph, ds, queries, epsilon=EPS)
        h = merged.params.height
        rows.append(
            [
                clusters,
                ds.n,
                h,
                round(stats.mean_distance_evals, 1),
                stats.max_distance_evals,
                round(stats.epsilon_satisfied_fraction, 3),
            ]
        )
        assert stats.epsilon_satisfied_fraction == 1.0
    write_table(
        "t13_merged_query",
        f"E6b: merged-graph greedy cost across log Delta (eps={EPS})",
        ["clusters", "n", "h", "evals_mean", "evals_max", "eps_ok"],
        rows,
        notes="eps_ok must be 1.0: navigability is inherited from G_geo",
    )

    pts = exponential_cluster_chain(16, 40, np.random.default_rng(5))
    ds = make_dataset(pts)
    merged = build_merged_graph(
        ds, EPS, np.random.default_rng(11), theta=THETA,
        gnet_method="grid", theta_method="sweep",
    )
    queries = list(uniform_queries(50, np.asarray(ds.points), bench_rng))
    benchmark.pedantic(
        lambda: measure_queries(merged.graph, ds, queries, epsilon=EPS),
        rounds=1,
        iterations=1,
    )


def test_best_of_runs_size_control(benchmark, bench_rng):
    """Section 5.3: repeating the sampling O(log n) times and keeping the
    smallest graph controls the size w.h.p. — quantified."""
    pts = exponential_cluster_chain(8, 40, np.random.default_rng(5))
    ds = make_dataset(pts)
    merged = build_merged_graph(
        ds, EPS, np.random.default_rng(23), theta=THETA, runs=10,
        gnet_method="grid", theta_method="sweep",
    )
    counts = merged.runs_edge_counts
    rows = [[i, c] for i, c in enumerate(counts)]
    write_table(
        "t13_runs",
        "E6c: edge counts across 10 independent jackpot samplings",
        ["run", "edges"],
        rows,
        notes=(
            f"kept = min = {min(counts)}; max = {max(counts)}; "
            "the best-of-O(log n) trick converts the expectation bound into "
            "a w.h.p. bound (Markov + independent repetition)"
        ),
    )
    assert merged.graph.num_edges == min(counts)

    benchmark.pedantic(
        lambda: build_merged_graph(
            ds, EPS, np.random.default_rng(23), theta=THETA, runs=10,
            gnet_method="grid", theta_method="sweep",
        ),
        rounds=1,
        iterations=1,
    )
