"""E7 — Lemma 5.1's "small-but-slow" trade-off, and how the merge fixes it.

A theta-graph is a (1+eps)-PG with only O(n) edges, but nothing bounds
how many *hops* greedy needs: on a chain-like input, greedy creeps
through ~n vertices.  The jackpot edges of the merged graph (Theorem 1.3)
give greedy log-Delta expressways.  We measure both on the exponential
line — few points, huge aspect ratio, maximal creep."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_table
from repro.core import measure_queries
from repro.graphs import build_gnet, build_merged_graph, build_theta_graph
from repro.workloads import exponential_cluster_chain, make_dataset

EPS = 1.0
THETA = 0.25


def test_theta_alone_creeps_merged_flies(benchmark, bench_rng):
    rows = []
    for clusters in [8, 16, 24]:
        # long chain of tiny clusters: greedy on the theta-graph must walk
        # cluster by cluster; jackpot G_net edges jump scales directly.
        pts = exponential_cluster_chain(
            clusters, 6, np.random.default_rng(2), base=2.5
        )
        ds = make_dataset(pts)
        geo = build_theta_graph(ds, THETA, method="sweep")
        gnet = build_gnet(ds, EPS, method="grid")
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(3), gnet=gnet, geo=geo, z=4.0
        )
        # Query near the far end, start at the near end: worst creep.
        far_point = np.asarray(ds.points)[np.argmax(np.asarray(ds.points)[:, 0])]
        q = far_point + np.array([3.0, 0.0])
        start = int(np.argmin(np.asarray(ds.points)[:, 0]))
        theta_stats = measure_queries(
            geo.graph, ds, [q], epsilon=EPS, starts=[start]
        )
        merged_stats = measure_queries(
            merged.graph, ds, [q], epsilon=EPS, starts=[start]
        )
        rows.append(
            [
                clusters,
                ds.n,
                theta_stats.max_hops,
                merged_stats.max_hops,
                theta_stats.max_distance_evals,
                merged_stats.max_distance_evals,
                round(theta_stats.epsilon_satisfied_fraction, 2),
                round(merged_stats.epsilon_satisfied_fraction, 2),
            ]
        )
    write_table(
        "t13_theta_slow",
        "E7: end-to-end worst-path hops — theta-graph alone vs merged "
        f"(eps={EPS})",
        ["clusters", "n", "theta hops", "merged hops", "theta evals",
         "merged evals", "theta ok", "merged ok"],
        rows,
        notes=(
            "Both are (1+eps)-PGs (ok = 1.0), but the theta-graph's hop count "
            "grows with the chain length while the merged graph jumps via "
            "jackpot vertices — Section 5.2's speed argument"
        ),
    )
    assert all(r[6] == 1.0 and r[7] == 1.0 for r in rows)
    theta_hops = [r[2] for r in rows]
    merged_hops = [r[3] for r in rows]
    # Creep grows along the sweep for theta; merged stays below it at the end.
    assert theta_hops[-1] > theta_hops[0]
    assert merged_hops[-1] <= theta_hops[-1]

    pts = exponential_cluster_chain(24, 6, np.random.default_rng(2), base=2.5)
    ds = make_dataset(pts)
    geo = build_theta_graph(ds, THETA, method="sweep")
    far_point = np.asarray(ds.points)[np.argmax(np.asarray(ds.points)[:, 0])]
    q = far_point + np.array([3.0, 0.0])
    start = int(np.argmin(np.asarray(ds.points)[:, 0]))
    benchmark.pedantic(
        lambda: measure_queries(geo.graph, ds, [q], epsilon=EPS, starts=[start]),
        rounds=1,
        iterations=1,
    )


def test_jackpot_condition_empirics(benchmark, bench_rng):
    """Section 5.2's jackpot condition: greedy-on-G_geo stretches longer
    than ceil(ln n * log Delta) without a jackpot vertex should be rare at
    tau = z/log Delta."""
    import math

    pts = exponential_cluster_chain(12, 10, np.random.default_rng(4), base=2.5)
    ds = make_dataset(pts)
    geo = build_theta_graph(ds, THETA, method="sweep")
    gnet = build_gnet(ds, EPS, method="grid")
    rows = []
    for z in [1.0, 2.0, 4.0]:
        merged = build_merged_graph(
            ds, EPS, np.random.default_rng(8), gnet=gnet, geo=geo, z=z, runs=1
        )
        window = math.ceil(math.log(ds.n) * max(merged.params.height, 1))
        # Walk greedy traces on the merge; measure the longest stretch of
        # consecutive non-jackpot hop vertices.
        from repro.graphs import greedy

        longest = 0
        for _ in range(40):
            q = bench_rng.uniform(-5, 1200, size=2)
            start = int(bench_rng.integers(ds.n))
            trace = greedy(merged.graph, ds, start, q).hops
            run = 0
            for p in trace:
                run = 0 if merged.jackpot[p] else run + 1
                longest = max(longest, run)
        rows.append([z, round(merged.tau, 3), window, longest])
    write_table(
        "t13_jackpot",
        "E7b: longest non-jackpot greedy stretch vs the ln(n)*log(Delta) window",
        ["z", "tau", "window", "longest stretch observed"],
        rows,
        notes=(
            "Larger z = denser jackpots = shorter stretches; the Section 5.2 "
            "analysis needs stretches <= window, which holds w.h.p."
        ),
    )
    stretches = [r[3] for r in rows]
    assert stretches[-1] <= stretches[0] + 2, "more jackpots should not lengthen stretches"
    assert all(r[3] <= r[2] for r in rows), "observed stretch exceeded the whp window"

    benchmark.pedantic(
        lambda: build_merged_graph(
            ds, EPS, np.random.default_rng(8), gnet=gnet, geo=geo, z=2.0, runs=1
        ),
        rounds=1,
        iterations=1,
    )
