"""Shared benchmark utilities.

Every bench regenerates one of the paper's quantitative claims (see
DESIGN.md §3 for the experiment index).  Bench output goes two places:
stdout (visible with ``pytest benchmarks/ --benchmark-only -s``) and
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference a
reproducible artifact.

Conventions: seeds are fixed; sizes are laptop-scale (the goal is the
*shape* of each curve — who wins, what grows with what — not absolute
numbers from the authors' hardware).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(2025)


def write_table(
    name: str,
    title: str,
    headers: list[str],
    rows: list[list],
    notes: str = "",
) -> str:
    """Format an aligned text table, print it, and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[j]) for r in str_rows)) if str_rows else len(h)
        for j, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if notes:
        lines += ["", notes]
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x) — the growth exponent
    benches assert on (e.g. ~1 for linear-in-n edge counts)."""
    lx, ly = np.log(np.asarray(xs, float)), np.log(np.asarray(ys, float))
    lx = lx - lx.mean()
    return float((lx @ (ly - ly.mean())) / (lx @ lx))
