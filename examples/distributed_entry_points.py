"""Start-vertex flexibility as a load balancer — the paper's closing
observation made runnable.

Run:  python examples/distributed_entry_points.py

The paper's "paradigm critique" ends on a strength: greedy works from
*any* start vertex, which "suggests that the paradigm may have strengths
in enforcing load-balancing in network-scale distributed computing
(Internet-of-Things applications)".

We simulate that setting: the proximity graph is a physical sensor
network (each vertex = a node that can measure distance-to-query and
forward).  Queries arrive at random gateway nodes — there is no central
entry point.  Because G_net guarantees a (1+eps)-ANN from every start:

* answer quality is identical no matter the gateway;
* per-node traffic (how often each node serves as a hop) spreads out,
  instead of hammering a single root/entry node the way tree-structured
  or fixed-entry indexes do.

We measure both, comparing random gateways against an HNSW-style fixed
entry point on the same graph.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import build_gnet, greedy
from repro.workloads import make_dataset, uniform_cube, uniform_queries


def main() -> None:
    rng = np.random.default_rng(3)
    n = 600
    ds = make_dataset(uniform_cube(n, 2, rng))  # sensor positions
    res = build_gnet(ds, epsilon=0.5, method="grid")
    points = np.asarray(ds.points)
    queries = list(uniform_queries(400, points, rng))

    def run(entry_policy: str) -> tuple[np.ndarray, float]:
        load = np.zeros(n, dtype=np.int64)
        worst_ratio = 1.0
        for q in queries:
            start = 0 if entry_policy == "fixed" else int(rng.integers(n))
            result = greedy(res.graph, ds, start, q)
            for hop in result.hops:
                load[hop] += 1
            nn = ds.distances_to_query_all(q).min()
            if nn > 0:
                worst_ratio = max(worst_ratio, result.distance / nn)
        return load, worst_ratio

    print(f"Sensor network: {n} nodes, G_net with eps=0.5 "
          f"({res.graph.num_edges} links), 400 queries\n")
    for policy in ["fixed", "random"]:
        load, worst = run(policy)
        busiest = load.max()
        p99 = int(np.percentile(load, 99))
        gini = _gini(load)
        print(f"entry policy: {policy:6s}   worst answer ratio: {worst:.4f}  "
              f"(guarantee <= 1.5)")
        print(f"  busiest node handled {busiest} hops; p99 load {p99}; "
              f"load Gini {gini:.3f}")
        print(f"  load histogram: {_sparkline(load)}\n")

    print(
        "Same guarantee either way — that's the point.  But the fixed entry "
        "node becomes\na hotspot (its load ~= the query count), while random "
        "gateways spread traffic\nacross the network. The guarantee is what "
        "makes the random policy safe."
    )


def _gini(x: np.ndarray) -> float:
    x = np.sort(x.astype(float))
    if x.sum() == 0:
        return 0.0
    cum = np.cumsum(x)
    return float(1 - 2 * (cum / cum[-1]).mean() + 1 / len(x))


def _sparkline(load: np.ndarray, bins: int = 30) -> str:
    hist, _ = np.histogram(load, bins=bins)
    blocks = " .:-=+*#%@"
    top = hist.max() or 1
    return "".join(blocks[min(int(h / top * (len(blocks) - 1)), 9)] for h in hist)


if __name__ == "__main__":
    main()
