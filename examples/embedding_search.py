"""Embedding similarity search — the workload the paper's introduction
motivates (recommendation systems, multimedia search, DB-for-AI).

Run:  python examples/embedding_search.py

We simulate an embedding corpus the way such corpora actually look: a
mixture of topic clusters on a low-dimensional manifold inside a higher-
dimensional ambient space (real embeddings have low *intrinsic* —
doubling — dimension, which is exactly the parameter lambda the paper's
bounds depend on).  The example then contrasts:

* G_net (Theorem 1.1)     — guaranteed (1+eps)-ANN for every query;
* HNSW                    — the empirical champion, no guarantee;
* k-NN digraph            — the naive graph, which visibly fails.

The punchline mirrors the paper's question "is PG performance driven by
dataset properties, or inherent strengths?".  Each query regime breaks
the unguaranteed graphs differently: on in-distribution queries (tiny NN
distances, so (1+eps) is a *demanding* target) they silently return
points several times farther than the true neighbor; on out-of-
distribution queries their recall collapses.  The guaranteed
construction holds the eps contract in both regimes — by theorem, not by
luck.  (All methods are routed with the paper's greedy procedure on
their graphs, the model the theory speaks about.)
"""

from __future__ import annotations

import numpy as np

from repro.core import build, measure_queries
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance


def synthetic_embedding_corpus(
    n: int, intrinsic_dim: int, ambient_dim: int, topics: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Topic mixture on a random low-dimensional subspace + small ambient
    noise — a standard model of learned embedding geometry."""
    basis = np.linalg.qr(rng.normal(size=(ambient_dim, intrinsic_dim)))[0]
    centers = rng.normal(size=(topics, intrinsic_dim)) * 4.0
    topic_of = rng.integers(topics, size=n)
    latent = centers[topic_of] + rng.normal(size=(n, intrinsic_dim)) * 0.35
    return latent @ basis.T + rng.normal(size=(n, ambient_dim)) * 0.01


def main() -> None:
    rng = np.random.default_rng(7)
    n, intrinsic, ambient, topics = 800, 3, 12, 10
    corpus = synthetic_embedding_corpus(n, intrinsic, ambient, topics, rng)
    dataset, _ = normalize_min_distance(Dataset(EuclideanMetric(), corpus))
    points = np.asarray(dataset.points)
    eps = 1.0

    print(f"Corpus: {n} embeddings, ambient dim {ambient}, intrinsic dim ~{intrinsic}")

    # In-distribution queries: perturbed corpus items (a user looking for
    # "more like this").  Out-of-distribution: far random directions (a
    # cold-start query, adversarial input, or distribution shift).
    diag = float(np.linalg.norm(points.max(0) - points.min(0)))
    easy = [points[i] + rng.normal(size=ambient) * 0.01 * diag for i in range(0, n, 40)]
    hard = [
        points.mean(0) + d / np.linalg.norm(d) * diag * 2.5
        for d in rng.normal(size=(20, ambient))
    ]

    header = f"{'method':10s} {'edges':>8s} {'evals/q':>9s} {'recall@1':>9s} {'eps ok':>7s}"
    for label, queries in [("in-distribution", easy), ("out-of-distribution", hard)]:
        print(f"\n--- {label} queries ---")
        print(header)
        for name, opts in [("gnet", {}), ("hnsw", {"m": 8}), ("knn", {"k": 8})]:
            built = build(name, dataset, eps, np.random.default_rng(1), **opts)
            stats = measure_queries(built.graph, dataset, queries, epsilon=eps)
            print(
                f"{name:10s} {built.graph.num_edges:8d} "
                f"{stats.mean_distance_evals:9.1f} {stats.recall_at_1:9.3f} "
                f"{stats.epsilon_satisfied_fraction:7.3f}"
            )

    print(
        "\nReading: gnet's 'eps ok' column is 1.0 in every row — that is "
        "Theorem 1.1.\nIn-distribution, the unguaranteed graphs miss the "
        "(1+eps) contract (tiny NN\ndistances make it demanding); out-of-"
        "distribution their recall collapses even\nthough far queries "
        "satisfy eps trivially.  The guarantee costs edges — that is\n"
        "the trade Theorem 1.2 proves unavoidable."
    )


if __name__ == "__main__":
    main()
