"""The Euclidean separation (Theorem 1.3) in one picture-worth of numbers.

Run:  python examples/euclidean_separation.py

Statement (1) of Theorem 1.2 says: in general metric spaces, any 2-PG
must pay Omega(n log Delta) edges — no construction can dodge it.
Theorem 1.3 says: in Euclidean space, O((1/eps)^lambda * n) suffices.

This example makes that pair of statements concrete.  We grow the aspect
ratio Delta over four orders of magnitude while holding the local
geometry fixed (the exponential cluster chain, where the n log Delta
bound is tight), and chart edges-per-point for:

    G_net   (general-metric construction; pays log Delta)
    merged  (Euclidean construction: sampled G_net + theta-graph; flat)

while confirming both stay certified (1+eps)-PGs throughout.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import (
    build_gnet,
    build_merged_graph,
    build_theta_graph,
    find_violations,
)
from repro.workloads import exponential_cluster_chain, make_dataset, uniform_queries

EPS = 1.0
THETA = 0.25  # demo angle; Lemma 5.1's eps/32 gives the same shape with more cones


def bar(value: float, scale: float = 1.0, width: int = 48) -> str:
    filled = int(min(value * scale, width))
    return "#" * filled


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"{'log2(Delta)':>12s} {'n':>5s}   {'G_net edges/pt':>15s}   {'merged edges/pt':>15s}")
    print("-" * 90)
    rows = []
    for clusters in [2, 4, 8, 16, 24]:
        pts = exponential_cluster_chain(clusters, 40, np.random.default_rng(5))
        ds = make_dataset(pts)
        gnet = build_gnet(ds, EPS, method="grid")
        geo = build_theta_graph(ds, THETA, method="sweep")
        merged = build_merged_graph(ds, EPS, np.random.default_rng(11), gnet=gnet, geo=geo)
        log_delta = gnet.params.height - 1
        g_pp = gnet.graph.num_edges / ds.n
        m_pp = merged.graph.num_edges / ds.n
        rows.append((log_delta, ds.n, g_pp, m_pp))
        print(
            f"{log_delta:12d} {ds.n:5d}   {g_pp:15.1f}   {m_pp:15.1f}   "
            f"|{bar(g_pp, 0.7):48s}| gnet"
        )
        print(f"{'':12s} {'':5s}   {'':15s}   {'':15s}   |{bar(m_pp, 0.7):48s}| merged")

        # Both must remain certified (1+eps)-PGs.
        queries = list(uniform_queries(30, np.asarray(ds.points), rng))
        assert find_violations(gnet.graph, ds, queries, EPS, stop_at=1) == []
        assert find_violations(merged.graph, ds, queries, EPS, stop_at=1) == []

    g_growth = rows[-1][2] - rows[0][2]
    m_growth = rows[-1][3] - rows[0][3]
    print("-" * 90)
    print(
        f"Across the sweep: G_net grew by {g_growth:+.1f} edges/point, the "
        f"merged graph by {m_growth:+.1f}."
    )
    print(
        "The flat merged line is impossible in general metric spaces "
        "(Theorem 1.2(1));\ngeometry buys it (Theorem 1.3). Both graphs stayed "
        "certified (1+eps)-PGs at every size."
    )


if __name__ == "__main__":
    main()
