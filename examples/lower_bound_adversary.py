"""The Theorem 1.2 lower bounds as an interactive story.

Run:  python examples/lower_bound_adversary.py

Act 1 (Section 3, Figure 1): the tree-metric instance.  Any 2-PG must
keep all |P1| x |P2| = Omega(n log Delta) edges; we prune one and watch
greedy strand itself.

Act 2 (Section 4, Figure 2): the block instance.  An index builder only
ever sees distances inside P; Alice picks the metric D_{p*} *after*
seeing the graph.  We play both sides and watch her win against any
graph that skimped on intra-block edges.

Act 3: our own G_net survives both attacks — as it must, being a
certified (1+eps)-PG.
"""

from __future__ import annotations

from repro.baselines import build_complete_graph
from repro.graphs import build_gnet, greedy
from repro.lowerbounds import (
    attack_block_graph,
    attack_tree_graph,
    build_block_instance,
    build_tree_instance,
)


def act_one() -> None:
    print("=" * 72)
    print("Act 1: the tree metric (Fig. 1) — why n log Delta edges are needed")
    print("=" * 72)
    inst = build_tree_instance(n=16, delta=128)
    print(f"Instance: n={inst.n_param}, Delta={inst.delta}, h={inst.height}")
    print(f"|P| = {inst.dataset.n}  (cluster P1: {len(inst.p1)}, spread P2: {len(inst.p2)})")
    print(f"Required edges: {inst.lower_bound_formula()}")

    g = build_complete_graph(inst.dataset)
    v1, v2 = next(inst.required_edges())
    print(f"\nPruning the single edge ({v1} -> {v2}) from a complete graph...")
    g.set_out_neighbors(v1, [x for x in g.out_neighbors(v1) if int(x) != v2])

    cert = attack_tree_graph(g, inst)
    assert cert is not None
    print(f"Adversary's query: leaf {cert.query} (the NN is the query itself)")
    result = greedy(g, inst.dataset, cert.p_start, cert.query)
    print(
        f"greedy({cert.p_start}, q) returned point {result.point} at distance "
        f"{result.distance} — the true NN distance is {cert.nn_distance}."
    )
    print("One missing edge, and the guarantee is gone. All n*log(Delta) are needed.")


def act_two() -> None:
    print()
    print("=" * 72)
    print("Act 2: the block instance (Fig. 2) — why (1/eps)^lambda is needed")
    print("=" * 72)
    inst = build_block_instance(side=3, copies=2, dim=2)
    print(
        f"Instance: s={inst.side}, t={inst.copies}, d={inst.dim} -> n={inst.n}, "
        f"eps=1/(2s)={inst.epsilon:.4f}"
    )
    print(f"Required edges: {inst.lower_bound_formula()}")
    print(
        "\nThe builder sees only L_inf distances inside P.  The phantom point q\n"
        "exists in the metric space, but its distances stay undefined until\n"
        "Alice commits to p* — after inspecting the graph."
    )

    g = build_complete_graph(inst.dataset)
    p1, p2 = next(inst.required_edges())
    print(f"\nPruning intra-block edge ({p1} -> {p2})...")
    g.set_out_neighbors(p1, [x for x in g.out_neighbors(p1) if int(x) != p2])

    cert = attack_block_graph(g, inst)
    assert cert is not None
    print(
        f"Alice commits p* = {p2}: now D(q, p*) = s-1 = {cert.nn_distance}, every "
        f"other point is at distance >= s = {inst.side}."
    )
    print(
        f"greedy({p1}, q) returns point {cert.returned_point} at distance "
        f"{cert.returned_distance} > (1+eps)*{cert.nn_distance} = "
        f"{(1 + cert.epsilon) * cert.nn_distance:.3f}.  Alice wins."
    )


def act_three() -> None:
    print()
    print("=" * 72)
    print("Act 3: G_net survives both attacks")
    print("=" * 72)
    tree_inst = build_tree_instance(n=16, delta=128)
    tree_gnet = build_gnet(tree_inst.dataset, epsilon=1.0, method="vectorized")
    tree_cert = attack_tree_graph(tree_gnet.graph, tree_inst)
    print(
        f"Tree instance: G_net has {tree_gnet.graph.num_edges} edges "
        f"(required: {tree_inst.required_edge_count}); adversary: "
        f"{'DEFEATED US' if tree_cert else 'no missing edge found — survived'}"
    )

    block_inst = build_block_instance(side=3, copies=2, dim=2)
    block_gnet = build_gnet(
        block_inst.normalized_dataset(), epsilon=block_inst.epsilon,
        method="vectorized",
    )
    block_cert = attack_block_graph(block_gnet.graph, block_inst)
    print(
        f"Block instance: G_net has {block_gnet.graph.num_edges} edges "
        f"(required: {block_inst.required_edge_count}); Alice: "
        f"{'DEFEATED US' if block_cert else 'no missing edge found — survived'}"
    )
    print(
        "\nThe upper bound (Theorem 1.1) and the lower bounds (Theorem 1.2) "
        "meet: the\nedges the adversaries demand are exactly the edges G_net pays for."
    )


if __name__ == "__main__":
    act_one()
    act_two()
    act_three()
