"""Quickstart: build a provable (1+eps)-ANN index and query it.

Run:  python examples/quickstart.py

Demonstrates the core loop of the library on a small Euclidean dataset:
build the Theorem 1.1 graph (G_net), inspect its structural statistics,
answer queries with the paper's greedy routine, validate navigability
(Fact 2.1), and compare against brute force.
"""

from __future__ import annotations

import numpy as np

from repro import ProximityGraphIndex
from repro.metrics import Dataset, EuclideanMetric


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Some data: 1,000 points in the unit square.
    points = rng.uniform(size=(1000, 2))

    # 2. Build the index.  epsilon=0.5 means every greedy query is
    #    guaranteed to return a point within 1.5x of the true NN distance,
    #    from any start vertex, for any query in R^2.
    index = ProximityGraphIndex.build(points, epsilon=0.5, method="gnet", seed=0)
    print("Graph statistics:")
    for key, value in index.stats().items():
        print(f"  {key:>22}: {value}")

    # 3. Query through the one front door: search().  Start vertex is
    #    arbitrary (the paper highlights this flexibility); distances
    #    come back in the original units.
    exact = Dataset(EuclideanMetric(), points)
    print("\nQueries (greedy vs exact):")
    worst_ratio = 1.0
    for _ in range(8):
        q = rng.uniform(size=2)
        pid, dist = index.search(q).top1()
        nn_id, nn_dist = exact.nearest_neighbor(q)
        ratio = dist / nn_dist if nn_dist > 0 else 1.0
        worst_ratio = max(worst_ratio, ratio)
        marker = "exact" if pid == nn_id else f"ratio {ratio:.4f}"
        print(f"  q=({q[0]:.3f}, {q[1]:.3f})  ->  point {pid:4d}  ({marker})")
    print(f"\nWorst observed ratio: {worst_ratio:.4f}  (guarantee: <= 1.5)")

    # 4. Validate the guarantee explicitly on a query batch (Fact 2.1).
    queries = [rng.uniform(-0.2, 1.2, size=2) for _ in range(100)]
    violations = index.validate(queries, stop_at=None)
    print(f"Navigability violations on 100 random queries: {len(violations)}")

    # 5. Top-k: the same search() call with k > 1 switches to beam
    #    search (the practical extension every deployed system uses on
    #    top of the greedy model).  A whole batch works the same way —
    #    search() returns (m, k) arrays of ids and distances.
    q = np.array([0.5, 0.5])
    top5 = index.search(q, k=5)
    print(f"\nTop-5 near (0.5, 0.5): {[(p, round(d, 4)) for p, d in top5.pairs(0)]}")


if __name__ == "__main__":
    main()
