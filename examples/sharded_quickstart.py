"""Sharded index quickstart: parallel build, fan-out search, mutation.

Run:  python examples/sharded_quickstart.py

One collection, two front doors.  The flat ``ProximityGraphIndex`` is
one graph in one process; ``ShardedIndex`` partitions the collection
into K shards, builds each shard's graph in a process pool over a
zero-copy shared-memory arena, and serves ``search()`` by fanning the
query batch out and merging per-shard top-k.  Both implement the same
``SearchableIndex`` protocol, so the serving code below never cares
which kind it holds — which is the whole point: start flat, shard when
build time or collection size says so, change nothing downstream.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ProximityGraphIndex, SearchParams, ShardedIndex, load_any
from repro.workloads import gaussian_clusters, uniform_queries


def serve(index, queries) -> None:
    """One serving path for either index kind (SearchableIndex)."""
    result = index.search(queries, k=5, params=SearchParams(seed=7))
    print(f"    top-1 of query 0: id={result.ids[0, 0]} "
          f"dist={result.distances[0, 0]:.4f}")
    print(f"    mean distance evals/query: {result.evals.mean():.0f}", end="")
    if result.shard_evals is not None:
        per = result.shard_evals.mean(axis=0).round(0).astype(int)
        print(f"  (per shard: {per.tolist()})", end="")
    print()


def main() -> None:
    rng = np.random.default_rng(3)
    points = gaussian_clusters(6000, 8, rng, clusters=12)
    queries = uniform_queries(200, points, rng)

    print("flat build (one process, one graph):")
    t0 = time.perf_counter()
    flat = ProximityGraphIndex.build(points, method="vamana", seed=0)
    print(f"    {time.perf_counter() - t0:.1f}s")
    serve(flat, queries)

    print("sharded build (4 shards, 4 worker processes, shared arena):")
    t0 = time.perf_counter()
    sharded = ShardedIndex.build(
        points, method="vamana", seed=0, shards=4, workers=4
    )
    print(f"    {time.perf_counter() - t0:.1f}s")
    serve(sharded, queries)

    # The mutable-collection semantics carry over unchanged: stable
    # external ids, add routed to the least-loaded shard, delete to the
    # owning shard, tombstones excluded from every result.
    new_ids = sharded.add(rng.uniform(points.min(), points.max(), size=(20, 8)))
    sharded.delete(new_ids[:10])
    print(f"added 20 (ids {new_ids[0]}..{new_ids[-1]}), deleted 10; "
          f"active={sharded.active_count}")

    # Persistence: a manifest directory of per-shard files (format v3).
    # load_any() returns whichever kind was saved.
    out = sharded.save("/tmp/repro_sharded_quickstart")
    reloaded = load_any(out)
    print(f"reloaded from {out}: kind={type(reloaded).__name__}, "
          f"n={reloaded.n}, shards={reloaded.stats()['shards']}")
    serve(reloaded, queries)

    sharded.close()  # release the arena + worker pool


if __name__ == "__main__":
    main()
