"""Streaming insertions with the incremental G_net (library extension).

Run:  python examples/streaming_index.py

The paper's construction (Theorem 1.1) is offline.  Its proof, though,
only uses local net properties, which can be maintained online — see
``repro/graphs/dynamic.py``.  This example ingests a stream of points,
answering queries between insertions, and periodically *audits* the live
index: net invariants (separation/covering per level) and navigability
(Fact 2.1).  The guarantee holds at every prefix of the stream, which is
what a database ingest path actually needs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import find_violations
from repro.graphs.dynamic import DynamicGNet
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import gaussian_clusters


def main() -> None:
    rng = np.random.default_rng(11)
    eps = 1.0

    # The stream: clustered points, pre-scaled so min inter-point
    # distance is 2 (the dynamic index works in normalized units).
    raw = gaussian_clusters(400, 2, rng, clusters=6, spread=0.04)
    _, factor = normalize_min_distance(Dataset(EuclideanMetric(), raw))
    stream = raw * factor
    lo, hi = stream.min(), stream.max()

    diam_budget = float(np.linalg.norm(stream.max(0) - stream.min(0)) * 2)
    index = DynamicGNet(
        EuclideanMetric(), epsilon=eps, domain_diameter=diam_budget, dim=2
    )

    print(f"Ingesting {len(stream)} points (eps={eps}, h={index.params.height})\n")
    audits = 0
    for k, point in enumerate(stream):
        index.insert(point)
        n = len(index)
        if n in (25, 50, 100, 200, 400):
            ds = index.dataset()
            graph = index.graph()
            queries = [rng.uniform(lo, hi, size=2) for _ in range(20)]
            violations = find_violations(graph, ds, queries, eps, stop_at=None)
            index.check_net_invariants()
            audits += 1
            print(
                f"  n={n:4d}  edges={graph.num_edges:6d} "
                f"({graph.num_edges / n:5.1f}/pt)  "
                f"audit: nets OK, navigability violations={len(violations)}"
            )
            assert violations == []

        # A query arrives mid-stream every 50 insertions.
        if n % 50 == 0:
            q = rng.uniform(lo, hi, size=2)
            pid, dist = index.query(q, p_start=int(rng.integers(n)))
            nn = index.dataset().distances_to_query_all(q).min()
            ratio = dist / nn if nn > 0 else 1.0
            print(f"  n={n:4d}  live query -> point {pid} (ratio {ratio:.4f})")

    print(f"\n{audits} audits passed; the (1+eps) contract held at every prefix.")
    print(
        "The same machinery backs the index facade: a gnet "
        "ProximityGraphIndex\ngrows guarantee-preservingly through "
        "index.add(), and index.delete()/compact()\nhandle removals via "
        "tombstones (see the README's mutable-index section)."
    )


if __name__ == "__main__":
    main()
