"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; online environments should use
``pip install -e .``.  The offline reproduction environment lacks the
``wheel`` package, so PEP 517 editable installs fail there — run
``python setup.py develop`` instead, which installs the same metadata
through setuptools' legacy path.
"""

from setuptools import setup

setup()
