"""repro — proximity graphs for similarity search.

A from-scratch reproduction of Lu & Tao, *"Proximity Graphs for
Similarity Search: Fast Construction, Lower Bounds, and Euclidean
Separation"* (PODS 2025, arXiv:2509.07732):

* **Theorem 1.1** — ``repro.graphs.build_gnet``: a (1+eps)-PG with
  ``O((1/eps)^lambda n log Delta)`` edges built from r-net hierarchies in
  near-linear time, for any metric of bounded doubling dimension;
* **Theorem 1.2** — ``repro.lowerbounds``: the two hard instances and
  executable adversaries showing the ``log Delta`` and ``(1/eps)^lambda``
  edge factors are necessary;
* **Theorem 1.3** — ``repro.graphs.build_merged_graph``: in Euclidean
  space, jackpot sampling + theta-graphs remove the ``log Delta`` factor
  entirely.

Start with :class:`repro.ProximityGraphIndex`; drop to the subpackages
(``metrics``, ``nets``, ``anns``, ``graphs``, ``baselines``,
``lowerbounds``, ``workloads``) for the substrates.
"""

from repro.core.builders import available_builders, build
from repro.core.index import ProximityGraphIndex
from repro.core.interface import SearchableIndex
from repro.core.persistence import load_any
from repro.core.search import IdMap, SearchParams, SearchResult
from repro.core.sharded import ShardedIndex
from repro.core.stats import (
    compute_ground_truth,
    compute_ground_truth_k,
    measure_queries,
    storage_breakdown,
)
from repro.graphs import (
    ProximityGraph,
    build_gnet,
    build_merged_graph,
    build_theta_graph,
    bulk_insert,
    greedy,
    greedy_batch,
)
from repro.metrics import Dataset, EuclideanMetric, MetricSpace
from repro.storage import FlatStore, PQStore, SQ8Store, VectorStore, make_store

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "EuclideanMetric",
    "FlatStore",
    "IdMap",
    "MetricSpace",
    "PQStore",
    "ProximityGraph",
    "ProximityGraphIndex",
    "SQ8Store",
    "SearchParams",
    "SearchResult",
    "SearchableIndex",
    "ShardedIndex",
    "VectorStore",
    "available_builders",
    "build",
    "build_gnet",
    "build_merged_graph",
    "build_theta_graph",
    "bulk_insert",
    "compute_ground_truth",
    "compute_ground_truth_k",
    "greedy",
    "greedy_batch",
    "load_any",
    "make_store",
    "measure_queries",
    "storage_breakdown",
    "__version__",
]
