"""``repro.accel`` — opt-in compiled traversal kernels.

The lockstep engines of :mod:`repro.graphs.engine` removed the
per-query Python overhead of scalar search, but their per-round inner
loop is still interpreted: per-query ``heapq`` pools, per-neighbor
``float()``/``int()`` conversions, and one Python-level heap update per
evaluated candidate.  This package runs the *entire* traversal of a
query batch inside compiled code instead:

* CSR neighbor gather straight from ``graph.csr()`` arrays,
* fixed-capacity array heaps for the candidate queue and result pool,
* a generation-stamped visited array (allocated once per batch),
* inline Euclidean / SQ8 / PQ-ADC distance evaluation against the
  contiguous point / code arrays,
* ``allowed``-mask and ``budget`` semantics replicated operation for
  operation from the numpy engines.

Three backends share one kernel semantics (see
:mod:`repro.accel.kernels` for the pinned reference source):

``numba``
    The kernels compiled by :func:`numba.njit` with ``cache=True``
    (install via ``pip install repro-proximity-graphs[accel]``).
``cffi``
    The same kernels as C, compiled on demand with the system C
    compiler under strict IEEE semantics (``-ffp-contract=off``) and
    cached on disk.  Available wherever ``cffi`` and a C compiler are.
``python``
    The kernel source executed by the plain interpreter — slow, but
    exactly the arithmetic the compiled backends must reproduce; the
    equivalence suites pin compiled backends against it bit for bit.

Backend selection is runtime and graceful.  A backend only serves
searches after it has been **warmed** (compiled and self-checked) by
:func:`warm`; until then every search runs the pinned numpy engines, so
importing this package changes nothing.  ``SearchParams(backend=...)``
threads the choice through ``index.search()``, the sharded fan-out
(the resolved backend name travels in the pickled worker task and is
compiled once per worker process), and ``measure_queries``:

* ``"auto"`` (the default) — the best *warmed* compiled backend, else
  the numpy engines (see :func:`get_backend`);
* ``"numpy"`` — always the pinned engines;
* ``"numba"`` / ``"cffi"`` / ``"python"`` — that backend, warmed on
  demand; raises :class:`AccelUnavailableError` with a clear message
  when the backend cannot run here (e.g. numba not installed).

Reported distances are bit-identical to the numpy engines by
construction: kernels drive the traversal with their own deterministic
float64 arithmetic, and the dispatch layer re-evaluates every reported
candidate through the same per-batch distance view the numpy path
uses.

The *construction* inner loop is compiled the same way:
:func:`run_construction` runs a whole insertion wave's candidate
location (the ``construction_beam_batch`` semantics — multi-expansion
rounds over a bounded pool with a generation-stamped visited array)
and :func:`run_robust_prune` the RobustPrune neighbor selection, both
behind a ``backend=`` seam on ``graphs.engine`` / the insertion
builders / ``ProximityGraphIndex.build(...)`` /
``ShardedIndex.build(...)`` with the same auto/explicit fallback
semantics as search.  :func:`run_commit_wave` goes one step further
and commits an entire insertion wave — every RobustPrune, backlink,
and overflow re-prune, with candidate distances computed in-kernel —
in a single kernel call against a padded adjacency mirror
(``graphs.engine.CommitMirror``), which removes the per-commit
dispatch overhead that otherwise dominates a compiled build.
"""

from repro.accel.dispatch import (
    AccelError,
    AccelFallbackWarning,
    AccelUnavailableError,
    UnsupportedWorkloadError,
    available_backends,
    backend_status,
    construction_supported,
    get_backend,
    reset,
    resolve_backend,
    run_beam,
    run_commit_wave,
    run_construction,
    run_greedy,
    run_robust_prune,
    warm,
)

__all__ = [
    "AccelError",
    "AccelFallbackWarning",
    "AccelUnavailableError",
    "UnsupportedWorkloadError",
    "available_backends",
    "backend_status",
    "construction_supported",
    "get_backend",
    "reset",
    "resolve_backend",
    "run_beam",
    "run_commit_wave",
    "run_construction",
    "run_greedy",
    "run_robust_prune",
    "warm",
]
