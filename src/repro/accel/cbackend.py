"""The ``cffi`` backend: the traversal kernels as C, compiled on demand.

This backend exists so environments without numba (but with a C
toolchain) still get compiled traversal: the C below is a line-for-line
transcription of :mod:`repro.accel.kernels` — same heap comparators,
same slice-order iteration, same budget checkpoints, same sequential
float64 accumulation, and the same replica of numpy's pairwise
summation for PQ-ADC rows.

Floating-point contract: the shared object is built with
``-ffp-contract=off`` and without any fast-math flag, so the compiler
neither fuses multiply-adds nor reassociates reductions — the C
arithmetic is the IEEE-754 sequence the kernel source spells out,
matching the interpreted kernels (and numba's default strict mode)
bit for bit.  The warm-time self-check in
:mod:`repro.accel.dispatch` enforces this before the backend serves
any search.

Build artifacts are content-addressed (source hash + compiler) and
cached under ``$REPRO_ACCEL_CACHE`` (default: a per-user directory in
the system temp dir), so each environment compiles once — a few
hundred milliseconds — and every later process ``dlopen``\\ s the cached
shared object.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = [
    "beam_kernel",
    "construction_kernel",
    "greedy_kernel",
    "robust_prune_kernel",
    "commit_wave_kernel",
    "cache_dir",
    "ensure_compiled",
]

_CDEF = """
int64_t repro_beam(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t beam_width, int64_t k_fetch, int64_t budget,
    const uint8_t *allowed, int32_t has_allowed,
    int64_t *out_ids, double *out_dists, int64_t *out_evals,
    int32_t *visited, double *cand_d, int64_t *cand_v,
    double *pool_d, int64_t *pool_v, double *contrib);

int64_t repro_greedy(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t budget,
    const uint8_t *allowed, int32_t has_allowed,
    int64_t *out_p, double *out_d, int64_t *out_evals,
    int64_t *out_hops, int64_t *out_term,
    int64_t *out_best_p, double *out_best_d,
    int64_t *hops_buf, int64_t hops_cap, double *contrib);

int64_t repro_construction(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t beam_width, int64_t expand_per_round,
    int64_t *out_ids, double *out_dists, int64_t *out_sizes,
    int32_t *visited, uint8_t *pexp, int64_t *sel_buf, double *contrib);

int64_t repro_robust_prune(
    const double *points, int64_t ddim,
    int32_t kind, double factor, int64_t pid,
    const int64_t *v_in, const double *d_in, int64_t P,
    double alpha, int64_t max_degree,
    int64_t *vs, double *ds, uint8_t *alive, double *sq, int64_t *out);

int64_t repro_commit_wave(
    const double *points, int64_t ddim,
    int32_t kind, double factor,
    const int64_t *pids, int64_t w,
    const int64_t *pool_ids, const double *pool_d, const int64_t *pool_off,
    int32_t include_own, double alpha, int64_t max_degree,
    int64_t *adj, int64_t cap, int64_t *deg,
    int64_t *cand_v, double *cand_d,
    int64_t *vs, double *ds, uint8_t *alive, double *sq,
    int64_t *out, int64_t *out2);
"""

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* numpy's pairwise summation for a contiguous float64 run (n <= 128):
 * sequential below 8 elements, else an 8-accumulator unrolled pass
 * combined as ((r0+r1) + (r2+r3)) + ((r4+r5) + (r6+r7)). */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
    double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
    int64_t i = 8;
    for (; i + 8 <= n; i += 8) {
        r0 += a[i];
        r1 += a[i + 1];
        r2 += a[i + 2];
        r3 += a[i + 3];
        r4 += a[i + 4];
        r5 += a[i + 5];
        r6 += a[i + 6];
        r7 += a[i + 7];
    }
    double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
    for (; i < n; i++)
        res += a[i];
    return res;
}

#define KIND_FLAT_L2 0
#define KIND_FLAT_LINF 1
#define KIND_SQ8_L2 2
#define KIND_SQ8_LINF 3
#define KIND_PQ_SUM2 4
#define KIND_PQ_SUMP 5
#define KIND_PQ_MAX 6

static double dist_eval(
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim, int64_t qi,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    double *contrib, int64_t v)
{
    if (kind == KIND_FLAT_L2) {
        const double *q = Q + qi * qdim;
        const double *x = data + v * ddim;
        double acc = 0.0;
        for (int64_t j = 0; j < ddim; j++) {
            double t = q[j] - x[j];
            acc += t * t;
        }
        return factor * sqrt(acc);
    }
    if (kind == KIND_FLAT_LINF) {
        const double *q = Q + qi * qdim;
        const double *x = data + v * ddim;
        double acc = 0.0;
        for (int64_t j = 0; j < ddim; j++) {
            double t = fabs(q[j] - x[j]);
            if (t > acc)
                acc = t;
        }
        return factor * acc;
    }
    if (kind == KIND_SQ8_L2) {
        const double *q = Q + qi * qdim;
        const uint8_t *c = codes + v * cdim;
        double acc = 0.0;
        for (int64_t j = 0; j < cdim; j++) {
            double t = q[j] - ((double)c[j] * scale[j] + minv[j]);
            acc += t * t;
        }
        return factor * sqrt(acc);
    }
    if (kind == KIND_SQ8_LINF) {
        const double *q = Q + qi * qdim;
        const uint8_t *c = codes + v * cdim;
        double acc = 0.0;
        for (int64_t j = 0; j < cdim; j++) {
            double t = fabs(q[j] - ((double)c[j] * scale[j] + minv[j]));
            if (t > acc)
                acc = t;
        }
        return factor * acc;
    }
    /* PQ-ADC: per-subspace LUT gather, then numpy's own reduction. */
    {
        const uint8_t *c = codes + v * cdim;
        const double *lut = luts + qi * msub * ks;
        if (kind == KIND_PQ_MAX) {
            double acc = 0.0;
            for (int64_t j = 0; j < msub; j++) {
                double t = lut[j * ks + c[j]];
                if (j == 0 || t > acc)
                    acc = t;
            }
            return factor * acc;
        }
        for (int64_t j = 0; j < msub; j++)
            contrib[j] = lut[j * ks + c[j]];
        double acc = pairwise_sum(contrib, msub);
        if (kind == KIND_PQ_SUM2)
            return factor * sqrt(acc);
        return factor * pow(acc, 1.0 / power);
    }
}

/* Candidate min-heap on the key (d, v) and pool max-heap whose root is
 * the worst entry under the key (-d, v) — heapq's tuple orders in the
 * numpy engine's _BeamState, so pop/evict sequences match exactly. */

static int64_t cand_push(double *cd, int64_t *cv, int64_t size, double d, int64_t v)
{
    int64_t i = size;
    cd[i] = d;
    cv[i] = v;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (cd[i] < cd[p] || (cd[i] == cd[p] && cv[i] < cv[p])) {
            double td = cd[i]; cd[i] = cd[p]; cd[p] = td;
            int64_t tv = cv[i]; cv[i] = cv[p]; cv[p] = tv;
            i = p;
        } else
            break;
    }
    return size + 1;
}

static int64_t cand_pop(double *cd, int64_t *cv, int64_t size)
{
    size -= 1;
    cd[0] = cd[size];
    cv[0] = cv[size];
    int64_t i = 0;
    for (;;) {
        int64_t left = 2 * i + 1;
        if (left >= size)
            break;
        int64_t small = left;
        int64_t right = left + 1;
        if (right < size &&
            (cd[right] < cd[left] || (cd[right] == cd[left] && cv[right] < cv[left])))
            small = right;
        if (cd[small] < cd[i] || (cd[small] == cd[i] && cv[small] < cv[i])) {
            double td = cd[i]; cd[i] = cd[small]; cd[small] = td;
            int64_t tv = cv[i]; cv[i] = cv[small]; cv[small] = tv;
            i = small;
        } else
            break;
    }
    return size;
}

static int pool_worse(double d1, int64_t v1, double d2, int64_t v2)
{
    if (d1 > d2)
        return 1;
    if (d1 == d2 && v1 < v2)
        return 1;
    return 0;
}

static int64_t pool_push(double *pd, int64_t *pv, int64_t size, double d, int64_t v)
{
    int64_t i = size;
    pd[i] = d;
    pv[i] = v;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (pool_worse(pd[i], pv[i], pd[p], pv[p])) {
            double td = pd[i]; pd[i] = pd[p]; pd[p] = td;
            int64_t tv = pv[i]; pv[i] = pv[p]; pv[p] = tv;
            i = p;
        } else
            break;
    }
    return size + 1;
}

static int64_t pool_pop(double *pd, int64_t *pv, int64_t size)
{
    size -= 1;
    pd[0] = pd[size];
    pv[0] = pv[size];
    int64_t i = 0;
    for (;;) {
        int64_t left = 2 * i + 1;
        if (left >= size)
            break;
        int64_t worst = left;
        int64_t right = left + 1;
        if (right < size && pool_worse(pd[right], pv[right], pd[left], pv[left]))
            worst = right;
        if (pool_worse(pd[worst], pv[worst], pd[i], pv[i])) {
            double td = pd[i]; pd[i] = pd[worst]; pd[worst] = td;
            int64_t tv = pv[i]; pv[i] = pv[worst]; pv[worst] = tv;
            i = worst;
        } else
            break;
    }
    return size;
}

int64_t repro_beam(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t beam_width, int64_t k_fetch, int64_t budget,
    const uint8_t *allowed, int32_t has_allowed,
    int64_t *out_ids, double *out_dists, int64_t *out_evals,
    int32_t *visited, double *cand_d, int64_t *cand_v,
    double *pool_d, int64_t *pool_v, double *contrib)
{
    for (int64_t qi = 0; qi < nq; qi++) {
        int32_t gen = (int32_t)(qi + 1);
        int64_t s = starts[qi];
        int64_t csize = cand_push(cand_d, cand_v, 0, d0[qi], s);
        int64_t psize = 0;
        if (has_allowed == 0 || allowed[s] != 0)
            psize = pool_push(pool_d, pool_v, 0, d0[qi], s);
        visited[s] = gen;
        int64_t evals = 1;
        while (csize > 0) {
            double dcur = cand_d[0];
            int64_t u = cand_v[0];
            csize = cand_pop(cand_d, cand_v, csize);
            if (psize >= beam_width && dcur > pool_d[0])
                break;
            int64_t beg = offsets[u];
            int64_t end = offsets[u + 1];
            int64_t cnt = 0;
            for (int64_t ei = beg; ei < end; ei++) {
                if (visited[targets[ei]] != gen)
                    cnt++;
            }
            if (cnt == 0)
                continue;
            if (budget >= 0 && evals >= budget)
                break;
            int64_t take = cnt;
            if (budget >= 0 && evals + cnt > budget)
                take = budget - evals;
            int64_t processed = 0;
            for (int64_t ei = beg; ei < end; ei++) {
                if (processed >= take)
                    break;
                int64_t v = targets[ei];
                if (visited[v] == gen)
                    continue;
                processed++;
                visited[v] = gen;
                double dv = dist_eval(kind, factor, power, Q, qdim, qi,
                                      data, ddim, codes, cdim, minv, scale,
                                      luts, msub, ks, contrib, v);
                evals++;
                if (psize < beam_width || dv < pool_d[0]) {
                    csize = cand_push(cand_d, cand_v, csize, dv, v);
                    if (has_allowed == 0 || allowed[v] != 0) {
                        psize = pool_push(pool_d, pool_v, psize, dv, v);
                        if (psize > beam_width)
                            psize = pool_pop(pool_d, pool_v, psize);
                    }
                }
            }
        }
        /* Insertion-sort the pool ascending by (d, v) — the numpy
         * path's sorted((-d, v)) report order. */
        for (int64_t a = 1; a < psize; a++) {
            double dd = pool_d[a];
            int64_t vv = pool_v[a];
            int64_t b = a - 1;
            while (b >= 0 && (pool_d[b] > dd || (pool_d[b] == dd && pool_v[b] > vv))) {
                pool_d[b + 1] = pool_d[b];
                pool_v[b + 1] = pool_v[b];
                b--;
            }
            pool_d[b + 1] = dd;
            pool_v[b + 1] = vv;
        }
        int64_t n_out = psize < k_fetch ? psize : k_fetch;
        for (int64_t a = 0; a < n_out; a++) {
            out_ids[qi * k_fetch + a] = pool_v[a];
            out_dists[qi * k_fetch + a] = pool_d[a];
        }
        out_evals[qi] = evals;
    }
    return 0;
}

int64_t repro_greedy(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t budget,
    const uint8_t *allowed, int32_t has_allowed,
    int64_t *out_p, double *out_d, int64_t *out_evals,
    int64_t *out_hops, int64_t *out_term,
    int64_t *out_best_p, double *out_best_d,
    int64_t *hops_buf, int64_t hops_cap, double *contrib)
{
    int64_t maxnh = 0;
    for (int64_t qi = 0; qi < nq; qi++) {
        int64_t p = starts[qi];
        double dcur = d0[qi];
        int64_t evals = 1;
        int64_t nh = 1;
        if (hops_cap > 0)
            hops_buf[qi * hops_cap] = p;
        int64_t bp = -1;
        double bd = INFINITY;
        if (has_allowed != 0 && allowed[p] != 0) {
            bp = p;
            bd = dcur;
        }
        int64_t term = 0;
        for (;;) {
            if (budget >= 0 && evals >= budget) {
                term = 0;
                break;
            }
            int64_t beg = offsets[p];
            int64_t end = offsets[p + 1];
            int64_t deg = end - beg;
            if (deg == 0) {
                term = 1;
                break;
            }
            int64_t take = deg;
            int64_t truncated = 0;
            if (budget >= 0 && evals + deg > budget) {
                take = budget - evals;
                truncated = 1;
            }
            double bestd = INFINITY;
            int64_t bestv = -1;
            double hop_ad = INFINITY;
            int64_t hop_av = -1;
            for (int64_t i = 0; i < take; i++) {
                int64_t v = targets[beg + i];
                double dv = dist_eval(kind, factor, power, Q, qdim, qi,
                                      data, ddim, codes, cdim, minv, scale,
                                      luts, msub, ks, contrib, v);
                if (has_allowed != 0 && allowed[v] != 0 && dv < hop_ad) {
                    hop_ad = dv;
                    hop_av = v;
                }
                if (dv < bestd) {
                    bestd = dv;
                    bestv = v;
                }
            }
            evals += take;
            if (hop_av >= 0 && hop_ad < bd) {
                bd = hop_ad;
                bp = hop_av;
            }
            if (bestd < dcur) {
                p = bestv;
                dcur = bestd;
                if (nh < hops_cap)
                    hops_buf[qi * hops_cap + nh] = p;
                nh++;
            } else {
                term = truncated == 1 ? 0 : 1;
                break;
            }
        }
        out_p[qi] = p;
        out_d[qi] = dcur;
        out_evals[qi] = evals;
        out_hops[qi] = nh;
        out_term[qi] = term;
        out_best_p[qi] = bp;
        out_best_d[qi] = bd;
        if (nh > maxnh)
            maxnh = nh;
    }
    return maxnh;
}

/* Construction-wave beam location: per-query sequential replica of the
 * numpy engine's lockstep multi-expansion rounds — selection frozen in
 * sel_buf before insertions shift slot positions, generation-stamped
 * visited dedup, bounded sorted insertion into the out_ids/out_dists
 * pool rows. */
int64_t repro_construction(
    const int64_t *offsets, const int64_t *targets,
    int32_t kind, double factor, double power,
    const double *Q, int64_t qdim,
    const double *data, int64_t ddim,
    const uint8_t *codes, int64_t cdim,
    const double *minv, const double *scale,
    const double *luts, int64_t msub, int64_t ks,
    const int64_t *starts, const double *d0, int64_t nq,
    int64_t beam_width, int64_t expand_per_round,
    int64_t *out_ids, double *out_dists, int64_t *out_sizes,
    int32_t *visited, uint8_t *pexp, int64_t *sel_buf, double *contrib)
{
    int64_t ef = beam_width;
    for (int64_t qi = 0; qi < nq; qi++) {
        int32_t gen = (int32_t)(qi + 1);
        int64_t *ids = out_ids + qi * ef;
        double *dists = out_dists + qi * ef;
        for (int64_t a = 0; a < ef; a++)
            pexp[a] = 0;
        ids[0] = starts[qi];
        dists[0] = d0[qi];
        int64_t psize = 1;
        visited[starts[qi]] = gen;
        for (;;) {
            int64_t nsel = 0;
            for (int64_t slot = 0; slot < psize; slot++) {
                if (pexp[slot] == 0) {
                    sel_buf[nsel] = ids[slot];
                    pexp[slot] = 1;
                    nsel++;
                    if (nsel >= expand_per_round)
                        break;
                }
            }
            if (nsel == 0)
                break;
            for (int64_t si = 0; si < nsel; si++) {
                int64_t u = sel_buf[si];
                for (int64_t ei = offsets[u]; ei < offsets[u + 1]; ei++) {
                    int64_t v = targets[ei];
                    if (visited[v] == gen)
                        continue;
                    visited[v] = gen;
                    double dv = dist_eval(kind, factor, power, Q, qdim, qi,
                                          data, ddim, codes, cdim, minv, scale,
                                          luts, msub, ks, contrib, v);
                    int64_t pos;
                    if (psize < ef) {
                        pos = psize;
                        psize++;
                    } else if (dv < dists[ef - 1]) {
                        pos = ef - 1;
                    } else {
                        continue;
                    }
                    int64_t j = pos;
                    while (j > 0 && dists[j - 1] > dv) {
                        dists[j] = dists[j - 1];
                        ids[j] = ids[j - 1];
                        pexp[j] = pexp[j - 1];
                        j--;
                    }
                    dists[j] = dv;
                    ids[j] = v;
                    pexp[j] = 0;
                }
            }
        }
        out_sizes[qi] = psize;
    }
    return 0;
}

/* RobustPrune over raw float64 coordinates: (d, v)-ascending sort,
 * pid drop + first-occurrence dedup, then the greedy alpha scan with
 * lazily computed kept-to-candidate rows (sequential gram identity
 * for L2, exact max-abs-diff for Linf).  Shared by the per-call entry
 * and the wave commit below. */
static int64_t prune_core(
    const double *points, int64_t ddim,
    int32_t kind, double factor, int64_t pid,
    const int64_t *v_in, const double *d_in, int64_t P,
    double alpha, int64_t max_degree,
    int64_t *vs, double *ds, uint8_t *alive, double *sq, int64_t *out)
{
    for (int64_t i = 0; i < P; i++) {
        double d = d_in[i];
        int64_t v = v_in[i];
        int64_t j = i;
        while (j > 0 && (ds[j - 1] > d || (ds[j - 1] == d && vs[j - 1] > v))) {
            ds[j] = ds[j - 1];
            vs[j] = vs[j - 1];
            j--;
        }
        ds[j] = d;
        vs[j] = v;
    }
    int64_t k = 0;
    for (int64_t i = 0; i < P; i++) {
        int64_t v = vs[i];
        if (v == pid)
            continue;
        int dup = 0;
        for (int64_t j = 0; j < k; j++) {
            if (vs[j] == v) {
                dup = 1;
                break;
            }
        }
        if (dup)
            continue;
        vs[k] = v;
        ds[k] = ds[i];
        k++;
    }
    if (k == 0)
        return 0;
    if (kind == KIND_FLAT_L2) {
        for (int64_t i = 0; i < k; i++) {
            double acc = 0.0;
            const double *x = points + vs[i] * ddim;
            for (int64_t c = 0; c < ddim; c++)
                acc += x[c] * x[c];
            sq[i] = acc;
        }
    }
    for (int64_t i = 0; i < k; i++)
        alive[i] = 1;
    int64_t kept = 0;
    int64_t pos = 0;
    while (kept < max_degree) {
        while (pos < k && alive[pos] == 0)
            pos++;
        if (pos >= k)
            break;
        out[kept] = vs[pos];
        kept++;
        if (kept >= max_degree)
            break;
        const double *xp = points + vs[pos] * ddim;
        for (int64_t j = 0; j < k; j++) {
            if (alive[j] == 0)
                continue;
            double d;
            if (j == pos) {
                d = 0.0;
            } else if (kind == KIND_FLAT_L2) {
                const double *xj = points + vs[j] * ddim;
                double dot = 0.0;
                for (int64_t c = 0; c < ddim; c++)
                    dot += xp[c] * xj[c];
                double d2 = sq[pos] + sq[j] - 2.0 * dot;
                if (d2 < 0.0)
                    d2 = 0.0;
                d = factor * sqrt(d2);
            } else {
                const double *xj = points + vs[j] * ddim;
                double acc = 0.0;
                for (int64_t c = 0; c < ddim; c++) {
                    double t = xp[c] - xj[c];
                    if (t < 0.0)
                        t = -t;
                    if (t > acc)
                        acc = t;
                }
                d = factor * acc;
            }
            if (!(alpha * d > ds[j]))
                alive[j] = 0;
        }
        pos++;
    }
    return kept;
}

int64_t repro_robust_prune(
    const double *points, int64_t ddim,
    int32_t kind, double factor, int64_t pid,
    const int64_t *v_in, const double *d_in, int64_t P,
    double alpha, int64_t max_degree,
    int64_t *vs, double *ds, uint8_t *alive, double *sq, int64_t *out)
{
    return prune_core(points, ddim, kind, factor, pid, v_in, d_in, P,
                      alpha, max_degree, vs, ds, alive, sq, out);
}

/* Distance between two stored points — the coordinate metrics'
 * `distances` rows with sequential float64 accumulation. */
static double point_dist(
    const double *points, int64_t ddim, int32_t kind, double factor,
    int64_t a, int64_t b)
{
    const double *xa = points + a * ddim;
    const double *xb = points + b * ddim;
    double acc = 0.0;
    if (kind == KIND_FLAT_L2) {
        for (int64_t c = 0; c < ddim; c++) {
            double t = xa[c] - xb[c];
            acc += t * t;
        }
        return factor * sqrt(acc);
    }
    for (int64_t c = 0; c < ddim; c++) {
        double t = xa[c] - xb[c];
        if (t < 0.0)
            t = -t;
        if (t > acc)
            acc = t;
    }
    return factor * acc;
}

/* Commit a whole construction wave against a padded adjacency: per
 * member, RobustPrune its pool (plus, with include_own, its current
 * out-neighbors at in-kernel distances) into row pids[i], then add
 * backlinks with overflow re-pruning — engine.prune_and_link commit
 * by commit, in wave order. */
int64_t repro_commit_wave(
    const double *points, int64_t ddim,
    int32_t kind, double factor,
    const int64_t *pids, int64_t w,
    const int64_t *pool_ids, const double *pool_d, const int64_t *pool_off,
    int32_t include_own, double alpha, int64_t max_degree,
    int64_t *adj, int64_t cap, int64_t *deg,
    int64_t *cand_v, double *cand_d,
    int64_t *vs, double *ds, uint8_t *alive, double *sq,
    int64_t *out, int64_t *out2)
{
    for (int64_t i = 0; i < w; i++) {
        int64_t pid = pids[i];
        int64_t *row = adj + pid * cap;
        int64_t P = 0;
        for (int64_t j = pool_off[i]; j < pool_off[i + 1]; j++) {
            cand_v[P] = pool_ids[j];
            cand_d[P] = pool_d[j];
            P++;
        }
        if (include_own) {
            for (int64_t j = 0; j < deg[pid]; j++) {
                int64_t v = row[j];
                cand_v[P] = v;
                cand_d[P] = point_dist(points, ddim, kind, factor, pid, v);
                P++;
            }
        }
        int64_t kept = prune_core(points, ddim, kind, factor, pid,
                                  cand_v, cand_d, P, alpha, max_degree,
                                  vs, ds, alive, sq, out);
        for (int64_t j = 0; j < kept; j++)
            row[j] = out[j];
        deg[pid] = kept;
        for (int64_t j = 0; j < kept; j++) {
            int64_t v = out[j];
            int64_t *vrow = adj + v * cap;
            int64_t dv = deg[v];
            int present = 0;
            for (int64_t t = 0; t < dv; t++) {
                if (vrow[t] == pid) {
                    present = 1;
                    break;
                }
            }
            if (present)
                continue;
            vrow[dv] = pid;
            deg[v] = dv + 1;
            if (deg[v] > max_degree) {
                int64_t P2 = deg[v];
                for (int64_t t = 0; t < P2; t++) {
                    cand_v[t] = vrow[t];
                    cand_d[t] = point_dist(points, ddim, kind, factor,
                                           v, vrow[t]);
                }
                int64_t k2 = prune_core(points, ddim, kind, factor, v,
                                        cand_v, cand_d, P2, alpha,
                                        max_degree, vs, ds, alive, sq, out2);
                for (int64_t t = 0; t < k2; t++)
                    vrow[t] = out2[t];
                deg[v] = k2;
            }
        }
    }
    return 0;
}
"""

# Strict IEEE: no fused multiply-add contraction, no reassociation.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-unsafe-math-optimizations"]

_lock = threading.Lock()
_lib = None
_ffi = None


def cache_dir() -> Path:
    """Where compiled shared objects live (``$REPRO_ACCEL_CACHE``
    overrides; default is a per-user directory under the temp dir)."""
    env = os.environ.get("REPRO_ACCEL_CACHE")
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-accel-cache-{uid}"


def _find_compiler() -> str | None:
    import shutil

    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def ensure_compiled() -> Path:
    """Compile (or reuse) the shared object; returns its path."""
    from repro.accel.dispatch import AccelUnavailableError

    cc = _find_compiler()
    if cc is None:
        raise AccelUnavailableError(
            "no C compiler (cc/gcc/clang) found for the cffi accel backend"
        )
    key = hashlib.sha256(
        (_SOURCE + "\0" + " ".join(_CFLAGS) + "\0" + cc).encode()
    ).hexdigest()[:16]
    cdir = cache_dir()
    cdir.mkdir(parents=True, exist_ok=True)
    so_path = cdir / f"repro_accel_{key}.so"
    if so_path.exists():
        return so_path
    c_path = cdir / f"repro_accel_{key}.c"
    c_path.write_text(_SOURCE)
    tmp_so = cdir / f".repro_accel_{key}.{os.getpid()}.so"
    proc = subprocess.run(
        [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path), "-lm"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        raise AccelUnavailableError(
            f"C compilation of the cffi accel backend failed:\n{proc.stderr}"
        )
    os.replace(tmp_so, so_path)  # atomic under concurrent builders
    return so_path


def _load():
    global _lib, _ffi
    if _lib is not None:
        return _lib, _ffi
    with _lock:
        if _lib is not None:
            return _lib, _ffi
        from cffi import FFI

        ffi = FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(ensure_compiled()))
        _ffi, _lib = ffi, lib
    return _lib, _ffi


def _f64(ffi, arr: np.ndarray):
    return ffi.cast("const double *", arr.ctypes.data)


def _i64(ffi, arr: np.ndarray):
    return ffi.cast("const int64_t *", arr.ctypes.data)


def _u8(ffi, arr: np.ndarray):
    return ffi.cast("const uint8_t *", arr.ctypes.data)


def beam_kernel(
    offsets, targets, kind, factor, power, Q, data, codes, minv, scale, luts,
    starts, d0, beam_width, k_fetch, budget, allowed, has_allowed,
    out_ids, out_dists, out_evals, visited, cand_d, cand_v, pool_d, pool_v, contrib,
):
    """Same signature/semantics as :func:`repro.accel.kernels.beam_kernel`."""
    lib, ffi = _load()
    return lib.repro_beam(
        _i64(ffi, offsets), _i64(ffi, targets),
        int(kind), float(factor), float(power),
        _f64(ffi, Q), Q.shape[1] if Q.ndim == 2 else 0,
        _f64(ffi, data), data.shape[1],
        _u8(ffi, codes), codes.shape[1],
        _f64(ffi, minv), _f64(ffi, scale),
        _f64(ffi, luts), luts.shape[1], luts.shape[2],
        _i64(ffi, starts), _f64(ffi, d0), starts.shape[0],
        int(beam_width), int(k_fetch), int(budget),
        _u8(ffi, allowed), int(has_allowed),
        ffi.cast("int64_t *", out_ids.ctypes.data),
        ffi.cast("double *", out_dists.ctypes.data),
        ffi.cast("int64_t *", out_evals.ctypes.data),
        ffi.cast("int32_t *", visited.ctypes.data),
        ffi.cast("double *", cand_d.ctypes.data),
        ffi.cast("int64_t *", cand_v.ctypes.data),
        ffi.cast("double *", pool_d.ctypes.data),
        ffi.cast("int64_t *", pool_v.ctypes.data),
        ffi.cast("double *", contrib.ctypes.data),
    )


def greedy_kernel(
    offsets, targets, kind, factor, power, Q, data, codes, minv, scale, luts,
    starts, d0, budget, allowed, has_allowed,
    out_p, out_d, out_evals, out_hops, out_term, out_best_p, out_best_d,
    hops_buf, hops_cap, contrib,
):
    """Same signature/semantics as :func:`repro.accel.kernels.greedy_kernel`."""
    lib, ffi = _load()
    return lib.repro_greedy(
        _i64(ffi, offsets), _i64(ffi, targets),
        int(kind), float(factor), float(power),
        _f64(ffi, Q), Q.shape[1] if Q.ndim == 2 else 0,
        _f64(ffi, data), data.shape[1],
        _u8(ffi, codes), codes.shape[1],
        _f64(ffi, minv), _f64(ffi, scale),
        _f64(ffi, luts), luts.shape[1], luts.shape[2],
        _i64(ffi, starts), _f64(ffi, d0), starts.shape[0],
        int(budget),
        _u8(ffi, allowed), int(has_allowed),
        ffi.cast("int64_t *", out_p.ctypes.data),
        ffi.cast("double *", out_d.ctypes.data),
        ffi.cast("int64_t *", out_evals.ctypes.data),
        ffi.cast("int64_t *", out_hops.ctypes.data),
        ffi.cast("int64_t *", out_term.ctypes.data),
        ffi.cast("int64_t *", out_best_p.ctypes.data),
        ffi.cast("double *", out_best_d.ctypes.data),
        ffi.cast("int64_t *", hops_buf.ctypes.data),
        int(hops_cap),
        ffi.cast("double *", contrib.ctypes.data),
    )


def construction_kernel(
    offsets, targets, kind, factor, power, Q, data, codes, minv, scale, luts,
    starts, d0, beam_width, expand_per_round,
    out_ids, out_dists, out_sizes, visited, pexp, sel_buf, contrib,
):
    """Same signature/semantics as :func:`repro.accel.kernels.construction_kernel`."""
    lib, ffi = _load()
    return lib.repro_construction(
        _i64(ffi, offsets), _i64(ffi, targets),
        int(kind), float(factor), float(power),
        _f64(ffi, Q), Q.shape[1] if Q.ndim == 2 else 0,
        _f64(ffi, data), data.shape[1],
        _u8(ffi, codes), codes.shape[1],
        _f64(ffi, minv), _f64(ffi, scale),
        _f64(ffi, luts), luts.shape[1], luts.shape[2],
        _i64(ffi, starts), _f64(ffi, d0), starts.shape[0],
        int(beam_width), int(expand_per_round),
        ffi.cast("int64_t *", out_ids.ctypes.data),
        ffi.cast("double *", out_dists.ctypes.data),
        ffi.cast("int64_t *", out_sizes.ctypes.data),
        ffi.cast("int32_t *", visited.ctypes.data),
        ffi.cast("uint8_t *", pexp.ctypes.data),
        ffi.cast("int64_t *", sel_buf.ctypes.data),
        ffi.cast("double *", contrib.ctypes.data),
    )


def robust_prune_kernel(
    points, kind, factor, pid, v_in, d_in, alpha, max_degree,
    vs, ds, alive, sq, out,
):
    """Same signature/semantics as :func:`repro.accel.kernels.robust_prune_kernel`."""
    lib, ffi = _load()
    return lib.repro_robust_prune(
        _f64(ffi, points), points.shape[1],
        int(kind), float(factor), int(pid),
        _i64(ffi, v_in), _f64(ffi, d_in), v_in.shape[0],
        float(alpha), int(max_degree),
        ffi.cast("int64_t *", vs.ctypes.data),
        ffi.cast("double *", ds.ctypes.data),
        ffi.cast("uint8_t *", alive.ctypes.data),
        ffi.cast("double *", sq.ctypes.data),
        ffi.cast("int64_t *", out.ctypes.data),
    )


def commit_wave_kernel(
    points, kind, factor, pids, pool_ids, pool_d, pool_off,
    include_own, alpha, max_degree, adj, deg,
    cand_v, cand_d, vs, ds, alive, sq, out, out2,
):
    """Same signature/semantics as :func:`repro.accel.kernels.commit_wave_kernel`."""
    lib, ffi = _load()
    return lib.repro_commit_wave(
        _f64(ffi, points), points.shape[1],
        int(kind), float(factor),
        _i64(ffi, pids), pids.shape[0],
        _i64(ffi, pool_ids), _f64(ffi, pool_d), _i64(ffi, pool_off),
        int(include_own), float(alpha), int(max_degree),
        ffi.cast("int64_t *", adj.ctypes.data), adj.shape[1],
        ffi.cast("int64_t *", deg.ctypes.data),
        ffi.cast("int64_t *", cand_v.ctypes.data),
        ffi.cast("double *", cand_d.ctypes.data),
        ffi.cast("int64_t *", vs.ctypes.data),
        ffi.cast("double *", ds.ctypes.data),
        ffi.cast("uint8_t *", alive.ctypes.data),
        ffi.cast("double *", sq.ctypes.data),
        ffi.cast("int64_t *", out.ctypes.data),
        ffi.cast("int64_t *", out2.ctypes.data),
    )
