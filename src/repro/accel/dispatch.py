"""Backend registry, workload planning, and result assembly.

This module owns the three runtime questions the accel layer answers:

1. **Which backends can run here?**  ``"numba"`` when the kernels in
   :mod:`repro.accel.kernels` self-compiled at import, ``"cffi"`` when
   the :mod:`cffi` package and a system C compiler are present,
   ``"python"`` (the interpreted kernel source, the bit-exact reference)
   whenever numba is absent.  ``available_backends()`` reports them.

2. **Which backend serves a search?**  A backend must be *warmed*
   (compiled and self-checked against the numpy engines, via
   :func:`warm`) before :func:`get_backend` will return it — so nothing
   changes behavior until a caller opts in.  :func:`resolve_backend`
   maps a ``SearchParams.backend`` request to a concrete name:
   ``"auto"`` → the warmed best (else ``"numpy"``, never an error), an
   explicit name → warm-on-demand or :class:`AccelUnavailableError`.

3. **Can this workload run compiled?**  :func:`_plan` classifies the
   (dataset, store, queries) combination into a kernel distance mode —
   flat/SQ8 Euclidean and Chebyshev, PQ-ADC sum/power/max — and raises
   :class:`UnsupportedWorkloadError` for everything else (object points,
   explicit distance matrices, Minkowski over raw coordinates, ...),
   which ``backend="auto"`` treats as a silent numpy fallback.

:func:`run_beam` / :func:`run_greedy` then execute a whole batch in one
kernel call and assemble results in the engines' exact output shapes.
Reported distances are **re-evaluated through the same numpy distance
view** the engines use (``FlatQueryView`` / SQ8 / PQ-ADC ``segmented``),
so a compiled search returns bit-identical floats whenever it makes the
same routing decisions — and the kernels replicate the engines' decision
arithmetic (see :mod:`repro.accel.kernels`).
"""

from __future__ import annotations

import importlib.util
import shutil
import time
import warnings
from typing import Any

import numpy as np

from repro.accel import kernels as _K
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric
from repro.storage.base import FlatQueryView, decompose_metric

__all__ = [
    "AccelError",
    "AccelUnavailableError",
    "UnsupportedWorkloadError",
    "AccelFallbackWarning",
    "COMPILED_PRIORITY",
    "available_backends",
    "backend_status",
    "get_backend",
    "resolve_backend",
    "warm",
    "reset",
    "run_beam",
    "run_greedy",
    "run_construction",
    "run_robust_prune",
    "construction_supported",
]


class AccelError(RuntimeError):
    """Base class of accel-layer errors."""


class AccelUnavailableError(AccelError):
    """An explicitly requested backend cannot run in this environment."""


class UnsupportedWorkloadError(AccelError):
    """The workload (metric / point layout / store) has no compiled
    kernel; ``backend="auto"`` falls back to numpy, explicit backends
    surface this error."""


class AccelFallbackWarning(UserWarning):
    """Emitted once per process when acceleration was requested but no
    compiled backend is available, and the numpy engines serve instead."""


#: Preference order of compiled backends for ``"auto"`` / ``warm()``.
#: The interpreted ``"python"`` backend is never auto-selected — it is
#: slower than the numpy engines and exists as the bit-exact reference.
COMPILED_PRIORITY = ("numba", "cffi")

BACKEND_CHOICES = ("auto", "numpy", "numba", "cffi", "python")

# name -> {"compile_seconds": float}; a backend listed here has been
# compiled and has passed its self-check this process.
_WARM: dict[str, dict[str, Any]] = {}
_WARNED_NO_COMPILED = False


def _numba_available() -> bool:
    return bool(_K.NUMBA_COMPILED)


def _cffi_available() -> bool:
    if importlib.util.find_spec("cffi") is None:
        return False
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def available_backends() -> list[str]:
    """Compiled/reference backends that *can* run here (warm or not)."""
    out = []
    if _numba_available():
        out.append("numba")
    if _cffi_available():
        out.append("cffi")
    if not _numba_available():
        out.append("python")
    return out


def get_backend() -> str:
    """The backend that serves ``backend="auto"`` searches right now:
    the highest-priority *warmed* compiled backend, else ``"numpy"``.

    Never warms, warns, or raises — before any :func:`warm` call this
    is always ``"numpy"``, which is what keeps the accel layer inert
    until a caller opts in.
    """
    for name in COMPILED_PRIORITY:
        if name in _WARM:
            return name
    if "python" in _WARM:
        return "python"
    return "numpy"


def backend_status() -> dict[str, Any]:
    """JSON-safe status for ``index.stats()`` / ``repro index info``."""
    available = available_backends()
    backends: dict[str, Any] = {
        "numpy": {"available": True, "warm": True, "compile_seconds": 0.0}
    }
    for name in ("numba", "cffi", "python"):
        rec = _WARM.get(name)
        backends[name] = {
            "available": name in available,
            "warm": rec is not None,
            "compile_seconds": None if rec is None else rec["compile_seconds"],
        }
    return {"active": get_backend(), "backends": backends}


def reset() -> None:
    """Forget warm state and the fallback-warning latch (test isolation)."""
    global _WARNED_NO_COMPILED
    _WARM.clear()
    _WARNED_NO_COMPILED = False


def warm(backend: str | None = None) -> dict[str, Any]:
    """Compile and self-check a backend; returns its warm record.

    ``backend=None`` (or ``"auto"``) picks the best available compiled
    backend; when none is available it emits one
    :class:`AccelFallbackWarning` per process and records ``"numpy"`` —
    callers keep working on the pinned engines.  An explicit name warms
    that backend or raises :class:`AccelUnavailableError`.

    Warming compiles both kernels (numba's lazy JIT fires here, under
    ``cache=True`` so later processes reuse the on-disk cache; the cffi
    backend compiles-or-dlopens its cached shared object) and runs a
    small beam + greedy + construction + prune workload against the
    numpy engines, refusing to
    install a backend that does not reproduce them exactly.  The
    elapsed time is recorded as ``compile_seconds`` — the benches report
    it separately so QPS numbers are not polluted by first-call JIT.
    """
    global _WARNED_NO_COMPILED
    if backend is None or backend == "auto":
        for name in COMPILED_PRIORITY:
            if name in available_backends():
                backend = name
                break
        else:
            if not _WARNED_NO_COMPILED:
                warnings.warn(
                    "no compiled accel backend is available (numba is not "
                    "installed and no C compiler/cffi was found); searches "
                    "continue on the pinned numpy engines. Install the "
                    "'accel' extra (pip install repro-proximity-graphs"
                    "[accel]) for compiled kernels.",
                    AccelFallbackWarning,
                    stacklevel=2,
                )
                _WARNED_NO_COMPILED = True
            return {"backend": "numpy", "compile_seconds": 0.0}
    if backend == "numpy":
        return {"backend": "numpy", "compile_seconds": 0.0}
    if backend in _WARM:
        return dict(_WARM[backend], backend=backend)
    if backend not in available_backends():
        raise AccelUnavailableError(_unavailable_message(backend))
    t0 = time.perf_counter()
    _kernel_fns(backend)  # compile / load
    _self_check(backend)
    seconds = time.perf_counter() - t0
    _WARM[backend] = {"compile_seconds": seconds}
    return {"backend": backend, "compile_seconds": seconds}


def _unavailable_message(backend: str) -> str:
    if backend == "numba":
        return (
            "backend='numba' was requested but numba is not importable in "
            "this environment. Install it with the 'accel' extra "
            "(pip install repro-proximity-graphs[accel]) or use "
            "backend='auto' to fall back gracefully."
        )
    if backend == "cffi":
        return (
            "backend='cffi' was requested but cffi and/or a system C "
            "compiler (cc/gcc/clang) is not available. Use backend='auto' "
            "to fall back gracefully."
        )
    if backend == "python":
        return (
            "backend='python' (the interpreted reference kernels) is only "
            "selectable when numba is absent; with numba installed the "
            "same source is compiled — use backend='numba'."
        )
    raise ValueError(
        f"unknown accel backend {backend!r}; choose from {BACKEND_CHOICES}"
    )


def resolve_backend(requested: str | None) -> str:
    """Map a ``SearchParams.backend`` request to a concrete engine name.

    ``None``/``"numpy"`` → ``"numpy"``; ``"auto"`` → :func:`get_backend`
    (warmed best, else numpy — never warms implicitly, never raises);
    an explicit backend name → that backend, warmed on demand, raising
    :class:`AccelUnavailableError` when it cannot run here.
    """
    if requested is None or requested == "numpy":
        return "numpy"
    if requested == "auto":
        return get_backend()
    if requested not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown accel backend {requested!r}; choose from {BACKEND_CHOICES}"
        )
    warm(requested)
    return requested


def _kernel_fns(backend: str):
    """``(beam_fn, greedy_fn, construction_fn, prune_fn, commit_fn)``
    for a backend, loading/compiling it."""
    if backend in ("numba", "python"):
        # One source: kernels.py self-compiled under numba when
        # importable, interpreted otherwise.
        return (
            _K.beam_kernel,
            _K.greedy_kernel,
            _K.construction_kernel,
            _K.robust_prune_kernel,
            _K.commit_wave_kernel,
        )
    if backend == "cffi":
        from repro.accel import cbackend

        return (
            cbackend.beam_kernel,
            cbackend.greedy_kernel,
            cbackend.construction_kernel,
            cbackend.robust_prune_kernel,
            cbackend.commit_wave_kernel,
        )
    raise AccelUnavailableError(_unavailable_message(backend))


# ---------------------------------------------------------------------------
# workload planning


class _Plan:
    """Kernel-consumable layout of one (dataset, store, Q) workload."""

    __slots__ = (
        "kind", "factor", "power", "Q", "data", "codes",
        "minv", "scale", "luts", "msub", "view",
    )


_EMPTY_F2 = np.empty((0, 0), dtype=np.float64)
_EMPTY_U2 = np.empty((0, 0), dtype=np.uint8)
_EMPTY_F1 = np.empty(0, dtype=np.float64)
_EMPTY_F3 = np.empty((0, 0, 0), dtype=np.float64)


def _coord_kind(metric: Any, l2_kind: int, linf_kind: int) -> tuple[int, float]:
    inner, factor = decompose_metric(metric)
    if isinstance(inner, EuclideanMetric):
        return l2_kind, factor
    if isinstance(inner, ChebyshevMetric):
        return linf_kind, factor
    raise UnsupportedWorkloadError(
        f"no compiled kernel for metric {type(inner).__name__} over raw "
        "coordinates (Euclidean and Chebyshev are supported); use "
        "backend='numpy'"
    )


def _coords_f64(arr: Any, who: str) -> np.ndarray:
    a = np.asarray(arr)
    if a.dtype != np.float64 or a.ndim != 2:
        raise UnsupportedWorkloadError(
            f"compiled kernels need (n, d) float64 {who}, got dtype "
            f"{a.dtype} with shape {getattr(a, 'shape', '?')}; use "
            "backend='numpy'"
        )
    return np.ascontiguousarray(a)


def _plan(dataset: Any, store: Any, Q: Any) -> _Plan:
    """Classify the workload and export kernel-ready arrays.

    The distance *view* (the numpy oracle) is built exactly as the
    engines build it — it seeds start distances and re-evaluates every
    reported candidate, which is what makes results bit-identical.

    Memmap-backed arrays (a v5 disk-tier index's codes, points, and CSR
    mappings) pass through without copying: every export below goes via
    ``np.ascontiguousarray`` with the array's native dtype, which on an
    already C-contiguous mapping returns a zero-copy ndarray view — the
    kernels then read straight from the page cache, and the hot tier's
    lazy-attach property survives compiled traversal (pinned by
    ``tests/test_persistence_disk.py``).  A ``DiskTierStore`` is
    invisible here: it delegates ``kind``/``codes``/``params``/
    ``metric``/``bind`` to its inner store.
    """
    plan = _Plan()
    plan.data = _EMPTY_F2
    plan.codes = _EMPTY_U2
    plan.minv = _EMPTY_F1
    plan.scale = _EMPTY_F1
    plan.luts = _EMPTY_F3
    plan.power = 2.0
    plan.msub = 0

    kind = getattr(store, "kind", "flat") if store is not None else "flat"
    if kind == "flat":
        view = (
            FlatQueryView(dataset.metric, dataset.points, Q)
            if store is None
            else store.bind(Q)
        )
        plan.view = view
        plan.Q = _coords_f64(Q, "queries")
        plan.data = _coords_f64(view.points, "points")
        plan.kind, plan.factor = _coord_kind(
            view.metric, _K.KIND_FLAT_L2, _K.KIND_FLAT_LINF
        )
        if plan.Q.shape[1] != plan.data.shape[1]:
            raise UnsupportedWorkloadError(
                f"query dimension {plan.Q.shape[1]} does not match point "
                f"dimension {plan.data.shape[1]}"
            )
    elif kind == "sq8":
        view = store.bind(Q)
        plan.view = view
        plan.Q = _coords_f64(view.Q, "queries")  # the view's float64 cast
        plan.kind, plan.factor = _coord_kind(
            store.metric, _K.KIND_SQ8_L2, _K.KIND_SQ8_LINF
        )
        plan.codes = np.ascontiguousarray(store.codes)
        plan.minv = np.ascontiguousarray(store.params.minv, dtype=np.float64)
        plan.scale = np.ascontiguousarray(store.params.scale, dtype=np.float64)
        if plan.Q.shape[1] != plan.codes.shape[1]:
            raise UnsupportedWorkloadError(
                f"query dimension {plan.Q.shape[1]} does not match sq8 code "
                f"dimension {plan.codes.shape[1]}"
            )
    elif kind == "pq":
        view = store.bind(Q)  # validates dims, pays the ADC LUTs once
        plan.view = view
        plan.Q = _EMPTY_F2  # PQ traversal reads only LUTs + codes
        plan.codes = np.ascontiguousarray(store.codes)
        plan.msub = int(plan.codes.shape[1])
        if plan.msub > 128:
            raise UnsupportedWorkloadError(
                f"pq store has {plan.msub} subspaces; compiled ADC kernels "
                "replicate numpy's pairwise summation only up to 128 — use "
                "backend='numpy'"
            )
        plan.luts = np.ascontiguousarray(view.luts)
        plan.factor = float(view.factor)
        if view.combine == "max":
            plan.kind = _K.KIND_PQ_MAX
        elif view.power == 2.0:
            plan.kind = _K.KIND_PQ_SUM2
        else:
            plan.kind = _K.KIND_PQ_SUMP
            plan.power = float(view.power)
    else:
        raise UnsupportedWorkloadError(
            f"no compiled kernel for store kind {kind!r}; use backend='numpy'"
        )
    return plan


# ---------------------------------------------------------------------------
# batch execution + result assembly


def _query_array(queries: Any) -> np.ndarray:
    arr = queries if isinstance(queries, np.ndarray) else np.asarray(queries)
    if arr.dtype == object:
        raise UnsupportedWorkloadError(
            "compiled kernels need a rectangular numeric query array; use "
            "backend='numpy'"
        )
    return arr


def _start_distances(view: Any, starts: np.ndarray) -> np.ndarray:
    return np.array(
        [view.scalar(i, int(starts[i])) for i in range(len(starts))],
        dtype=np.float64,
    )


def run_beam(
    backend: str,
    graph: Any,
    dataset: Any,
    starts: Any,
    queries: Any,
    beam_width: int,
    k: int = 1,
    budget: int | None = None,
    allowed: np.ndarray | None = None,
    store: Any = None,
) -> list[tuple[list[tuple[int, float]], int]]:
    """Whole-batch compiled beam search; output shape and values match
    ``engine.beam_search_batch`` (callers validate arguments first)."""
    beam_fn = _kernel_fns(backend)[0]
    Q = _query_array(queries)
    plan = _plan(dataset, store, Q)
    graph.freeze()
    offsets, targets = graph.csr()
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    m = len(queries)
    if m == 0:
        return []
    starts64 = np.ascontiguousarray(np.asarray(starts), dtype=np.int64)
    d0 = _start_distances(plan.view, starts64)
    n = graph.n
    k_eff = max(int(k), 1)
    if allowed is not None:
        allowed_u8 = np.ascontiguousarray(allowed).view(np.uint8)
        has_allowed = 1
    else:
        allowed_u8 = np.zeros(0, dtype=np.uint8)
        has_allowed = 0
    out_ids = np.full((m, k_eff), -1, dtype=np.int64)
    out_dists = np.full((m, k_eff), np.inf, dtype=np.float64)
    out_evals = np.zeros(m, dtype=np.int64)
    visited = np.zeros(n, dtype=np.int32)
    cand_d = np.empty(n + 1, dtype=np.float64)
    cand_v = np.empty(n + 1, dtype=np.int64)
    pool_d = np.empty(int(beam_width) + 1, dtype=np.float64)
    pool_v = np.empty(int(beam_width) + 1, dtype=np.int64)
    contrib = np.empty(max(plan.msub, 1), dtype=np.float64)
    beam_fn(
        offsets, targets, plan.kind, plan.factor, plan.power,
        plan.Q, plan.data, plan.codes, plan.minv, plan.scale, plan.luts,
        starts64, d0, int(beam_width), k_eff,
        -1 if budget is None else int(budget),
        allowed_u8, has_allowed,
        out_ids, out_dists, out_evals,
        visited, cand_d, cand_v, pool_d, pool_v, contrib,
    )
    # Re-evaluate reported distances through the numpy view so the
    # floats are bit-identical to the engines' (start vertices keep
    # their scalar() value, exactly as _BeamState seeds them).
    counts = (out_ids >= 0).sum(axis=1).astype(np.int64)
    flat = out_ids[out_ids >= 0]
    exact = np.empty(len(flat), dtype=np.float64)
    nonzero = counts > 0
    if flat.size:
        exact[:] = plan.view.segmented(
            np.flatnonzero(nonzero), flat, counts[nonzero]
        )
    out: list[tuple[list[tuple[int, float]], int]] = []
    pos = 0
    for qi in range(m):
        c = int(counts[qi])
        pairs = []
        for j in range(c):
            v = int(out_ids[qi, j])
            d = d0[qi] if v == int(starts64[qi]) else exact[pos + j]
            pairs.append((v, float(d)))
        pos += c
        out.append((pairs, int(out_evals[qi])))
    return out


def run_greedy(
    backend: str,
    graph: Any,
    dataset: Any,
    starts: Any,
    queries: Any,
    budget: int | None = None,
    allowed: np.ndarray | None = None,
    store: Any = None,
) -> list[Any]:
    """Whole-batch compiled greedy routing; returns the engines'
    ``GreedyResult`` objects (full hop paths included)."""
    from repro.graphs.greedy import GreedyResult

    greedy_fn = _kernel_fns(backend)[1]
    Q = _query_array(queries)
    plan = _plan(dataset, store, Q)
    graph.freeze()
    offsets, targets = graph.csr()
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    m = len(queries)
    if m == 0:
        return []
    starts64 = np.ascontiguousarray(np.asarray(starts), dtype=np.int64)
    d0 = _start_distances(plan.view, starts64)
    if allowed is not None:
        allowed_u8 = np.ascontiguousarray(allowed).view(np.uint8)
        has_allowed = 1
    else:
        allowed_u8 = np.zeros(0, dtype=np.uint8)
        has_allowed = 0
    out_p = np.zeros(m, dtype=np.int64)
    out_d = np.zeros(m, dtype=np.float64)
    out_evals = np.zeros(m, dtype=np.int64)
    out_hops = np.zeros(m, dtype=np.int64)
    out_term = np.zeros(m, dtype=np.int64)
    out_best_p = np.zeros(m, dtype=np.int64)
    out_best_d = np.zeros(m, dtype=np.float64)
    contrib = np.empty(max(plan.msub, 1), dtype=np.float64)
    budget_i = -1 if budget is None else int(budget)
    hops_cap = 64
    while True:
        hops_buf = np.zeros((m, hops_cap), dtype=np.int64)
        maxnh = greedy_fn(
            offsets, targets, plan.kind, plan.factor, plan.power,
            plan.Q, plan.data, plan.codes, plan.minv, plan.scale, plan.luts,
            starts64, d0, budget_i, allowed_u8, has_allowed,
            out_p, out_d, out_evals, out_hops, out_term,
            out_best_p, out_best_d, hops_buf, hops_cap, contrib,
        )
        if int(maxnh) <= hops_cap:
            break
        hops_cap = int(maxnh)  # rare: a walk outran the buffer; retry

    # Reported vertices: the walk end, or the best-allowed record when
    # filtering.  Re-evaluate their distances through the numpy view
    # (d0 for start vertices, segmented() otherwise) for bit-identity.
    rep_p = out_best_p if allowed is not None else out_p
    need = np.flatnonzero((rep_p >= 0) & (rep_p != starts64))
    exact = np.empty(m, dtype=np.float64)
    if len(need):
        exact[need] = plan.view.segmented(
            need, rep_p[need], np.ones(len(need), dtype=np.int64)
        )
    results = []
    for qi in range(m):
        p = int(rep_p[qi])
        if p < 0:
            d = np.inf
        elif p == int(starts64[qi]):
            d = float(d0[qi])
        else:
            d = float(exact[qi])
        nh = int(out_hops[qi])
        results.append(
            GreedyResult(
                point=p,
                distance=d,
                hops=[int(h) for h in hops_buf[qi, :nh]],
                distance_evals=int(out_evals[qi]),
                self_terminated=bool(out_term[qi]),
            )
        )
    return results


def run_construction(
    backend: str,
    graph: Any,
    dataset: Any,
    starts: Any,
    queries: Any,
    beam_width: int,
    expand_per_round: int = 4,
    store: Any = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Whole-wave compiled construction beam; output shape and values
    match ``engine.construction_beam_batch`` (callers validate first)."""
    construction_fn = _kernel_fns(backend)[2]
    Q = _query_array(queries)
    plan = _plan(dataset, store, Q)
    graph.freeze()
    offsets, targets = graph.csr()
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    w = len(queries)
    if w == 0:
        return []
    starts64 = np.ascontiguousarray(np.asarray(starts), dtype=np.int64)
    # The numpy path seeds every pool through one segmented() call;
    # replicate that composition so seed floats are bit-identical.
    d0 = np.ascontiguousarray(
        plan.view.segmented(
            np.arange(w, dtype=np.intp), starts64, np.ones(w, dtype=np.int64)
        ),
        dtype=np.float64,
    )
    n = graph.n
    ef = int(beam_width)
    out_ids = np.full((w, ef), -1, dtype=np.int64)
    out_dists = np.full((w, ef), np.inf, dtype=np.float64)
    out_sizes = np.zeros(w, dtype=np.int64)
    visited = np.zeros(n, dtype=np.int32)
    pexp = np.zeros(ef, dtype=np.uint8)
    sel_buf = np.zeros(max(int(expand_per_round), 1), dtype=np.int64)
    contrib = np.empty(max(plan.msub, 1), dtype=np.float64)
    construction_fn(
        offsets, targets, plan.kind, plan.factor, plan.power,
        plan.Q, plan.data, plan.codes, plan.minv, plan.scale, plan.luts,
        starts64, d0, ef, int(expand_per_round),
        out_ids, out_dists, out_sizes, visited, pexp, sel_buf, contrib,
    )
    # Re-evaluate every reported pool distance through the numpy view —
    # segmented() reductions are per-row independent, so these floats
    # are bit-identical to the engine's round-time evaluations.
    counts = out_sizes
    mask = np.arange(ef, dtype=np.int64)[None, :] < counts[:, None]
    flat = out_ids[mask]
    exact = np.empty(len(flat), dtype=np.float64)
    nonzero = counts > 0
    if flat.size:
        exact[:] = plan.view.segmented(
            np.flatnonzero(nonzero), flat, counts[nonzero]
        )
    out: list[tuple[np.ndarray, np.ndarray]] = []
    pos = 0
    for qi in range(w):
        c = int(counts[qi])
        out.append((out_ids[qi, :c], exact[pos : pos + c]))
        pos += c
    return out


def run_robust_prune(
    backend: str,
    dataset: Any,
    pid: int,
    v_arr: Any,
    d_arr: Any,
    alpha: float,
    max_degree: int,
) -> list[int]:
    """Compiled RobustPrune; output matches ``engine.robust_prune``.

    Always operates on the raw float64 coordinates (the numpy prune
    uses exact points regardless of the traversal store), so only the
    dataset's metric and point layout gate kernel support.
    """
    prune_fn = _kernel_fns(backend)[3]
    pts = _coords_f64(dataset.points, "points")
    kind, factor = _coord_kind(
        dataset.metric, _K.KIND_FLAT_L2, _K.KIND_FLAT_LINF
    )
    v64 = np.ascontiguousarray(np.asarray(v_arr), dtype=np.int64)
    d64 = np.ascontiguousarray(np.asarray(d_arr), dtype=np.float64)
    P = len(v64)
    if P == 0:
        return []
    vs = np.empty(P, dtype=np.int64)
    ds = np.empty(P, dtype=np.float64)
    alive = np.empty(P, dtype=np.uint8)
    sq = np.empty(P, dtype=np.float64)
    out = np.empty(max(int(max_degree), 1), dtype=np.int64)
    kept = prune_fn(
        pts, kind, factor, int(pid), v64, d64, float(alpha),
        int(max_degree), vs, ds, alive, sq, out,
    )
    return out[: int(kept)].tolist()


def run_commit_wave(
    backend: str,
    dataset: Any,
    adj: Any,
    pids: Any,
    pools: Any,
    alpha: float,
    max_degree: int,
    include_own: bool,
    mirror: Any,
) -> None:
    """Commit a whole construction wave in one compiled kernel call.

    ``mirror`` is the caller's :class:`repro.graphs.engine.CommitMirror`
    — the padded int64 row store the kernel mutates in place of the
    list-of-lists adjacency.  The workload is validated (and
    :class:`UnsupportedWorkloadError` raised) *before* the mirror is
    packed or touched, so a failed dispatch leaves the list adjacency
    authoritative and the numpy fallback picks up cleanly.  Like the
    per-call prune, this always operates on the raw float64
    coordinates; own-edge and backlink candidate distances are computed
    in-kernel with the same sequential arithmetic stance as the
    traversal kernels.
    """
    commit_fn = _kernel_fns(backend)[4]
    pts = _coords_f64(dataset.points, "points")
    kind, factor = _coord_kind(
        dataset.metric, _K.KIND_FLAT_L2, _K.KIND_FLAT_LINF
    )
    if not mirror.active:
        mirror.pack(adj, max_degree)
    w = len(pids)
    lens = np.fromiter((len(p[0]) for p in pools), dtype=np.int64, count=w)
    pool_off = np.zeros(w + 1, dtype=np.int64)
    np.cumsum(lens, out=pool_off[1:])
    total = int(pool_off[-1])
    pool_ids = np.empty(total, dtype=np.int64)
    pool_d = np.empty(total, dtype=np.float64)
    for i, (ids, dists) in enumerate(pools):
        pool_ids[pool_off[i] : pool_off[i + 1]] = ids
        pool_d[pool_off[i] : pool_off[i + 1]] = dists
    pids64 = np.ascontiguousarray(np.asarray(pids), dtype=np.int64)
    max_p = (int(lens.max()) if w else 0) + mirror.cap
    md = max(int(max_degree), 1)
    sc = mirror.scratch
    if sc.get("max_p", -1) < max_p or sc.get("md", -1) < md:
        sc["max_p"] = max_p
        sc["md"] = md
        sc["cand_v"] = np.empty(max_p, dtype=np.int64)
        sc["cand_d"] = np.empty(max_p, dtype=np.float64)
        sc["vs"] = np.empty(max_p, dtype=np.int64)
        sc["ds"] = np.empty(max_p, dtype=np.float64)
        sc["alive"] = np.empty(max_p, dtype=np.uint8)
        sc["sq"] = np.empty(max_p, dtype=np.float64)
        sc["out"] = np.empty(md, dtype=np.int64)
        sc["out2"] = np.empty(md, dtype=np.int64)
    commit_fn(
        pts, kind, factor, pids64, pool_ids, pool_d, pool_off,
        1 if include_own else 0, float(alpha), int(max_degree),
        mirror.arr, mirror.deg,
        sc["cand_v"], sc["cand_d"], sc["vs"], sc["ds"],
        sc["alive"], sc["sq"], sc["out"], sc["out2"],
    )


def construction_supported(dataset: Any) -> bool:
    """Cheap data-free probe: can the construction kernels serve this
    dataset (flat float64 coordinates under Euclidean/Chebyshev)?

    The sharded parent uses it before shipping a concrete backend name
    to fresh worker processes (where nothing is warmed, so ``"auto"``
    would silently mean numpy) — an unsupported workload keeps the
    auto-path's silent numpy fallback instead of raising in a worker.
    """
    try:
        _coords_f64(dataset.points, "points")
        _coord_kind(dataset.metric, _K.KIND_FLAT_L2, _K.KIND_FLAT_LINF)
    except UnsupportedWorkloadError:
        return False
    return True


# ---------------------------------------------------------------------------
# warm-time self-check


def _self_check(backend: str) -> None:
    """Refuse to warm a backend that does not reproduce the numpy
    engines on a small smoke workload."""
    from repro.graphs import engine
    from repro.graphs.base import ProximityGraph
    from repro.metrics.base import Dataset
    from repro.metrics.euclidean import EuclideanMetric

    rng = np.random.default_rng(12345)
    n, d, mq = 48, 6, 8
    points = rng.standard_normal((n, d))
    dataset = Dataset(EuclideanMetric(), points)
    edges = []
    for u in range(n):
        for v in rng.choice(n, size=4, replace=False):
            if int(v) != u:
                edges.append((u, int(v)))
    graph = ProximityGraph.from_edge_list(n, edges).freeze()
    Q = rng.standard_normal((mq, d))
    starts = rng.integers(0, n, size=mq)

    want_beam = engine.beam_search_batch(graph, dataset, starts, Q, beam_width=6, k=4)
    got_beam = run_beam(backend, graph, dataset, starts, Q, beam_width=6, k=4)
    want_greedy = engine.greedy_batch(graph, dataset, starts, Q)
    got_greedy = run_greedy(backend, graph, dataset, starts, Q)
    want_c = engine.construction_beam_batch(graph, dataset, starts, Q, beam_width=6)
    got_c = run_construction(backend, graph, dataset, starts, Q, beam_width=6)
    same_c = len(want_c) == len(got_c) and all(
        np.array_equal(wi, gi) and np.array_equal(wd, gd)
        for (wi, wd), (gi, gd) in zip(want_c, got_c)
    )
    v_arr = np.arange(n, dtype=np.intp)
    d_arr = dataset.distances_from_index(0, v_arr)
    want_p = engine.robust_prune(dataset, 0, v_arr, d_arr, 1.2, 6)
    got_p = run_robust_prune(backend, dataset, 0, v_arr, d_arr, 1.2, 6)
    # One whole-wave commit against a partially linked adjacency,
    # kernel vs the pinned per-member prune-and-link loop.
    adj_want = [sorted(graph.out_neighbors(u).tolist())[:3] for u in range(n)]
    adj_got = [list(row) for row in adj_want]
    wave = [int(p) for p in rng.permutation(n)[:mq]]
    pools_w = engine.construction_beam_batch(
        graph, dataset, [0] * len(wave), points[wave], beam_width=6
    )
    engine.commit_wave_pools(dataset, adj_want, wave, pools_w, 1.2, 4)
    mirror = engine.CommitMirror()
    run_commit_wave(backend, dataset, adj_got, wave, pools_w, 1.2, 4, False, mirror)
    mirror.flush(adj_got)
    if (
        want_beam != got_beam
        or want_greedy != got_greedy
        or not same_c
        or want_p != got_p
        or adj_want != adj_got
    ):
        raise AccelError(
            f"accel backend {backend!r} failed its warm-time self-check "
            "against the numpy engines; refusing to enable it"
        )
