"""The traversal kernels — pinned reference source for every backend.

Each function below is written in the restricted style :func:`numba.njit`
compiles (flat loops over preallocated arrays, no Python containers, no
closures) and is decorated with ``@njit(cache=True)`` automatically when
numba is importable.  Without numba the very same functions run under
the plain interpreter — that is the ``"python"`` backend the equivalence
suites pin the compiled backends against, and the semantics contract the
C backend (:mod:`repro.accel.cbackend`) mirrors line for line.

Semantics are replicated operation-for-operation from the numpy engines
in :mod:`repro.graphs.engine`:

* the candidate queue pops the lexicographic minimum of ``(distance,
  vertex)`` and the result pool evicts the lexicographic minimum of
  ``(-distance, vertex)`` — exactly the ``heapq`` tuple orders of
  ``_BeamState`` — so pop/evict sequences match the numpy path even
  through distance ties;
* neighbors are gathered, evaluated, and folded into the heaps in CSR
  slice order (ascending vertex id), reproducing the engines'
  first-index-of-minimum tie-breaks;
* ``budget`` is checked and truncates segments at the same points in the
  iteration as the numpy code, so ``distance_evals`` matches exactly;
* ``allowed`` masks gate pool membership (beam) and best-so-far
  bookkeeping (greedy) but never traversal, as in the engines;
* the visited structure is a generation-stamped ``int32`` array —
  allocated once per batch, reset by bumping the generation per query.

Floating-point contract: distances accumulate sequentially in float64
(the documented arithmetic compiled backends reproduce under strict
IEEE rules — numba's default ``fastmath=False``, C under
``-ffp-contract=off``).  PQ-ADC row reductions replicate numpy's
pairwise summation exactly (:func:`pairwise_sum`), because the numpy
engine sums LUT contributions with ``ndarray.sum``.  Traversal
*decisions* therefore agree with the numpy engines wherever the numpy
path's SIMD-dispatched ``einsum`` accumulation does not flip a
comparison at 1-ulp scale — which the 3-seed equivalence suites pin
empirically — and *reported* distances are recomputed through the numpy
distance view by the dispatch layer, so results are bit-identical
whenever decisions agree.

Kernels never allocate: every output and scratch array is provided by
:mod:`repro.accel.dispatch`.  Distance-mode selection is a runtime
``kind`` code (`KIND_*`), so one compiled signature serves flat, SQ8,
and PQ traversals; unused model arrays are passed empty.
"""

import math
import os

import numpy as np

__all__ = [
    "KIND_FLAT_L2",
    "KIND_FLAT_LINF",
    "KIND_SQ8_L2",
    "KIND_SQ8_LINF",
    "KIND_PQ_SUM2",
    "KIND_PQ_SUMP",
    "KIND_PQ_MAX",
    "NUMBA_COMPILED",
    "pairwise_sum",
    "beam_kernel",
    "greedy_kernel",
    "construction_kernel",
    "robust_prune_kernel",
    "commit_wave_kernel",
]

KIND_FLAT_L2 = 0
KIND_FLAT_LINF = 1
KIND_SQ8_L2 = 2
KIND_SQ8_LINF = 3
KIND_PQ_SUM2 = 4
KIND_PQ_SUMP = 5
KIND_PQ_MAX = 6

_INF = np.inf

# Self-decorate with numba when importable (and not explicitly disabled,
# which the no-numba CI leg uses to prove the interpreted path).  The
# decoration is lazy-compiling: importing this module never compiles;
# the first kernel call does, and ``cache=True`` persists the compiled
# machine code on disk so later processes skip compilation.
if os.environ.get("REPRO_ACCEL_DISABLE_NUMBA"):  # pragma: no cover
    NUMBA_COMPILED = False

    def _jit(fn):
        return fn

else:
    try:
        from numba import njit as _njit

        NUMBA_COMPILED = True

        def _jit(fn):
            return _njit(cache=True, fastmath=False)(fn)

    except ImportError:
        NUMBA_COMPILED = False

        def _jit(fn):
            return fn


@_jit
def pairwise_sum(a, lo, n):
    """numpy's pairwise summation of ``a[lo : lo + n]``, bit for bit.

    Replicates ``pairwise_sum_DOUBLE`` from numpy's reduction loops for
    the contiguous unit-stride case: sequential below 8 elements, an
    8-accumulator unrolled pass combined as ``((r0+r1) + (r2+r3)) +
    ((r4+r5) + (r6+r7))`` up to the 128-element block size.  (The
    recursive >128 splitting is not replicated; the dispatch layer
    rejects PQ stores with more than 128 subspaces.)
    """
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    r0 = a[lo]
    r1 = a[lo + 1]
    r2 = a[lo + 2]
    r3 = a[lo + 3]
    r4 = a[lo + 4]
    r5 = a[lo + 5]
    r6 = a[lo + 6]
    r7 = a[lo + 7]
    i = 8
    while i + 8 <= n:
        r0 += a[lo + i]
        r1 += a[lo + i + 1]
        r2 += a[lo + i + 2]
        r3 += a[lo + i + 3]
        r4 += a[lo + i + 4]
        r5 += a[lo + i + 5]
        r6 += a[lo + i + 6]
        r7 += a[lo + i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res += a[lo + i]
        i += 1
    return res


@_jit
def _dist(kind, factor, power, Q, qi, data, codes, minv, scale, luts, contrib, v):
    """Distance from query row ``qi`` to stored vector ``v``.

    Sequential float64 accumulation; ``factor`` is the unwrapped
    ``ScaledMetric`` normalization multiplied through at the end, as
    ``decompose_metric`` documents.
    """
    if kind == KIND_FLAT_L2:
        acc = 0.0
        for j in range(data.shape[1]):
            t = Q[qi, j] - data[v, j]
            acc += t * t
        return factor * math.sqrt(acc)
    if kind == KIND_FLAT_LINF:
        acc = 0.0
        for j in range(data.shape[1]):
            t = abs(Q[qi, j] - data[v, j])
            if t > acc:
                acc = t
        return factor * acc
    if kind == KIND_SQ8_L2:
        acc = 0.0
        for j in range(codes.shape[1]):
            t = Q[qi, j] - (codes[v, j] * scale[j] + minv[j])
            acc += t * t
        return factor * math.sqrt(acc)
    if kind == KIND_SQ8_LINF:
        acc = 0.0
        for j in range(codes.shape[1]):
            t = abs(Q[qi, j] - (codes[v, j] * scale[j] + minv[j]))
            if t > acc:
                acc = t
        return factor * acc
    # PQ-ADC: gather per-subspace LUT contributions, then combine the
    # row with numpy's own reduction arithmetic.
    msub = codes.shape[1]
    if kind == KIND_PQ_MAX:
        acc = 0.0
        for j in range(msub):
            t = luts[qi, j, codes[v, j]]
            if j == 0 or t > acc:
                acc = t
        return factor * acc
    for j in range(msub):
        contrib[j] = luts[qi, j, codes[v, j]]
    acc = pairwise_sum(contrib, 0, msub)
    if kind == KIND_PQ_SUM2:
        return factor * math.sqrt(acc)
    return factor * acc ** (1.0 / power)


# -- array heaps --------------------------------------------------------
#
# The candidate queue is a binary min-heap on the key (d, v) — the
# lexicographic tuple order heapq applies to _BeamState.candidates.  The
# pool is a binary max-heap whose root is the *worst* pool entry under
# the key (-d, v): largest distance first, smallest vertex id among
# distance ties — the entry heapq pops from _BeamState.pool on
# eviction.  Keys are unique per query (each vertex enters a heap at
# most once), so pop/evict order is a total order and any conforming
# heap reproduces the numpy sequence exactly.


@_jit
def _cand_push(cd, cv, size, d, v):
    i = size
    cd[i] = d
    cv[i] = v
    while i > 0:
        p = (i - 1) >> 1
        if cd[i] < cd[p] or (cd[i] == cd[p] and cv[i] < cv[p]):
            cd[i], cd[p] = cd[p], cd[i]
            cv[i], cv[p] = cv[p], cv[i]
            i = p
        else:
            break
    return size + 1


@_jit
def _cand_pop(cd, cv, size):
    size -= 1
    cd[0] = cd[size]
    cv[0] = cv[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        small = left
        right = left + 1
        if right < size and (
            cd[right] < cd[left] or (cd[right] == cd[left] and cv[right] < cv[left])
        ):
            small = right
        if cd[small] < cd[i] or (cd[small] == cd[i] and cv[small] < cv[i]):
            cd[i], cd[small] = cd[small], cd[i]
            cv[i], cv[small] = cv[small], cv[i]
            i = small
        else:
            break
    return size


@_jit
def _pool_worse(d1, v1, d2, v2):
    """True when entry 1 is evicted before entry 2 — heapq order on
    ``(-d, v)``: larger distance first, smaller id among ties."""
    if d1 > d2:
        return True
    if d1 == d2 and v1 < v2:
        return True
    return False


@_jit
def _pool_push(pd, pv, size, d, v):
    i = size
    pd[i] = d
    pv[i] = v
    while i > 0:
        p = (i - 1) >> 1
        if _pool_worse(pd[i], pv[i], pd[p], pv[p]):
            pd[i], pd[p] = pd[p], pd[i]
            pv[i], pv[p] = pv[p], pv[i]
            i = p
        else:
            break
    return size + 1


@_jit
def _pool_pop(pd, pv, size):
    size -= 1
    pd[0] = pd[size]
    pv[0] = pv[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        worst = left
        right = left + 1
        if right < size and _pool_worse(pd[right], pv[right], pd[left], pv[left]):
            worst = right
        if _pool_worse(pd[worst], pv[worst], pd[i], pv[i]):
            pd[i], pd[worst] = pd[worst], pd[i]
            pv[i], pv[worst] = pv[worst], pv[i]
            i = worst
        else:
            break
    return size


@_jit
def beam_kernel(
    offsets,
    targets,
    kind,
    factor,
    power,
    Q,
    data,
    codes,
    minv,
    scale,
    luts,
    starts,
    d0,
    beam_width,
    k_fetch,
    budget,
    allowed,
    has_allowed,
    out_ids,
    out_dists,
    out_evals,
    visited,
    cand_d,
    cand_v,
    pool_d,
    pool_v,
    contrib,
):
    """Best-first beam search for every query of the batch.

    Mirrors the per-query state transitions of
    ``engine.beam_search_batch`` (queries are independent, so the numpy
    path's lockstep rounds and this sequential sweep visit identical
    states).  ``budget < 0`` means unbudgeted.  Outputs: ``out_ids`` /
    ``out_dists`` hold each query's pool sorted ascending by
    ``(distance, vertex)``, ``-1`` / ``inf`` padded past the pool size;
    ``out_evals`` the exact distance-evaluation counts.
    """
    nq = starts.shape[0]
    for qi in range(nq):
        gen = qi + 1
        s = starts[qi]
        csize = _cand_push(cand_d, cand_v, 0, d0[qi], s)
        psize = 0
        if has_allowed == 0 or allowed[s] != 0:
            psize = _pool_push(pool_d, pool_v, 0, d0[qi], s)
        visited[s] = gen
        evals = 1
        while csize > 0:
            dcur = cand_d[0]
            u = cand_v[0]
            csize = _cand_pop(cand_d, cand_v, csize)
            if psize >= beam_width and dcur > pool_d[0]:
                break
            beg = offsets[u]
            end = offsets[u + 1]
            cnt = 0
            for ei in range(beg, end):
                if visited[targets[ei]] != gen:
                    cnt += 1
            if cnt == 0:
                continue
            if budget >= 0 and evals >= budget:
                break
            take = cnt
            if budget >= 0 and evals + cnt > budget:
                take = budget - evals
            processed = 0
            for ei in range(beg, end):
                if processed >= take:
                    break
                v = targets[ei]
                if visited[v] == gen:
                    continue
                processed += 1
                visited[v] = gen
                dv = _dist(
                    kind, factor, power, Q, qi, data, codes, minv, scale, luts, contrib, v
                )
                evals += 1
                if psize < beam_width or dv < pool_d[0]:
                    csize = _cand_push(cand_d, cand_v, csize, dv, v)
                    if has_allowed == 0 or allowed[v] != 0:
                        psize = _pool_push(pool_d, pool_v, psize, dv, v)
                        if psize > beam_width:
                            psize = _pool_pop(pool_d, pool_v, psize)
        # Extract: the numpy path reports sorted((-d, v) for pool)[:k],
        # i.e. ascending (distance, vertex).  Insertion-sort the pool
        # (≤ beam_width entries) under that key.
        for a in range(1, psize):
            dd = pool_d[a]
            vv = pool_v[a]
            b = a - 1
            while b >= 0 and (pool_d[b] > dd or (pool_d[b] == dd and pool_v[b] > vv)):
                pool_d[b + 1] = pool_d[b]
                pool_v[b + 1] = pool_v[b]
                b -= 1
            pool_d[b + 1] = dd
            pool_v[b + 1] = vv
        n_out = psize if psize < k_fetch else k_fetch
        for a in range(n_out):
            out_ids[qi, a] = pool_v[a]
            out_dists[qi, a] = pool_d[a]
        out_evals[qi] = evals
    return 0


@_jit
def construction_kernel(
    offsets,
    targets,
    kind,
    factor,
    power,
    Q,
    data,
    codes,
    minv,
    scale,
    luts,
    starts,
    d0,
    beam_width,
    expand_per_round,
    out_ids,
    out_dists,
    out_sizes,
    visited,
    pexp,
    sel_buf,
    contrib,
):
    """Construction-wave beam location for every query of the batch.

    Mirrors ``engine.construction_beam_batch`` query by query (queries
    are independent, so the numpy path's lockstep rounds and this
    sequential sweep reach identical pool states): per round, the first
    ``expand_per_round`` unexpanded pool slots in ascending-distance
    order are marked expanded *before* any neighbor is folded in, their
    CSR neighbor slices are walked in order, each not-yet-visited
    neighbor is stamped in the generation-stamped ``visited`` array
    (replicating both the within-round key-sort dedup and the
    cross-round bitmap), evaluated, and inserted into the
    ``beam_width``-bounded pool kept sorted ascending by distance with
    worst-entry eviction — set-equivalent to the engine's
    argpartition+argsort batch merge for distinct distances (ties are
    measure-zero and pinned empirically by the 3-seed suites).  A query
    terminates when no unexpanded valid slot remains, exactly the
    engine's eligibility test (on a sorted pool ``d <= d[ef-1]`` is
    trivially true for every valid slot).

    ``out_ids`` / ``out_dists`` double as the pool arrays: on return
    row ``qi`` holds the final pool ascending by distance and
    ``out_sizes[qi]`` its valid length.  ``pexp`` is a per-query
    expansion-flag scratch row; ``sel_buf`` buffers one round's
    selected node ids (selection is frozen before insertions shift
    slot positions, matching the engine's round structure).
    """
    nq = starts.shape[0]
    ef = beam_width
    for qi in range(nq):
        gen = qi + 1
        for a in range(ef):
            pexp[a] = 0
        out_ids[qi, 0] = starts[qi]
        out_dists[qi, 0] = d0[qi]
        psize = 1
        visited[starts[qi]] = gen
        while True:
            nsel = 0
            for slot in range(psize):
                if pexp[slot] == 0:
                    sel_buf[nsel] = out_ids[qi, slot]
                    pexp[slot] = 1
                    nsel += 1
                    if nsel >= expand_per_round:
                        break
            if nsel == 0:
                break
            for si in range(nsel):
                u = sel_buf[si]
                for ei in range(offsets[u], offsets[u + 1]):
                    v = targets[ei]
                    if visited[v] == gen:
                        continue
                    visited[v] = gen
                    dv = _dist(
                        kind, factor, power, Q, qi, data, codes, minv, scale, luts, contrib, v
                    )
                    if psize < ef:
                        pos = psize
                        psize += 1
                    elif dv < out_dists[qi, ef - 1]:
                        pos = ef - 1
                    else:
                        continue
                    j = pos
                    while j > 0 and out_dists[qi, j - 1] > dv:
                        out_dists[qi, j] = out_dists[qi, j - 1]
                        out_ids[qi, j] = out_ids[qi, j - 1]
                        pexp[j] = pexp[j - 1]
                        j -= 1
                    out_dists[qi, j] = dv
                    out_ids[qi, j] = v
                    pexp[j] = 0
        out_sizes[qi] = psize
    return 0


@_jit
def _point_dist(points, kind, factor, a, b):
    """Distance between two stored points over raw float64 coordinates.

    Replicates the coordinate metrics' ``distances`` rows (the einsum
    difference form for L2, exact max-abs-diff for Linf) with a
    sequential float64 accumulation; the ~1e-15 relative spread the
    L2 reassociation admits only matters at measure-zero tie scale.
    """
    dim = points.shape[1]
    if kind == KIND_FLAT_L2:
        acc = 0.0
        for c in range(dim):
            t = points[a, c] - points[b, c]
            acc += t * t
        return factor * math.sqrt(acc)
    acc = 0.0
    for c in range(dim):
        t = points[a, c] - points[b, c]
        if t < 0.0:
            t = -t
        if t > acc:
            acc = t
    return factor * acc


@_jit
def _prune_core(
    points, kind, factor, pid, v_in, d_in, P, alpha, max_degree,
    vs, ds, alive, sq, out,
):
    """The RobustPrune body shared by the per-call and wave kernels;
    reads the first ``P`` entries of ``v_in``/``d_in`` and returns the
    kept count (ids in ``out``)."""
    # (d, v)-ascending insertion sort into the scratch arrays.
    for i in range(P):
        d = d_in[i]
        v = v_in[i]
        j = i
        while j > 0 and (ds[j - 1] > d or (ds[j - 1] == d and vs[j - 1] > v)):
            ds[j] = ds[j - 1]
            vs[j] = vs[j - 1]
            j -= 1
        ds[j] = d
        vs[j] = v
    # Drop pid + first-occurrence-per-id dedup, compacting in place
    # (in (d, v) order the first occurrence has the smallest distance,
    # exactly np.unique's return_index under the engine's sort).
    k = 0
    for i in range(P):
        v = vs[i]
        if v == pid:
            continue
        dup = False
        for j in range(k):
            if vs[j] == v:
                dup = True
                break
        if dup:
            continue
        vs[k] = v
        ds[k] = ds[i]
        k += 1
    if k == 0:
        return 0
    dim = points.shape[1]
    if kind == KIND_FLAT_L2:
        for i in range(k):
            acc = 0.0
            for c in range(dim):
                t = points[vs[i], c]
                acc += t * t
            sq[i] = acc
    for i in range(k):
        alive[i] = 1
    kept = 0
    pos = 0
    while kept < max_degree:
        while pos < k and alive[pos] == 0:
            pos += 1
        if pos >= k:
            break
        out[kept] = vs[pos]
        kept += 1
        if kept >= max_degree:
            break
        # Fold the kept point's pairwise row into the alive mask.
        for j in range(k):
            if alive[j] == 0:
                continue
            if j == pos:
                d = 0.0
            elif kind == KIND_FLAT_L2:
                dot = 0.0
                for c in range(dim):
                    dot += points[vs[pos], c] * points[vs[j], c]
                d2 = sq[pos] + sq[j] - 2.0 * dot
                if d2 < 0.0:
                    d2 = 0.0
                d = factor * math.sqrt(d2)
            else:
                acc = 0.0
                for c in range(dim):
                    t = points[vs[pos], c] - points[vs[j], c]
                    if t < 0.0:
                        t = -t
                    if t > acc:
                        acc = t
                d = factor * acc
            if not alpha * d > ds[j]:
                alive[j] = 0
        pos += 1
    return kept


@_jit
def robust_prune_kernel(
    points,
    kind,
    factor,
    pid,
    v_in,
    d_in,
    alpha,
    max_degree,
    vs,
    ds,
    alive,
    sq,
    out,
):
    """RobustPrune over raw float64 coordinates, start to finish.

    Mirrors ``engine.robust_prune`` step for step: sort candidates
    ascending by ``(distance, vertex)`` (``np.lexsort((v, d))``), drop
    ``pid``, keep the first occurrence per id, then run the greedy
    alpha scan.  Kept-to-candidate distances replicate the coordinate
    metrics' ``pairwise`` entry for entry — the Euclidean gram identity
    ``sqrt(max(sq_i + sq_j - 2*dot_ij, 0))`` with a zero diagonal, the
    Chebyshev max-of-absolute-differences exactly — with sequential
    float64 dots where numpy calls BLAS; the ~1e-15 relative spread
    this admits flips an ``alpha * D > d`` comparison only at
    measure-zero tie scale, pinned empirically by the 3-seed suites.

    ``vs``/``ds``/``alive``/``sq`` are length-``len(v_in)`` scratch;
    ``out`` receives the kept ids and the return value is their count.
    """
    return _prune_core(
        points, kind, factor, pid, v_in, d_in, v_in.shape[0],
        alpha, max_degree, vs, ds, alive, sq, out,
    )


@_jit
def commit_wave_kernel(
    points,
    kind,
    factor,
    pids,
    pool_ids,
    pool_d,
    pool_off,
    include_own,
    alpha,
    max_degree,
    adj,
    deg,
    cand_v,
    cand_d,
    vs,
    ds,
    alive,
    sq,
    out,
    out2,
):
    """Commit a whole construction wave against a padded adjacency.

    Mirrors ``engine.prune_and_link`` commit by commit, in wave order:
    each member's candidate pool (its slice of ``pool_ids``/``pool_d``,
    plus — when ``include_own`` is nonzero — its current out-neighbors
    with distances computed by :func:`_point_dist`, exactly Vamana's
    own-edge concatenation) is RobustPruned into its adjacency row,
    then backlinks are added to every kept neighbor with overflow
    re-pruning, whose candidate distances are likewise computed
    in-kernel.  ``adj`` is the ``(n, cap)`` padded row store with
    ``deg`` holding row lengths; rows never exceed ``max_degree``
    after a commit, and ``cap >= max_degree + 1`` absorbs the
    transient pre-prune append.

    ``cand_v``/``cand_d`` assemble one candidate list at a time and
    ``vs``/``ds``/``alive``/``sq`` are the prune scratch (all sized to
    the longest possible candidate list); ``out`` holds the committed
    member's kept row while ``out2`` serves the backlink re-prunes.
    """
    w = pids.shape[0]
    for i in range(w):
        pid = pids[i]
        P = 0
        for j in range(pool_off[i], pool_off[i + 1]):
            cand_v[P] = pool_ids[j]
            cand_d[P] = pool_d[j]
            P += 1
        if include_own != 0:
            for j in range(deg[pid]):
                v = adj[pid, j]
                cand_v[P] = v
                cand_d[P] = _point_dist(points, kind, factor, pid, v)
                P += 1
        kept = _prune_core(
            points, kind, factor, pid, cand_v, cand_d, P,
            alpha, max_degree, vs, ds, alive, sq, out,
        )
        for j in range(kept):
            adj[pid, j] = out[j]
        deg[pid] = kept
        for j in range(kept):
            v = out[j]
            dv = deg[v]
            present = False
            for t in range(dv):
                if adj[v, t] == pid:
                    present = True
                    break
            if present:
                continue
            adj[v, dv] = pid
            deg[v] = dv + 1
            if deg[v] > max_degree:
                P2 = deg[v]
                for t in range(P2):
                    cand_v[t] = adj[v, t]
                    cand_d[t] = _point_dist(points, kind, factor, v, adj[v, t])
                k2 = _prune_core(
                    points, kind, factor, v, cand_v, cand_d, P2,
                    alpha, max_degree, vs, ds, alive, sq, out2,
                )
                for t in range(k2):
                    adj[v, t] = out2[t]
                deg[v] = k2
    return 0


@_jit
def greedy_kernel(
    offsets,
    targets,
    kind,
    factor,
    power,
    Q,
    data,
    codes,
    minv,
    scale,
    luts,
    starts,
    d0,
    budget,
    allowed,
    has_allowed,
    out_p,
    out_d,
    out_evals,
    out_hops,
    out_term,
    out_best_p,
    out_best_d,
    hops_buf,
    hops_cap,
    contrib,
):
    """Greedy routing for every query of the batch.

    Mirrors ``engine.greedy_batch`` exactly: budget checked before each
    hop, segment truncation in slice order, per-hop first-minimum
    tie-break, strict-improvement advance, ``self_terminated`` false on
    truncated final hops, and the ``allowed`` best-so-far bookkeeping
    (per-hop first admissible minimum folded under strict improvement).
    Walks record their hop vertices into ``hops_buf`` up to ``hops_cap``
    entries per query; the return value is the batch's true maximum hop
    count so the dispatcher can retry with a bigger buffer in the rare
    case a walk outruns it.
    """
    nq = starts.shape[0]
    maxnh = 0
    for qi in range(nq):
        p = starts[qi]
        dcur = d0[qi]
        evals = 1
        nh = 1
        if hops_cap > 0:
            hops_buf[qi, 0] = p
        bp = -1
        bd = _INF
        if has_allowed != 0 and allowed[p] != 0:
            bp = p
            bd = dcur
        term = 0
        while True:
            if budget >= 0 and evals >= budget:
                term = 0
                break
            beg = offsets[p]
            end = offsets[p + 1]
            deg = end - beg
            if deg == 0:
                term = 1
                break
            take = deg
            truncated = 0
            if budget >= 0 and evals + deg > budget:
                take = budget - evals
                truncated = 1
            bestd = _INF
            bestv = -1
            hop_ad = _INF
            hop_av = -1
            for i in range(take):
                v = targets[beg + i]
                dv = _dist(
                    kind, factor, power, Q, qi, data, codes, minv, scale, luts, contrib, v
                )
                if has_allowed != 0 and allowed[v] != 0 and dv < hop_ad:
                    hop_ad = dv
                    hop_av = v
                if dv < bestd:
                    bestd = dv
                    bestv = v
            evals += take
            if hop_av >= 0 and hop_ad < bd:
                bd = hop_ad
                bp = hop_av
            if bestd < dcur:
                p = bestv
                dcur = bestd
                if nh < hops_cap:
                    hops_buf[qi, nh] = p
                nh += 1
            else:
                term = 0 if truncated == 1 else 1
                break
        out_p[qi] = p
        out_d[qi] = dcur
        out_evals[qi] = evals
        out_hops[qi] = nh
        out_term[qi] = term
        out_best_p[qi] = bp
        out_best_d[qi] = bd
        if nh > maxnh:
            maxnh = nh
    return maxnh
