"""Analysis tooling: empirical scaling-law fits, theory-vs-measured
accounting, and the project-contract linter behind ``repro lint``.

Two halves live here:

* the *empirical* toolkit (:mod:`~repro.analysis.fits`,
  :mod:`~repro.analysis.theory`, :mod:`~repro.analysis.traces`) used by
  benches and examples to fit scaling laws and compare measured hop
  counts against the paper's bounds;
* the *static* toolkit (:mod:`~repro.analysis.lint`) — an AST rule
  engine that checks the conventions the test suite can only catch
  after they break: seeded determinism, async/spawn safety, arena
  hygiene, kernel-planner parity, warn-once deprecation shims, and the
  strict-typing surface.
"""

from repro.analysis.fits import LinearFit, PowerLawFit, fit_linear, fit_power_law
from repro.analysis.lint import (
    ALL_RULES,
    Finding,
    LintConfig,
    LintReport,
    Severity,
    lint_paths,
    lint_source,
)
from repro.analysis.theory import TheoryReport, gnet_theory_report
from repro.analysis.traces import HopRecord, TraceReport, trace_report

__all__ = [
    "ALL_RULES",
    "Finding",
    "LinearFit",
    "LintConfig",
    "LintReport",
    "PowerLawFit",
    "HopRecord",
    "Severity",
    "TheoryReport",
    "TraceReport",
    "fit_linear",
    "fit_power_law",
    "gnet_theory_report",
    "lint_paths",
    "lint_source",
    "trace_report",
]
