"""Empirical-analysis toolkit: scaling-law fits and theory-vs-measured
accounting used by benches and examples."""

from repro.analysis.fits import LinearFit, PowerLawFit, fit_linear, fit_power_law
from repro.analysis.theory import TheoryReport, gnet_theory_report
from repro.analysis.traces import HopRecord, TraceReport, trace_report

__all__ = [
    "LinearFit",
    "PowerLawFit",
    "HopRecord",
    "TheoryReport",
    "TraceReport",
    "fit_linear",
    "fit_power_law",
    "gnet_theory_report",
    "trace_report",
]
