"""Growth-law fitting for empirical scaling curves.

The benches' claims are of the form "quantity Q grows like x^a (times
polylog)": edges vs n, build time vs n, cone count vs 1/theta.  This
module provides the small statistics toolkit they rest on — power-law
fits with goodness-of-fit, growth-exponent confidence via leave-one-out,
and linear fits for the `edges/n vs log Delta` family — implemented on
plain numpy so there is no scipy dependency at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["PowerLawFit", "LinearFit", "fit_power_law", "fit_linear"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c * x^exponent`` in log-log space."""

    exponent: float
    constant: float
    r_squared: float
    exponent_range: tuple[float, float]  # leave-one-out min/max

    def predict(self, x: float) -> float:
        return self.constant * x**self.exponent


@dataclass(frozen=True)
class LinearFit:
    """Ordinary least squares ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def _ols(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    x_c = x - x.mean()
    y_c = y - y.mean()
    denom = float(x_c @ x_c)
    if denom == 0:
        raise ValueError("all x values identical — slope undefined")
    slope = float((x_c @ y_c) / denom)
    intercept = float(y.mean() - slope * x.mean())
    resid = y - (slope * x + intercept)
    total = float(y_c @ y_c)
    r2 = 1.0 if total == 0 else 1.0 - float(resid @ resid) / total
    return slope, intercept, r2


def fit_linear(xs: Any, ys: Any) -> LinearFit:
    """OLS line fit with R^2."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(x) < 2 or len(x) != len(y):
        raise ValueError("need at least two (x, y) pairs of equal length")
    slope, intercept, r2 = _ols(x, y)
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2)


def fit_power_law(xs: Any, ys: Any) -> PowerLawFit:
    """Fit ``y = c * x^a`` and report how stable the exponent is.

    ``exponent_range`` is the min/max exponent over leave-one-out refits
    — a cheap robustness check benches use instead of asserting on a
    single noisy slope (3+ points required; with exactly 2 the range
    degenerates to the point estimate).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(x) < 2 or len(x) != len(y):
        raise ValueError("need at least two (x, y) pairs of equal length")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fitting needs positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept, r2 = _ols(lx, ly)

    if len(x) >= 3:
        loo = []
        for k in range(len(x)):
            keep = np.arange(len(x)) != k
            s, _, _ = _ols(lx[keep], ly[keep])
            loo.append(s)
        rng = (min(loo), max(loo))
    else:
        rng = (slope, slope)
    return PowerLawFit(
        exponent=slope,
        constant=float(np.exp(intercept)),
        r_squared=r2,
        exponent_range=rng,
    )
