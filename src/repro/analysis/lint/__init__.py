"""``repro lint`` — the project-contract linter.

The stack's correctness rests on conventions no general-purpose tool
checks: seeded determinism, a non-blocking event loop in ``serve/``,
spawn-safe process-pool payloads, shared-memory arena lifecycle,
kernel-planner parity with the numpy engines, warn-once deprecation
shims, and a fully annotated ``core``/``storage``/``serve``/``analysis``
surface.  This subpackage is an AST rule engine (stdlib :mod:`ast` only)
that turns each convention into a named rule with line suppressions
(``# repro: ignore[rule-id]``), run by the ``repro lint`` CLI
subcommand, which exits nonzero on any unsuppressed finding.

See :mod:`repro.analysis.lint.engine` for the engine and
:mod:`repro.analysis.lint.rules` for the rules themselves.
"""

from __future__ import annotations

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintConfig,
    LintError,
    LintReport,
    Rule,
    Severity,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.lint.rules import ALL_RULES, default_rules, rule_by_id

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "Rule",
    "Severity",
    "default_rules",
    "format_findings",
    "lint_paths",
    "lint_source",
    "rule_by_id",
]
