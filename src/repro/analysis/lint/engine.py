"""The rule engine behind ``repro lint``.

Deliberately small: a :class:`Rule` is a named check over one parsed
file (a :class:`FileContext`), a :class:`Finding` is one localized
violation, and the engine's whole job is to parse files, hand them to
rules, and fold per-line ``# repro: ignore[rule-id]`` suppressions into
the result.  Everything project-specific lives in the rules
(:mod:`repro.analysis.lint.rules`); everything here would transfer to
any other codebase unchanged.

Suppression syntax, on the *flagged* line::

    rng = np.random.default_rng()  # repro: ignore[determinism] seeded upstream
    arena = SharedArena.create(g)  # repro: ignore[arena-hygiene, unused-symbol]
    anything_at_all()              # repro: ignore

The bare form suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids.  Suppressed findings are still
collected (``Finding.suppressed=True``) so ``--show-suppressed`` can
audit them, but they never affect the exit code.
"""

from __future__ import annotations

import ast
import enum
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "Rule",
    "Severity",
    "format_findings",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]


class LintError(Exception):
    """A file could not be linted (unreadable, syntax error)."""


class Severity(enum.Enum):
    """How a finding affects the run: errors gate the exit code."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One localized contract violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}{tag}"
        )


@dataclass(frozen=True)
class LintConfig:
    """What to run and how severe each rule is.

    ``select``/``ignore`` are rule-id filters (``select`` empty means
    every registered rule).  ``severity_overrides`` remaps a rule's
    default severity — a project can demote a rule to ``warning``
    without forking its implementation.  ``typed_packages`` scopes the
    ``typing-complete`` rule (the strict-typing gate mirror) to the
    packages the pinned mypy config covers.
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    typed_packages: tuple[str, ...] = (
        "repro.core",
        "repro.storage",
        "repro.serve",
        "repro.analysis",
    )

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select

    def severity_for(self, rule: "Rule") -> Severity:
        return self.severity_overrides.get(rule.id, rule.default_severity)


class FileContext:
    """One parsed file, as rules see it."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
        module: str | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.module = module if module is not None else module_name_of(path)
        self.lines = source.splitlines()

    @property
    def is_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    def in_typed_packages(self) -> bool:
        """Is this file in the strict-typing gate's scope?

        Standalone files (no ``repro`` package root on their path — the
        test fixtures) count as in-scope so the rule is exercisable.
        """
        if self.module is None:
            return True
        return self.module.startswith(
            tuple(p + "." for p in self.config.typed_packages)
            + self.config.typed_packages
        )


class Rule:
    """One named check.  Subclasses set the class attributes and
    implement :meth:`check`, yielding ``(node_or_line, message)``."""

    id: str = "?"
    rationale: str = ""
    default_severity: Severity = Severity.ERROR

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        raise NotImplementedError  # pragma: no cover - abstract

    def run(self, ctx: FileContext) -> list[Finding]:
        severity = ctx.config.severity_for(self)
        out = []
        for where, message in self.check(ctx):
            if isinstance(where, int):
                line, col = where, 0
            else:
                line = getattr(where, "lineno", 1)
                col = getattr(where, "col_offset", 0)
            out.append(
                Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=line,
                    col=col,
                    message=message,
                    severity=severity,
                )
            )
        return out


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

# ``# repro: ignore`` or ``# repro: ignore[id-a, id-b]`` anywhere in the
# physical line (typically a trailing comment, optionally followed by a
# free-text justification).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_\-, ]+)\])?")

#: Sentinel: every rule is suppressed on this line.
SUPPRESS_ALL = "*"


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> suppressed rule ids (or ``{'*'}``)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:  # fast path
            continue
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        ids = m.group(1)
        if ids is None:
            out[lineno] = {SUPPRESS_ALL}
        else:
            out.setdefault(lineno, set()).update(
                tok.strip() for tok in ids.split(",") if tok.strip()
            )
    return out


def module_name_of(path: str) -> str | None:
    """Dotted module name of ``path`` rooted at its ``repro`` package
    directory, or ``None`` when the file is not under one (fixtures)."""
    parts = Path(path).with_suffix("").parts
    if "repro" not in parts:
        return None
    root = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[root:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
    config: LintConfig | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one in-memory source string (the test-fixture entry point)."""
    from repro.analysis.lint.rules import default_rules

    config = config or LintConfig()
    rules = list(rules) if rules is not None else default_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    ctx = FileContext(path, source, tree, config, module=module)
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for rule in rules:
        if not config.enabled(rule.id) or not rule.applies(ctx):
            continue
        for finding in rule.run(ctx):
            on_line = suppressions.get(finding.line, set())
            if SUPPRESS_ALL in on_line or finding.rule in on_line:
                finding = replace(finding, suppressed=True)
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``*.py`` files, sorted, once."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                q for q in p.rglob("*.py") if "__pycache__" not in q.parts
            )
        elif p.suffix == ".py":
            candidates = [p]
        elif not p.exists():
            raise LintError(f"no such file or directory: {p}")
        else:
            candidates = []
        for q in candidates:
            if q not in seen:
                seen.add(q)
                yield q


@dataclass
class LintReport:
    """The outcome of one ``lint_paths`` run."""

    findings: list[Finding]
    files_checked: int

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def errors(self) -> list[Finding]:
        return [
            f
            for f in self.unsuppressed
            if f.severity is Severity.ERROR
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Lint every python file under ``paths``."""
    findings: list[Finding] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        findings.extend(
            lint_source(source, path=str(path), rules=rules, config=config)
        )
    return LintReport(findings=findings, files_checked=count)


def format_findings(
    report: LintReport, fmt: str = "text", show_suppressed: bool = False
) -> str:
    """Render a report for the CLI (``text`` or ``json``)."""
    shown = [
        f for f in report.findings if show_suppressed or not f.suppressed
    ]
    if fmt == "json":
        return json.dumps(
            {
                "files_checked": report.files_checked,
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "severity": str(f.severity),
                        "message": f.message,
                        "suppressed": f.suppressed,
                    }
                    for f in shown
                ],
                "exit_code": report.exit_code,
            },
            indent=2,
        )
    lines = [f.render() for f in shown]
    n_err = len(report.errors)
    n_sup = sum(1 for f in report.findings if f.suppressed)
    lines.append(
        f"{report.files_checked} files checked: "
        f"{n_err} finding(s), {n_sup} suppressed"
    )
    return "\n".join(lines)
