"""The project-contract rules behind ``repro lint``.

Each rule pins one convention the test suite can only catch *after* it
breaks:

========================  ==============================================
``determinism``           no unseeded / global-state / time-derived RNG
                          in library code — seeds flow from
                          ``SearchParams`` and build options
``async-blocking``        no blocking calls (``time.sleep``, ``open``,
                          sync sockets, direct ``index.search()``)
                          inside ``async def`` bodies
``async-lock-held``       no sync lock held across an ``await``
``spawn-safety``          only module-level functions and picklable
                          spec payloads go to ``ProcessPoolExecutor``
``arena-hygiene``         every ``SharedArena``/``SharedMemory``
                          creation pairs with close/unlink in a
                          ``finally`` or context manager
``mmap-hygiene``          every ``np.memmap``/``mmap.mmap`` acquisition
                          is context-managed, explicitly closed, or
                          ownership-transferred (returned / stored on
                          an owning object)
``kernel-parity``         the accel planner covers every store kind ×
                          metric the engines accept, and the C build
                          keeps ``-ffp-contract=off``
``shim-shape``            ``DeprecationWarning`` only behind the pinned
                          warn-once latch pattern
``unused-symbol``         no unused imports (``__init__`` re-export
                          surfaces exempt)
``typing-complete``       every def in the strict-mypy packages is
                          fully annotated (the local mirror of the CI
                          mypy gate)
========================  ==============================================

Rules are pure AST checks — no imports of the code under analysis, so a
file that cannot even import (missing optional dep) still lints.  The
single exception is ``kernel-parity`` reading
``repro.storage.STORAGE_KINDS`` so the planner's expected coverage can
never drift from what the engines accept.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import FileContext, Rule

__all__ = [
    "ALL_RULES",
    "ArenaHygieneRule",
    "AsyncBlockingRule",
    "AsyncLockHeldRule",
    "DeterminismRule",
    "KernelParityRule",
    "MmapHygieneRule",
    "ShimShapeRule",
    "SpawnSafetyRule",
    "TypingCompleteRule",
    "UnusedSymbolRule",
    "default_rules",
    "rule_by_id",
]


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """Yield descendants of ``node`` without entering nested function
    scopes (``def``/``async def``/``lambda`` bodies run elsewhere —
    e.g. a lambda handed to ``run_in_executor`` is *not* event-loop
    code)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(cur))


def _last_component(name: str | None) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "bytes",
    }
)

_STDLIB_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "seed",
    }
)

_ENTROPY_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "uuid.uuid4",
        "uuid.uuid1",
        "os.urandom",
        "os.getpid",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

_RNG_CONSTRUCTORS = frozenset(
    {"np.random.default_rng", "numpy.random.default_rng", "default_rng"}
)


class DeterminismRule(Rule):
    """Library results must be a pure function of data + explicit seeds.

    The bit-identity guarantees (engine lockstep == scalar reference,
    accel backend == numpy engine, coalesced == solo dispatch) all
    assume traversal randomness flows from ``SearchParams.seed`` and
    build options.  One unseeded ``default_rng()`` or ``np.random.*``
    global call silently breaks every one of them.
    """

    id = "determinism"
    rationale = (
        "unseeded or time-derived RNG breaks the seeded bit-identity "
        "contract; route randomness through SearchParams/build seeds"
    )

    def applies(self, ctx: FileContext) -> bool:
        # Benchmarks, tests and examples may use ambient entropy.
        from pathlib import Path

        parts = Path(ctx.path).parts
        return not any(p in ("tests", "benchmarks", "examples") for p in parts)

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if name in _RNG_CONSTRUCTORS or name in ("random.Random",):
                if not node.args and not node.keywords:
                    yield (
                        node,
                        f"unseeded {name}() in library code; thread an "
                        "explicit seed from SearchParams/build options",
                    )
                else:
                    src = self._entropy_in(node)
                    if src is not None:
                        yield (
                            node,
                            f"{name}() seeded from {src} — a time/entropy-"
                            "derived seed is as nondeterministic as none",
                        )
            elif name == "random.SystemRandom":
                yield (node, "random.SystemRandom is OS entropy — unseedable")
            elif name.startswith(("np.random.", "numpy.random.")):
                if _last_component(name) in _LEGACY_NP_RANDOM:
                    yield (
                        node,
                        f"{name}() uses numpy's global RNG state; use a "
                        "seeded np.random.default_rng(seed) Generator",
                    )
            elif name.startswith("random.") and name.count(".") == 1:
                if _last_component(name) in _STDLIB_RANDOM:
                    yield (
                        node,
                        f"{name}() uses the process-global stdlib RNG; use "
                        "a seeded random.Random(seed) or numpy Generator",
                    )
            elif name in ("uuid.uuid4", "uuid.uuid1", "os.urandom"):
                yield (
                    node,
                    f"{name}() is nondeterministic in library code; derive "
                    "tokens from explicit seeds or caller-provided state",
                )

    @staticmethod
    def _entropy_in(call: ast.Call) -> str | None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    name = _dotted(sub.func)
                    if name in _ENTROPY_SOURCES:
                        return name
        return None


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------

_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.socket",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

_SOCKET_METHODS = frozenset(
    {"recv", "recvfrom", "send", "sendall", "accept", "connect"}
)


class AsyncBlockingRule(Rule):
    """``async def`` bodies must never block the event loop.

    The serving layer's whole latency story is one thread multiplexing
    every client; a single synchronous ``index.search()`` or
    ``time.sleep`` in a handler stalls all of them.  Blocking work
    belongs in an executor (``loop.run_in_executor``) — whose lambda
    payloads run *off* the loop and are deliberately not flagged.
    """

    id = "async-blocking"
    rationale = (
        "a blocking call in an async handler stalls every in-flight "
        "request; dispatch blocking work via loop.run_in_executor"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        for fn in _functions(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_scoped(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = _dotted(node.func)
                if name in _BLOCKING_CALLS:
                    yield (
                        node,
                        f"blocking call {name}() inside async def "
                        f"{fn.name!r}; use asyncio equivalents or "
                        "run_in_executor",
                    )
                elif name == "open":
                    yield (
                        node,
                        f"synchronous file open() inside async def "
                        f"{fn.name!r}; do file I/O in an executor",
                    )
                elif isinstance(node.func, ast.Attribute):
                    recv = _dotted(node.func.value)
                    attr = node.func.attr
                    if attr in _SOCKET_METHODS and "sock" in _last_component(
                        recv
                    ).lower():
                        yield (
                            node,
                            f"synchronous socket op {recv}.{attr}() inside "
                            f"async def {fn.name!r}; use asyncio streams",
                        )
                    elif attr == "search" and (
                        "index" in _last_component(recv).lower()
                        or _last_component(recv).lower() == "idx"
                    ):
                        yield (
                            node,
                            f"direct {recv}.search() inside async def "
                            f"{fn.name!r} runs the CPU-bound traversal on "
                            "the event loop; go through the coalescer or "
                            "an executor",
                        )


# ----------------------------------------------------------------------
# async-lock-held
# ----------------------------------------------------------------------


def _is_lockish(expr: ast.AST) -> bool:
    name = _dotted(expr)
    if name is None and isinstance(expr, ast.Call):
        name = _dotted(expr.func)
    last = _last_component(name).lower()
    return "lock" in last or "mutex" in last


class AsyncLockHeldRule(Rule):
    """No synchronous lock held across an ``await``.

    A ``with self._lock:`` block that awaits inside parks the coroutine
    *while still holding the lock*; any other task (or executor thread)
    that then takes the lock deadlocks the loop.  ``async with`` locks
    are designed for this and pass clean.
    """

    id = "async-lock-held"
    rationale = (
        "awaiting while holding a sync lock parks the coroutine with "
        "the lock taken — release before awaiting, or use asyncio.Lock "
        "with async with"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        for fn in _functions(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_scoped(fn):
                if not isinstance(node, ast.With):
                    continue
                if not any(
                    _is_lockish(item.context_expr) for item in node.items
                ):
                    continue
                for sub in _walk_scoped(node):
                    if isinstance(sub, ast.Await):
                        yield (
                            node,
                            f"sync lock held across await in async def "
                            f"{fn.name!r}; release it first or use "
                            "asyncio.Lock via async with",
                        )
                        break


# ----------------------------------------------------------------------
# spawn-safety
# ----------------------------------------------------------------------


def _is_ppe_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _last_component(_dotted(node.func)) == "ProcessPoolExecutor"
    )


class SpawnSafetyRule(Rule):
    """Only picklable, module-level callables cross the spawn boundary.

    Spawned workers re-import the module and unpickle their payloads:
    lambdas, closures, and function-local ``def``s fail at submit time
    on spawn platforms (and silently "work" under fork until they
    don't).  Payloads travel as spec dicts/dataclasses
    (``metrics/specs.py``), tasks as top-level functions.
    """

    id = "spawn-safety"
    rationale = (
        "lambdas/closures don't pickle across the spawn boundary; "
        "submit module-level functions with spec-typed payloads"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        pool_names: set[str] = set()
        pool_attrs: set[str] = set()
        pool_funcs: set[str] = set()

        # Pass 1: find every binding of a ProcessPoolExecutor — plain
        # names, ``with ... as pool``, ``self.X = ...`` attributes, and
        # methods/functions that return one (directly or via a pool
        # attribute, e.g. the lazy ``_ensure_pool`` pattern).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and _is_ppe_call(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        pool_names.add(tgt.id)
                    elif isinstance(tgt, ast.Attribute):
                        pool_attrs.add(tgt.attr)
            elif isinstance(node, ast.withitem) and _is_ppe_call(
                node.context_expr
            ):
                if isinstance(node.optional_vars, ast.Name):
                    pool_names.add(node.optional_vars.id)
        for fn in _functions(ctx.tree):
            for node in ast.walk(fn):
                if isinstance(node, ast.Return) and node.value is not None:
                    if _is_ppe_call(node.value) or (
                        isinstance(node.value, ast.Attribute)
                        and node.value.attr in pool_attrs
                    ):
                        pool_funcs.add(fn.name)

        def is_pool(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in pool_names
            if isinstance(expr, ast.Attribute):
                return expr.attr in pool_attrs
            if isinstance(expr, ast.Call):
                callee = _last_component(_dotted(expr.func))
                return callee in pool_funcs or callee == "ProcessPoolExecutor"
            return False

        # Pass 2: inspect what gets handed to a pool.
        for fn in _functions(ctx.tree):
            local_defs = {
                sub.name
                for sub in _walk_scoped(fn)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if _is_ppe_call(node):
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            bad = self._unpicklable(kw.value, local_defs)
                            if bad:
                                yield (
                                    kw.value,
                                    f"ProcessPoolExecutor initializer is "
                                    f"{bad}; spawn workers re-import — pass "
                                    "a module-level function",
                                )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and node.args
                    and is_pool(node.func.value)
                ):
                    bad = self._unpicklable(node.args[0], local_defs)
                    if bad:
                        yield (
                            node,
                            f"{node.func.attr}() on a ProcessPoolExecutor "
                            f"with {bad}; it cannot pickle across the "
                            "spawn boundary — use a module-level function "
                            "and a spec payload",
                        )

    @staticmethod
    def _unpicklable(expr: ast.AST, local_defs: set[str]) -> str | None:
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.Name) and expr.id in local_defs:
            return f"the function-local def {expr.id!r}"
        if isinstance(expr, ast.Call):
            callee = _last_component(_dotted(expr.func))
            if callee == "partial" and expr.args:
                return SpawnSafetyRule._unpicklable(expr.args[0], local_defs)
        return None


# ----------------------------------------------------------------------
# arena-hygiene
# ----------------------------------------------------------------------

_ARENA_CREATORS = frozenset(
    {"SharedArena.create", "SharedArena", "SharedMemory", "AttachedArena", "attach"}
)


def _is_arena_creation(node: ast.Call) -> str | None:
    name = _dotted(node.func)
    if name is None:
        return None
    if name in _ARENA_CREATORS:
        return name
    tail2 = ".".join(name.split(".")[-2:])
    if tail2 in ("SharedArena.create", "shared_memory.SharedMemory", "arena.attach"):
        return tail2
    return None


class ArenaHygieneRule(Rule):
    """Every shared-memory block must have a visible release path.

    A ``SharedMemory`` segment outlives the process that leaks it — on
    Linux it sits in ``/dev/shm`` until reboot.  So every creation or
    attachment must be (a) a context manager, (b) immediately returned
    (ownership transferred to the caller), (c) stored on an attribute
    (owned by an object with its own ``close()``), or (d) bound to a
    local released in a ``finally``.  Anything else is a leak on the
    first exception.
    """

    id = "arena-hygiene"
    rationale = (
        "an unreleased SharedMemory segment leaks /dev/shm until "
        "reboot; pair every create/attach with close/unlink in a "
        "finally or with-block"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        def enclosing_function(node: ast.AST) -> ast.AST | None:
            cur = parents.get(node)
            while cur is not None:
                if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return cur
                cur = parents.get(cur)
            return None

        def under_with(node: ast.AST) -> bool:
            cur, prev = parents.get(node), node
            while cur is not None:
                if isinstance(cur, ast.withitem) and cur.context_expr is prev:
                    return True
                prev, cur = cur, parents.get(cur)
            return False

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = _is_arena_creation(node)
            if what is None:
                continue
            if under_with(node):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Return):
                continue  # ownership transferred to the caller
            if isinstance(parent, ast.Assign) and all(
                isinstance(t, ast.Attribute) for t in parent.targets
            ):
                continue  # owned by the object; its close() releases
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                tgt = parent.targets[0]
                if isinstance(tgt, ast.Name):
                    fn = enclosing_function(node)
                    if fn is not None and self._released_in_finally(
                        fn, tgt.id
                    ):
                        continue
            yield (
                node,
                f"{what}(...) has no paired close/unlink in a finally or "
                "context manager — the segment leaks on the first "
                "exception",
            )

    @staticmethod
    def _released_in_finally(fn: ast.AST, name: str) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and _dotted(sub.func) in (
                        f"{name}.close",
                        f"{name}.unlink",
                    ):
                        return True
        return False


# ----------------------------------------------------------------------
# mmap-hygiene
# ----------------------------------------------------------------------

_MMAP_CREATORS = frozenset({"np.memmap", "numpy.memmap", "memmap", "mmap.mmap"})


def _is_mmap_creation(node: ast.Call) -> str | None:
    name = _dotted(node.func)
    if name is None:
        return None
    if name in _MMAP_CREATORS:
        return name
    tail2 = ".".join(name.split(".")[-2:])
    if tail2 in ("np.memmap", "numpy.memmap", "mmap.mmap"):
        return tail2
    return None


class MmapHygieneRule(Rule):
    """Every memory mapping must have a visible owner or release path.

    The file-descriptor/mapping behind ``np.memmap`` (and a raw
    ``mmap.mmap``) lives until the object is collected — an anonymous
    mapping built mid-expression and dropped on an exception keeps the
    fd pinned, and on Windows keeps the file locked.  Mirror of
    ``arena-hygiene``, with ownership transfer broadened to match how
    the v5 disk tier threads mappings around: a creation must be
    (a) a context manager, (b) part of a ``return`` expression
    (ownership leaves with the value — the adopting dataset / store /
    graph holds the mapping for its lifetime), (c) stored on an
    attribute (owned by an object with its own lifecycle), or (d) bound
    to a local that is closed in a ``finally``.
    """

    id = "mmap-hygiene"
    rationale = (
        "an unowned memory mapping pins its file descriptor until GC; "
        "context-manage it, return it (ownership transfer), store it "
        "on an owning object, or close it in a finally"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        def enclosing_function(node: ast.AST) -> ast.AST | None:
            cur = parents.get(node)
            while cur is not None:
                if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return cur
                cur = parents.get(cur)
            return None

        def under_with(node: ast.AST) -> bool:
            cur, prev = parents.get(node), node
            while cur is not None:
                if isinstance(cur, ast.withitem) and cur.context_expr is prev:
                    return True
                prev, cur = cur, parents.get(cur)
            return False

        def enclosing_statement(node: ast.AST) -> ast.AST | None:
            cur = node
            while cur is not None and not isinstance(cur, ast.stmt):
                cur = parents.get(cur)
            return cur

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = _is_mmap_creation(node)
            if what is None:
                continue
            if under_with(node):
                continue
            stmt = enclosing_statement(node)
            if isinstance(stmt, ast.Return):
                continue  # ownership transferred with the return value
            if isinstance(stmt, ast.Assign) and all(
                isinstance(t, ast.Attribute) for t in stmt.targets
            ):
                continue  # owned by the object; released with it
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.value is node
            ):
                fn = enclosing_function(node)
                if fn is not None and self._closed_in_finally(
                    fn, stmt.targets[0].id
                ):
                    continue
            yield (
                node,
                f"{what}(...) is neither context-managed, returned, "
                "stored on an owning object, nor closed in a finally — "
                "the mapping (and its fd) leaks until GC on the first "
                "exception",
            )

    @staticmethod
    def _closed_in_finally(fn: ast.AST, name: str) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and _dotted(sub.func) in (
                        f"{name}.close",
                        f"{name}._mmap.close",
                    ):
                        return True
        return False


# ----------------------------------------------------------------------
# kernel-parity
# ----------------------------------------------------------------------

_REQUIRED_METRICS = ("EuclideanMetric", "ChebyshevMetric")
_REQUIRED_CFLAG = "-ffp-contract=off"

# The compiled construction path: wave location classifies its workload
# through ``_plan`` (inheriting the full store-kind x metric table);
# the prune/commit kernels run over raw float64 coordinates and must
# route metrics through ``_coord_kind`` (both coordinate metrics plus
# the explicit unsupported-metric error).
_CONSTRUCTION_ENTRY_POINTS = (
    ("run_construction", "_plan"),
    ("run_robust_prune", "_coord_kind"),
    ("run_commit_wave", "_coord_kind"),
)


def _expected_store_kinds() -> tuple[str, ...]:
    try:
        from repro.storage import STORAGE_KINDS

        return tuple(STORAGE_KINDS)
    except Exception:  # pragma: no cover - only outside the package
        return ("flat", "sq8", "pq")


class KernelParityRule(Rule):
    """The accel planner must cover what the engines accept.

    ``accel/dispatch.py`` routes (store kind × metric) workloads to
    compiled kernels; a kind the engines accept but ``_plan`` does not
    handle silently falls back (or worse, raises) the day someone adds
    a store.  The *construction* entry points must stay on the same
    table: wave location through ``_plan`` (every store kind × both
    coordinate metrics), prune/commit through ``_coord_kind`` (both
    coordinate metrics over the raw float64 points).  And the cffi
    build must keep ``-ffp-contract=off`` — fused multiply-adds change
    float results and break the backend bit-identity gate.
    """

    id = "kernel-parity"
    rationale = (
        "the dispatch table must stay in lockstep with the store kinds "
        "and metrics the numpy engines accept, and compiled kernels "
        "must keep -ffp-contract=off for bit-identity"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        plan_fn = None
        cflags_node: ast.Assign | None = None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_plan":
                plan_fn = node
            elif isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_CFLAGS"
                for t in node.targets
            ):
                cflags_node = node

        if plan_fn is not None:
            handled: set[str] = set()
            for node in ast.walk(plan_fn):
                if not isinstance(node, ast.Compare):
                    continue
                names = {_last_component(_dotted(node.left))} | {
                    _last_component(_dotted(c)) for c in node.comparators
                }
                if not any("kind" in n for n in names if n):
                    continue
                for side in [node.left] + list(node.comparators):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, str
                    ):
                        handled.add(side.value)
            for kind in _expected_store_kinds():
                if kind not in handled:
                    yield (
                        plan_fn,
                        f"_plan() does not handle store kind {kind!r}, "
                        "which the engines accept (repro.storage."
                        "STORAGE_KINDS) — extend the workload table",
                    )
            checked: set[str] = set()
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Call)
                    and _dotted(node.func) == "isinstance"
                    and len(node.args) == 2
                ):
                    checked.add(_last_component(_dotted(node.args[1])))
            for metric in _REQUIRED_METRICS:
                if metric not in checked:
                    yield (
                        plan_fn,
                        f"the planner never dispatches on {metric}; every "
                        "coordinate metric the engines accept needs a "
                        "kernel route (or an explicit unsupported branch)",
                    )
            yield from self._check_construction(ctx, plan_fn)

        if cflags_node is not None:
            flags = {
                sub.value
                for sub in ast.walk(cflags_node.value)
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
            }
            if _REQUIRED_CFLAG not in flags:
                yield (
                    cflags_node,
                    f"_CFLAGS is missing {_REQUIRED_CFLAG!r}; without it "
                    "the C backend fuses multiply-adds and loses bit-"
                    "identity with the numpy engines",
                )

    @staticmethod
    def _check_construction(
        ctx: FileContext, plan_fn: ast.FunctionDef
    ) -> Iterator[tuple[ast.AST | int, str]]:
        """The construction workloads ride the same dispatch table.

        A dispatch module (identified by its ``_plan``) must define all
        three construction entry points, and each must route through
        its workload classifier — otherwise a store kind or metric the
        search path covers silently loses its compiled build path.
        """
        fns = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.FunctionDef)
        }
        for name, router in _CONSTRUCTION_ENTRY_POINTS:
            fn = fns.get(name)
            if fn is None:
                yield (
                    plan_fn,
                    f"the dispatch module defines no {name}(); the "
                    "construction path must cover the same store kinds "
                    "and coordinate metrics as search — add the entry "
                    f"point and classify its workload via {router}()",
                )
                continue
            called = {
                _last_component(_dotted(sub.func))
                for sub in ast.walk(fn)
                if isinstance(sub, ast.Call)
            }
            if router not in called:
                yield (
                    fn,
                    f"{name}() never classifies its workload through "
                    f"{router}(); construction coverage of every store "
                    "kind (repro.storage.STORAGE_KINDS) and both "
                    "coordinate metrics rides that table — route "
                    "through it (or raise UnsupportedWorkloadError "
                    "there)",
                )


# ----------------------------------------------------------------------
# shim-shape
# ----------------------------------------------------------------------


def _mentions_deprecation(call: ast.Call) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if (
                _last_component(_dotted(sub)) == "DeprecationWarning"
            ):
                return True
    return False


def _latchish(node: ast.AST) -> str | None:
    name = _last_component(_dotted(node))
    return name if "warned" in name.lower() else None


class ShimShapeRule(Rule):
    """Legacy delegates follow the pinned warn-once pattern.

    Every ``DeprecationWarning`` must sit behind a module-level latch
    (``_DEPRECATION_WARNED`` set membership, or a ``_*_WARNED`` boolean
    flipped after the first warn) so a hot loop over a legacy shim warns
    once, not once per call — the shape ``core/index.py`` and
    ``baselines/vamana.py`` pin down.
    """

    id = "shim-shape"
    rationale = (
        "deprecation shims must warn once via a _*WARNED latch; "
        "per-call warnings flood hot loops and break warn-once tests"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if _last_component(name) != "warn" or not _mentions_deprecation(
                node
            ):
                continue
            fn: ast.AST | None = parents.get(node)
            while fn is not None and not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                fn = parents.get(fn)
            if fn is None:
                yield (
                    node,
                    "module-level DeprecationWarning fires on import; wrap "
                    "it in a warn-once delegate (module __getattr__ with a "
                    "_*WARNED latch)",
                )
                continue
            has_guard = any(
                isinstance(sub, ast.If)
                and any(_latchish(s) for s in ast.walk(sub.test))
                for sub in ast.walk(fn)
            )
            has_latch_write = False
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Assign) and any(
                    _latchish(t) for t in sub.targets
                ):
                    has_latch_write = True
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "add"
                    and _latchish(sub.func.value)
                ):
                    has_latch_write = True
            if not (has_guard and has_latch_write):
                yield (
                    node,
                    "DeprecationWarning without the warn-once latch "
                    "pattern; guard with a _*WARNED set/boolean checked "
                    "before and written after the warn (see "
                    "core/index.py:_warn_deprecated)",
                )


# ----------------------------------------------------------------------
# unused-symbol
# ----------------------------------------------------------------------


class UnusedSymbolRule(Rule):
    """No unused imports outside ``__init__`` re-export surfaces."""

    id = "unused-symbol"
    rationale = (
        "unused imports are dead weight and hide real dependencies; "
        "__init__.py re-export surfaces are exempt"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_init

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        bindings: list[tuple[str, ast.AST, str]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    bindings.append((bound, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.asname == alias.name:
                        continue  # ``import x as x``: explicit re-export
                    bound = alias.asname or alias.name
                    bindings.append((bound, node, alias.name))
        if not bindings:
            return

        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
        # ``__all__`` strings and quoted forward references in
        # annotations count as uses.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                        for sub in ast.walk(node.value):
                            if isinstance(sub, ast.Constant) and isinstance(
                                sub.value, str
                            ):
                                used.add(sub.value.split(".")[0])
        for ann in self._annotations(ctx.tree):
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                try:
                    parsed = ast.parse(ann.value, mode="eval")
                except SyntaxError:
                    continue
                for sub in ast.walk(parsed):
                    if isinstance(sub, ast.Name):
                        used.add(sub.id)

        for bound, node, target in bindings:
            if bound not in used:
                yield (
                    node,
                    f"imported name {bound!r} (from {target!r}) is unused",
                )

    @staticmethod
    def _annotations(tree: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                yield node.annotation
            elif isinstance(node, ast.arg) and node.annotation is not None:
                yield node.annotation
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.returns is not None
            ):
                yield node.returns
            # Quoted names can nest inside subscripted annotations too.
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                yield node


# ----------------------------------------------------------------------
# typing-complete
# ----------------------------------------------------------------------


class TypingCompleteRule(Rule):
    """Every def in the strict-mypy packages is fully annotated.

    This is the locally runnable mirror of the CI mypy gate
    (``disallow_untyped_defs``/``disallow_incomplete_defs`` on
    ``core/``, ``storage/``, ``serve/``, ``analysis/``): it cannot
    type-check bodies, but it guarantees no unannotated signature lands
    even on machines without mypy installed.
    """

    id = "typing-complete"
    rationale = (
        "core/storage/serve/analysis are under the strict mypy gate; "
        "unannotated defs fail CI — annotate parameters and returns"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_typed_packages()

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST | int, str]]:
        for fn in _functions(ctx.tree):
            args = fn.args
            missing = [
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if fn.returns is None:
                missing.append("return")
            if missing:
                yield (
                    fn,
                    f"def {fn.name} is missing annotations for "
                    f"{', '.join(missing)} (strict mypy gate)",
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    AsyncBlockingRule,
    AsyncLockHeldRule,
    SpawnSafetyRule,
    ArenaHygieneRule,
    MmapHygieneRule,
    KernelParityRule,
    ShimShapeRule,
    UnusedSymbolRule,
    TypingCompleteRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]


def rule_by_id(rule_id: str) -> Rule:
    for cls in ALL_RULES:
        if cls.id == rule_id:
            return cls()
    known = sorted(cls.id for cls in ALL_RULES)
    raise KeyError(f"unknown rule id {rule_id!r}; known rules: {known}")
