"""Side-by-side theory/practice accounting for a built graph.

Given a :class:`~repro.graphs.gnet.GNetBuildResult` (or merged result),
compute the paper's explicit bounds with all constants (Fact 2.3's
``(8A)^lambda`` packing, equation (4)'s phi, the h+1 level count) and
report the measured counterparts plus the implied constant-factor gap.
Benches and examples use this to answer "how loose are the constants?"
quantitatively rather than rhetorically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.gnet import GNetBuildResult

__all__ = ["TheoryReport", "gnet_theory_report"]


@dataclass(frozen=True)
class TheoryReport:
    """Measured vs bound for one built G_net."""

    n: int
    height: int
    phi: float
    doubling_dimension: float
    edges_measured: int
    edges_bound: float
    max_degree_measured: int
    max_degree_bound: float
    per_level_sizes: tuple[int, ...]
    per_level_edges: tuple[int, ...]

    @property
    def edge_slack(self) -> float:
        """bound / measured — how much headroom the analysis leaves."""
        return self.edges_bound / max(self.edges_measured, 1)

    @property
    def degree_slack(self) -> float:
        return self.max_degree_bound / max(self.max_degree_measured, 1)

    def rows(self) -> list[list]:
        """Table rows (quantity, measured, bound, slack) for reports."""
        return [
            ["edges", self.edges_measured, round(self.edges_bound, 1),
             round(self.edge_slack, 1)],
            ["max out-degree", self.max_degree_measured,
             round(self.max_degree_bound, 1), round(self.degree_slack, 1)],
        ]


def gnet_theory_report(
    result: GNetBuildResult, doubling_dimension: float
) -> TheoryReport:
    """Instantiate the Section 2.3 size analysis with explicit constants.

    The degree bound per level is Fact 2.3 applied to the level's
    out-neighborhood (aspect ratio <= 2 phi): ``(16 phi)^lambda``; total
    degree multiplies by ``h + 1`` levels; total edges multiply by ``n``.
    """
    params = result.params
    per_level = params.per_level_degree_bound(doubling_dimension)
    degree_bound = (params.height + 1) * per_level
    n = result.graph.n
    return TheoryReport(
        n=n,
        height=params.height,
        phi=params.phi,
        doubling_dimension=doubling_dimension,
        edges_measured=result.graph.num_edges,
        edges_bound=n * degree_bound,
        max_degree_measured=result.graph.max_out_degree(),
        max_degree_bound=degree_bound,
        per_level_sizes=tuple(result.level_sizes),
        per_level_edges=tuple(result.level_edge_counts),
    )
