"""Greedy-trace introspection: turn a hop sequence into the quantities
the paper's analysis tracks.

For each hop vertex ``p`` of a greedy run the Section 2.3 argument
watches two numbers: ``D(p, q)`` (strictly decreasing by construction)
and ``ceil(log2 D(p, p*))`` (strictly decreasing while ``p`` is not yet
a (1+eps)-ANN — the log-drop of Lemma 2.2).  :func:`trace_report`
computes both per hop, flags where the ANN threshold was first crossed,
and renders a compact text view used by examples and debugging sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import greedy
from repro.metrics.base import Dataset

__all__ = ["HopRecord", "TraceReport", "trace_report"]


@dataclass(frozen=True)
class HopRecord:
    """One hop of a greedy run, annotated with the analysis quantities."""

    hop: int
    vertex: int
    distance_to_query: float
    distance_to_nn: float
    log_scale: float  # ceil(log2 D(p, p*)), -inf at p* itself
    is_ann: bool


@dataclass(frozen=True)
class TraceReport:
    """Annotated greedy run."""

    records: tuple[HopRecord, ...]
    epsilon: float
    nn_vertex: int
    nn_distance: float
    first_ann_hop: int | None
    distance_evals: int

    @property
    def hops(self) -> int:
        return len(self.records)

    def log_drops_strict(self) -> bool:
        """Lemma 2.2's guarantee, evaluated on this run: the log scale
        strictly decreases across consecutive *non-ANN* hops."""
        scales = [r.log_scale for r in self.records if not r.is_ann]
        return all(a > b for a, b in zip(scales, scales[1:]))

    def render(self, width: int = 40) -> str:
        """Compact text view: one line per hop, a bar for D(p, q)."""
        if not self.records:
            return "(empty trace)"
        top = self.records[0].distance_to_query or 1.0
        lines = [
            f"greedy trace: {self.hops} hops, {self.distance_evals} distance "
            f"evals, NN = vertex {self.nn_vertex} @ {self.nn_distance:.4g}"
        ]
        for r in self.records:
            bar = "#" * max(1, int(width * r.distance_to_query / top))
            mark = " <- (1+eps)-ANN" if r.hop == self.first_ann_hop else ""
            scale = "-inf" if r.log_scale == -math.inf else f"{r.log_scale:.0f}"
            lines.append(
                f"  hop {r.hop:3d}  v={r.vertex:5d}  D(p,q)={r.distance_to_query:10.4g}"
                f"  ceil(lg D(p,p*))={scale:>5s}  |{bar}{mark}"
            )
        return "\n".join(lines)


def trace_report(
    graph: ProximityGraph,
    dataset: Dataset,
    p_start: int,
    q: Any,
    epsilon: float,
    budget: int | None = None,
) -> TraceReport:
    """Run greedy and annotate every hop with the analysis quantities."""
    result = greedy(graph, dataset, p_start, q, budget=budget)
    dists = dataset.distances_to_query_all(q)
    nn_vertex = int(np.argmin(dists))
    nn_distance = float(dists[nn_vertex])
    threshold = (1.0 + epsilon) * nn_distance * (1.0 + 1e-12)

    records = []
    first_ann = None
    for k, p in enumerate(result.hops):
        d_q = float(dists[p])
        d_star = dataset.distance(p, nn_vertex)
        log_scale = math.ceil(math.log2(d_star)) if d_star > 0 else -math.inf
        is_ann = d_q <= threshold
        if is_ann and first_ann is None:
            first_ann = k
        records.append(
            HopRecord(
                hop=k,
                vertex=int(p),
                distance_to_query=d_q,
                distance_to_nn=d_star,
                log_scale=log_scale,
                is_ann=is_ann,
            )
        )
    return TraceReport(
        records=tuple(records),
        epsilon=epsilon,
        nn_vertex=nn_vertex,
        nn_distance=nn_distance,
        first_ann_hop=first_ann,
        distance_evals=result.distance_evals,
    )
