"""Dynamic nearest-neighbor substrates: the contract required by the
Section 2.4 build loop plus three implementations (cover tree, hash grid,
brute force)."""

from repro.anns.base import DynamicANN
from repro.anns.bruteforce import BruteForceANN
from repro.anns.cover_tree import CoverTree
from repro.anns.grid import GridANN

__all__ = ["BruteForceANN", "CoverTree", "DynamicANN", "GridANN"]
