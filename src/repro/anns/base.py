"""Contract for the dynamic ANN structure ``T`` used by the Section 2.4
build algorithm.

The build loop needs, per level, a structure over the current net ``Y_i``
supporting (i) 2-ANN queries from an arbitrary data point, (ii) deletion,
and (iii) re-insertion (the paper's ``t_qry``/``t_upd`` costs).  The paper
plugs in Cole & Gottlieb's structure; we provide a dynamic cover tree and
a brute-force oracle behind this shared interface.

All structures index *dataset point ids*; distances always flow through
the dataset's metric so a :class:`~repro.metrics.counting.CountingMetric`
wrapper observes every evaluation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

import numpy as np

from repro.metrics.base import Dataset

__all__ = ["DynamicANN"]


class DynamicANN(ABC):
    """Dynamic nearest-neighbor structure over a subset of dataset ids."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    # -- updates ---------------------------------------------------------

    @abstractmethod
    def insert(self, point_id: int) -> None:
        """Add data point ``point_id`` to the structure."""

    @abstractmethod
    def delete(self, point_id: int) -> None:
        """Remove data point ``point_id`` from the structure."""

    def insert_many(self, point_ids: Iterable[int]) -> None:
        for pid in point_ids:
            self.insert(int(pid))

    # -- queries ---------------------------------------------------------

    @abstractmethod
    def nearest(self, query: Any) -> tuple[int, float] | None:
        """Exact nearest stored point to ``query`` (a raw metric point),
        or ``None`` when empty.  An exact NN is in particular a valid
        2-ANN, the contract Section 2.4 requires."""

    @abstractmethod
    def knn(self, query: Any, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest stored points to ``query``, ascending."""

    @abstractmethod
    def range_search(self, query: Any, radius: float) -> list[tuple[int, float]]:
        """All stored points within ``radius`` of ``query``."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of (live) stored points."""

    # -- id-based conveniences --------------------------------------------

    def nearest_to_id(self, point_id: int) -> tuple[int, float] | None:
        """Nearest stored point to the data point ``point_id``; the stored
        copy of ``point_id`` itself (distance 0) is a legal answer, so
        callers that want a *neighbor* should delete first (as the
        Section 2.4 loop does) or use :meth:`knn`."""
        return self.nearest(self.dataset.points[int(point_id)])

    def second_nearest_to_id(self, point_id: int) -> tuple[int, float] | None:
        """Nearest stored point other than ``point_id`` itself — what the
        Section 2.4 remark's ``d_min`` estimation queries."""
        for cand, dist in self.knn(self.dataset.points[int(point_id)], 2):
            if cand != int(point_id):
                return cand, dist
        return None

    @staticmethod
    def _as_sorted(pairs: list[tuple[int, float]]) -> list[tuple[int, float]]:
        return sorted(pairs, key=lambda t: (t[1], t[0]))

    @staticmethod
    def _ids_array(pairs: list[tuple[int, float]]) -> np.ndarray:
        return np.array([p for p, _ in pairs], dtype=np.intp)
