"""Brute-force dynamic NN structure.

Exact by construction; serves as (i) the correctness oracle for the cover
tree in tests, and (ii) a perfectly valid (if slow) plug-in for the
Section 2.4 build loop on small inputs — the build algorithm's output is
independent of which conforming structure is used.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.anns.base import DynamicANN
from repro.metrics.base import Dataset

__all__ = ["BruteForceANN"]


class BruteForceANN(DynamicANN):
    """Linear-scan implementation of :class:`DynamicANN`."""

    def __init__(self, dataset: Dataset, point_ids: Any = ()):
        super().__init__(dataset)
        self._live: set[int] = set()
        self.insert_many(point_ids)

    def insert(self, point_id: int) -> None:
        point_id = int(point_id)
        if not 0 <= point_id < self.dataset.n:
            raise ValueError(f"point id {point_id} out of range")
        self._live.add(point_id)

    def delete(self, point_id: int) -> None:
        self._live.remove(int(point_id))

    def _scan(self, query: Any) -> tuple[np.ndarray, np.ndarray]:
        ids = np.fromiter(self._live, dtype=np.intp, count=len(self._live))
        if len(ids) == 0:
            return ids, np.empty(0)
        dists = self.dataset.distances_to_query(query, ids)
        return ids, dists

    def nearest(self, query: Any) -> tuple[int, float] | None:
        ids, dists = self._scan(query)
        if len(ids) == 0:
            return None
        j = int(np.argmin(dists))
        return int(ids[j]), float(dists[j])

    def knn(self, query: Any, k: int) -> list[tuple[int, float]]:
        ids, dists = self._scan(query)
        if len(ids) == 0:
            return []
        take = min(int(k), len(ids))
        sel = np.argsort(dists, kind="stable")[:take]
        return self._as_sorted([(int(ids[j]), float(dists[j])) for j in sel])

    def range_search(self, query: Any, radius: float) -> list[tuple[int, float]]:
        ids, dists = self._scan(query)
        hit = dists <= radius
        return self._as_sorted(
            [(int(i), float(d)) for i, d in zip(ids[hit], dists[hit])]
        )

    def __len__(self) -> int:
        return len(self._live)
