"""Dynamic cover tree — our stand-in for the Cole–Gottlieb structure [20].

The Section 2.4 build algorithm needs a fully dynamic structure ``T`` over
the current net ``Y_i`` answering 2-ANN queries with insertions and
deletions (``t_qry``, ``t_upd``).  Cover trees (Beygelzimer, Kakade &
Langford) provide exactly that contract on bounded-doubling metrics; see
DESIGN.md §5 for the substitution rationale.

Representation (implicit/nested form)
-------------------------------------
``C_i`` denotes the node set at level ``i``; a point with *top level*
``t`` belongs to every ``C_i`` with ``i <= t`` (implicit self-children).
Invariants:

* **covering** — an explicit child at level ``j`` is within ``2^(j+1)`` of
  its parent (which belongs to ``C_(j+1)``);
* **separation** — points of ``C_i`` are pairwise ``> 2^i`` apart;
* consequently the *subtree radius* of a node regarded at level ``j`` is
  at most ``2^j + 2^(j-1) + ... = 2^(j+1)``, the bound all query pruning
  uses.  Query **exactness** only needs the covering invariant, so it is
  robust even where separation analysis gets delicate.

Deletions are handled by *tombstoning*: a deleted point stays in the tree
as a routing node (all invariants keep holding) but is never reported; the
tree is rebuilt from live points whenever tombstones outnumber them.  The
Section 2.4 loop deletes points only to immediately re-insert them, which
this makes O(1).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.anns.base import DynamicANN
from repro.metrics.base import Dataset

__all__ = ["CoverTree"]


class CoverTree(DynamicANN):
    """Dynamic cover tree over dataset point ids."""

    def __init__(self, dataset: Dataset, point_ids: Any = ()):
        super().__init__(dataset)
        self.root: int | None = None
        self.root_level: int = 0
        self.min_level: int = 0
        # (parent_id, child_level) -> list of explicit child ids.
        self._children: dict[tuple[int, int], list[int]] = {}
        self._top_level: dict[int, int] = {}
        self._dead: set[int] = set()
        self.insert_many(point_ids)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point_id: int) -> None:
        point_id = int(point_id)
        if not 0 <= point_id < self.dataset.n:
            raise ValueError(f"point id {point_id} out of range")
        if point_id in self._dead:
            # Cheap resurrection: the tombstoned routing node is already a
            # correctly-placed copy of this exact point.
            self._dead.remove(point_id)
            return
        if point_id in self._top_level:
            raise ValueError(f"point {point_id} already stored")

        if self.root is None:
            self.root = point_id
            self.root_level = 0
            self.min_level = 0
            self._top_level[point_id] = 0
            return

        d_root = self.dataset.distance(point_id, self.root)
        if d_root == 0.0:
            raise ValueError(
                f"point {point_id} duplicates stored point {self.root}"
            )
        # Grow the root's level until it covers the new point.
        while d_root > float(2**self.root_level):
            self.root_level += 1
            self._top_level[self.root] = self.root_level

        # Descend, collecting frames for the unwind phase.
        frames: list[tuple[np.ndarray, np.ndarray, int]] = []
        level = self.root_level
        q_ids = np.array([self.root], dtype=np.intp)
        q_dists = np.array([d_root])
        while True:
            frames.append((q_ids, q_dists, level))
            cand = self._children_with_self(q_ids, level - 1)
            dists = self.dataset.distances_from_index(point_id, cand)
            if float(dists.min()) == 0.0:
                dup = int(cand[int(np.argmin(dists))])
                raise ValueError(f"point {point_id} duplicates stored point {dup}")
            if float(dists.min()) > float(2 ** level):
                break
            keep = dists <= float(2**level)
            q_ids, q_dists = cand[keep], dists[keep]
            level -= 1

        # Unwind from the deepest frame: attach to any covering node.
        for q_ids, q_dists, lvl in reversed(frames):
            j = int(np.argmin(q_dists))
            if float(q_dists[j]) <= float(2**lvl):
                self._attach(int(q_ids[j]), point_id, lvl - 1)
                return
        raise AssertionError("unreachable: root level was grown to cover the point")

    def _attach(self, parent: int, child: int, child_level: int) -> None:
        self._children.setdefault((parent, child_level), []).append(child)
        self._top_level[child] = child_level
        self.min_level = min(self.min_level, child_level)

    def delete(self, point_id: int) -> None:
        point_id = int(point_id)
        if point_id not in self._top_level or point_id in self._dead:
            raise KeyError(f"point {point_id} is not stored")
        self._dead.add(point_id)
        if len(self._dead) > len(self._top_level) - len(self._dead):
            self.rebuild()

    def rebuild(self) -> None:
        """Rebuild the tree from live points, dropping all tombstones."""
        live = [p for p in self._top_level if p not in self._dead]
        self.root = None
        self.root_level = 0
        self.min_level = 0
        self._children.clear()
        self._top_level.clear()
        self._dead.clear()
        self.insert_many(live)

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------

    def _children_with_self(self, q_ids: np.ndarray, child_level: int) -> np.ndarray:
        """Nodes of ``C_child_level`` reachable from ``q_ids``: the nodes
        themselves (implicit self-children) plus explicit children."""
        out: list[int] = list(map(int, q_ids))
        for q in out[: len(q_ids)]:
            out.extend(self._children.get((q, child_level), ()))
        return np.array(out, dtype=np.intp)

    def _is_live(self, ids: np.ndarray) -> np.ndarray:
        if not self._dead:
            return np.ones(len(ids), dtype=bool)
        return np.array([int(i) not in self._dead for i in ids], dtype=bool)

    # ------------------------------------------------------------------
    # Queries (exact; rely only on the covering invariant)
    # ------------------------------------------------------------------

    def nearest(self, query: Any) -> tuple[int, float] | None:
        if len(self) == 0:
            return None
        best_id, best_d = -1, math.inf
        q_ids = np.array([self.root], dtype=np.intp)
        dists = self.dataset.distances_to_query(query, q_ids)
        if self.root not in self._dead:
            best_id, best_d = int(self.root), float(dists[0])
        level = self.root_level
        while level > self.min_level and len(q_ids) > 0:
            cand = self._children_with_self(q_ids, level - 1)
            dists = self.dataset.distances_to_query(query, cand)
            live = self._is_live(cand)
            if live.any():
                masked = np.where(live, dists, np.inf)
                j = int(np.argmin(masked))
                if float(masked[j]) < best_d:
                    best_id, best_d = int(cand[j]), float(masked[j])
            # Subtree radius at level - 1 is 2^level.
            keep = dists <= best_d + float(2**level)
            q_ids = cand[keep]
            level -= 1
        return (best_id, best_d) if best_id >= 0 else None

    def knn(self, query: Any, k: int) -> list[tuple[int, float]]:
        k = int(k)
        if k <= 0 or len(self) == 0:
            return []
        found: list[tuple[float, int]] = []  # (dist, id), kept sorted, <= k long
        offered: set[int] = set()  # implicit self-children recur per level

        def offer(ids: np.ndarray, dists: np.ndarray) -> None:
            live = self._is_live(ids)
            for i, d in zip(ids[live], dists[live]):
                if int(i) not in offered:
                    offered.add(int(i))
                    found.append((float(d), int(i)))
            found.sort()
            del found[k:]

        def kth_bound() -> float:
            return found[-1][0] if len(found) == k else math.inf

        q_ids = np.array([self.root], dtype=np.intp)
        dists = self.dataset.distances_to_query(query, q_ids)
        offer(q_ids, dists)
        level = self.root_level
        while level > self.min_level and len(q_ids) > 0:
            cand = self._children_with_self(q_ids, level - 1)
            dists = self.dataset.distances_to_query(query, cand)
            offer(cand, dists)
            keep = dists <= kth_bound() + float(2**level)
            q_ids = cand[keep]
            level -= 1
        return [(i, d) for d, i in found]

    def range_search(self, query: Any, radius: float) -> list[tuple[int, float]]:
        if len(self) == 0:
            return []
        hits: list[tuple[int, float]] = []
        q_ids = np.array([self.root], dtype=np.intp)
        dists = self.dataset.distances_to_query(query, q_ids)
        if self.root not in self._dead and float(dists[0]) <= radius:
            hits.append((int(self.root), float(dists[0])))
        level = self.root_level
        while level > self.min_level and len(q_ids) > 0:
            cand = self._children_with_self(q_ids, level - 1)
            dists = self.dataset.distances_to_query(query, cand)
            live = self._is_live(cand)
            close = dists <= radius
            hits.extend(
                (int(i), float(d)) for i, d in zip(cand[live & close], dists[live & close])
            )
            keep = dists <= radius + float(2**level)
            q_ids = cand[keep]
            level -= 1
        # The loop re-reports implicit self-children once per level; dedup.
        seen: set[int] = set()
        unique = []
        for i, d in hits:
            if i not in seen:
                seen.add(i)
                unique.append((i, d))
        return self._as_sorted(unique)

    def __len__(self) -> int:
        return len(self._top_level) - len(self._dead)

    # ------------------------------------------------------------------
    # Validation (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural invariant violation.

        Quadratic in stored points; intended for tests.
        """
        if self.root is None:
            if self._top_level:
                raise AssertionError("rootless tree with stored points")
            return
        for (parent, child_level), kids in self._children.items():
            if self._top_level[parent] < child_level + 1:
                raise AssertionError(
                    f"parent {parent} not present at level {child_level + 1}"
                )
            for c in kids:
                if self._top_level[c] != child_level:
                    raise AssertionError(
                        f"child {c} top level {self._top_level[c]} != {child_level}"
                    )
                d = self.dataset.distance(parent, c)
                if d > float(2 ** (child_level + 1)):
                    raise AssertionError(
                        f"covering violated: D({parent},{c})={d} at level {child_level}"
                    )
        by_level: dict[int, list[int]] = {}
        for p, t in self._top_level.items():
            for lvl in range(self.min_level, t + 1):
                by_level.setdefault(lvl, []).append(p)
        for lvl, members in by_level.items():
            arr = np.array(members, dtype=np.intp)
            for a in range(len(arr)):
                d = self.dataset.distances_from_index(int(arr[a]), arr[a + 1 :])
                if (d <= float(2**lvl)).any():
                    b = int(arr[a + 1 :][int(np.argmin(d))])
                    raise AssertionError(
                        f"separation violated at level {lvl}: "
                        f"D({int(arr[a])},{b}) = {d.min()} <= 2^{lvl}"
                    )
