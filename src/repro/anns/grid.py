"""Hash-grid index for datasets embedded in ``R^d``.

The Euclidean fast path of the G_net builder issues, per level ``i``, a
batch of fixed-radius range queries (radius ``phi * 2^i``) over the net
``Y_i``.  A uniform grid with cell width tied to the query radius answers
such queries output-sensitively: only ``O((phi)^d)`` cells are touched per
query thanks to the net's ``2^i`` separation (Fact 2.3 bounds occupancy).

Works for any ``Lp`` metric on coordinate data because an ``Lp`` ball of
radius ``r`` is contained in the ``L_inf`` box of radius ``r``: the grid
over-approximates with the box and filters by true metric distance.
"""

from __future__ import annotations

import itertools
import math
from typing import Any

import numpy as np

from repro.anns.base import DynamicANN
from repro.metrics.base import Dataset

__all__ = ["GridANN"]


class GridANN(DynamicANN):
    """Dynamic uniform-grid point index over coordinate data.

    Parameters
    ----------
    dataset:
        Dataset whose ``points`` is an ``(n, d)`` float array and whose
        metric is coordinate-based (``L2``, ``L_inf``, ``Lp``).
    cell_size:
        Grid cell width.  Choose it near the typical query radius; range
        queries remain exact for any radius, only efficiency varies.
    """

    def __init__(self, dataset: Dataset, cell_size: float, point_ids: Any = ()):
        super().__init__(dataset)
        coords = np.asarray(dataset.points, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError("GridANN requires (n, d) coordinate data")
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self._coords = coords
        self.dim = coords.shape[1]
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, ...], set[int]] = {}
        self._live: set[int] = set()
        self.insert_many(point_ids)

    # ------------------------------------------------------------------

    def _cell_of(self, point: np.ndarray) -> tuple[int, ...]:
        return tuple(np.floor(np.asarray(point) / self.cell_size).astype(int))

    def insert(self, point_id: int) -> None:
        point_id = int(point_id)
        if not 0 <= point_id < self.dataset.n:
            raise ValueError(f"point id {point_id} out of range")
        if point_id in self._live:
            raise ValueError(f"point {point_id} already stored")
        self._cells.setdefault(self._cell_of(self._coords[point_id]), set()).add(
            point_id
        )
        self._live.add(point_id)

    def delete(self, point_id: int) -> None:
        point_id = int(point_id)
        if point_id not in self._live:
            raise KeyError(f"point {point_id} is not stored")
        cell = self._cell_of(self._coords[point_id])
        self._cells[cell].discard(point_id)
        if not self._cells[cell]:
            del self._cells[cell]
        self._live.remove(point_id)

    # ------------------------------------------------------------------

    def _candidates_in_box(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Ids stored in cells intersecting the L_inf box of ``radius``."""
        q = np.asarray(query, dtype=np.float64)
        lo = np.floor((q - radius) / self.cell_size).astype(int)
        hi = np.floor((q + radius) / self.cell_size).astype(int)
        span = hi - lo + 1
        n_cells = int(np.prod(span))
        if n_cells > 8 * max(len(self._cells), 1):
            # The box covers more cells than exist: scan occupied cells.
            out: list[int] = []
            for cell, members in self._cells.items():
                if all(lo[k] <= cell[k] <= hi[k] for k in range(self.dim)):
                    out.extend(members)
            return np.array(out, dtype=np.intp)
        out = []
        for offsets in itertools.product(*(range(span[k]) for k in range(self.dim))):
            cell = tuple(lo + np.array(offsets))
            members = self._cells.get(cell)
            if members:
                out.extend(members)
        return np.array(out, dtype=np.intp)

    def range_search(self, query: Any, radius: float) -> list[tuple[int, float]]:
        cand = self._candidates_in_box(query, radius)
        if len(cand) == 0:
            return []
        dists = self.dataset.distances_to_query(query, cand)
        hit = dists <= radius
        return self._as_sorted(
            [(int(i), float(d)) for i, d in zip(cand[hit], dists[hit])]
        )

    def nearest(self, query: Any) -> tuple[int, float] | None:
        if not self._live:
            return None
        radius = self.cell_size
        while True:
            hits = self.range_search(query, radius)
            if hits:
                best_id, best_d = hits[0]
                if best_d <= radius:
                    # Candidates came from the full L_inf box of `radius`
                    # >= best_d, which contains the whole metric ball of
                    # radius best_d — the answer is exact.
                    return best_id, best_d
            radius *= 2.0
            if radius > self._search_radius_cap():
                # The query sits far outside the data region: expanding
                # rings would keep probing empty space, so fall back to
                # one exact scan over the live points.
                return self._scan_all(query, 1)[0]

    def knn(self, query: Any, k: int) -> list[tuple[int, float]]:
        k = int(k)
        if k <= 0 or not self._live:
            return []
        k = min(k, len(self._live))
        radius = self.cell_size
        while True:
            hits = self.range_search(query, radius)
            if len(hits) >= k and hits[k - 1][1] <= radius:
                return hits[:k]
            radius *= 2.0
            if radius > self._search_radius_cap():
                return self._scan_all(query, k)

    def _scan_all(self, query: Any, k: int) -> list[tuple[int, float]]:
        """Exact fallback: scan every live point (used only when the
        expanding search outgrew the data's bounding region)."""
        ids = np.fromiter(self._live, dtype=np.intp, count=len(self._live))
        dists = self.dataset.distances_to_query(query, ids)
        order = np.argsort(dists, kind="stable")[:k]
        return [(int(ids[j]), float(dists[j])) for j in order]

    def _search_radius_cap(self) -> float:
        spread = float(self._coords.max() - self._coords.min()) + self.cell_size
        return 4.0 * math.sqrt(self.dim) * spread

    def __len__(self) -> int:
        return len(self._live)
