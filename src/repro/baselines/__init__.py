"""Baseline graph constructions the paper positions itself against:
DiskANN (slow preprocessing — the only prior method with guarantees),
HNSW and NSW (the empirical systems), and the trivial anchors."""

from repro.baselines.diskann import (
    DiskANNBuildResult,
    alpha_for_epsilon,
    build_diskann_slow,
)
from repro.baselines.hnsw import HNSWIndex
from repro.baselines.nsw import NSWIndex
from repro.baselines.trivial import build_complete_graph, build_knn_digraph
from repro.baselines.vamana import VamanaIndex

__all__ = [
    "DiskANNBuildResult",
    "HNSWIndex",
    "NSWIndex",
    "VamanaIndex",
    "alpha_for_epsilon",
    "build_complete_graph",
    "build_diskann_slow",
    "build_knn_digraph",
]
