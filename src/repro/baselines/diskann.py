"""DiskANN with "slow preprocessing" — the strongest prior baseline.

Indyk & Xu [18] showed that among popular proximity-graph systems only
DiskANN's slow-preprocessing variant carries worst-case guarantees: built
with pruning parameter ``alpha``, greedy search terminates at an
``(alpha+1)/(alpha-1)``-approximate NN, and on bounded-doubling inputs the
graph has ``O((alpha)^lambda * n log Delta)`` edges.  The paper cites this
as the ``O(n^3)``-construction-time benchmark that Theorem 1.1 improves.

Construction (alpha-pruned relative neighborhood graph): for each point
``p``, scan the other points in ascending distance from ``p``; keep ``v``
unless some already-kept ``u`` satisfies ``alpha * D(u, v) <= D(p, v)``.
The kept set is ``p``'s out-neighborhood.

Correctness intuition (the argument our tests replay): if ``p`` is not a
``(alpha+1)/(alpha-1)``-ANN of ``q`` and ``p* not in N(p)``, the pruning
rule yields ``u in N(p)`` with ``D(u, p*) <= D(p, p*)/alpha``, and the
triangle inequality turns that into ``D(u, q) < D(p, q)`` — navigability.
To guarantee a (1+eps)-PG, solve ``(alpha+1)/(alpha-1) <= 1+eps``:
``alpha >= (2+eps)/eps``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = ["DiskANNBuildResult", "alpha_for_epsilon", "build_diskann_slow"]


def alpha_for_epsilon(epsilon: float) -> float:
    """Smallest pruning parameter giving a (1+eps)-PG:
    ``alpha = (2+eps)/eps``."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    return (2.0 + epsilon) / epsilon


@dataclass
class DiskANNBuildResult:
    graph: ProximityGraph
    alpha: float

    @property
    def guarantee(self) -> float:
        """The approximation ratio ``(alpha+1)/(alpha-1)`` greedy attains."""
        return (self.alpha + 1.0) / (self.alpha - 1.0)


def build_diskann_slow(
    dataset: Dataset,
    alpha: float | None = None,
    epsilon: float | None = None,
    max_degree: int | None = None,
    batch_size: int | None = None,
    backend: str | None = None,
) -> DiskANNBuildResult:
    """Build the alpha-pruned graph by the quadratic-per-point scan.

    Exactly one of ``alpha`` or ``epsilon`` must be given.  ``max_degree``
    optionally truncates neighbor lists (the practical DiskANN knob ``R``)
    — doing so voids the worst-case guarantee, which the ablation benches
    demonstrate.

    ``batch_size`` (the wave knob of the batched construction engine)
    computes the per-point distance rows for a whole wave with one
    :meth:`~repro.metrics.base.MetricSpace.cross_distances` call — a
    single BLAS GEMM for Euclidean data — instead of ``batch_size``
    separate one-to-all evaluations.  The pruning scan itself is
    unchanged, so the graph differs from the sequential build only where
    the GEMM expansion rounds a tie differently (measure-zero on random
    inputs; ``batch_size in (None, 1)`` uses the sequential row kernel
    verbatim).

    ``backend`` is accepted for API uniformity with the insertion-based
    builders and ignored: this quadratic scan has no beam search or
    RobustPrune inner loop for the accel kernels to replace, so every
    backend builds the identical graph.
    """
    if (alpha is None) == (epsilon is None):
        raise ValueError("give exactly one of alpha or epsilon")
    if alpha is None:
        alpha = alpha_for_epsilon(epsilon)
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be at least 1")

    n = dataset.n
    wave_rows: np.ndarray | None = None
    wave_lo = 0
    adjacency: list[np.ndarray] = []
    for p in range(n):
        if batch_size is None or batch_size == 1:
            row = dataset.distances_from_index_to_all(p)
        else:
            if wave_rows is None or p >= wave_lo + len(wave_rows):
                wave_lo = p
                hi = min(p + batch_size, n)
                wave_rows = dataset.metric.cross_distances(
                    dataset.points[wave_lo:hi], dataset.points
                )
            row = wave_rows[p - wave_lo]
        order = np.argsort(row, kind="stable")
        kept: list[int] = []
        # min_over_kept[v] = min_{u kept} D(u, v), updated per kept point.
        min_over_kept = np.full(n, np.inf)
        for v in order:
            v = int(v)
            if v == p:
                continue
            if max_degree is not None and len(kept) >= max_degree:
                break
            if alpha * min_over_kept[v] > row[v]:
                kept.append(v)
                np.minimum(
                    min_over_kept,
                    dataset.distances_from_index_to_all(v),
                    out=min_over_kept,
                )
        adjacency.append(np.array(kept, dtype=np.intp))
    return DiskANNBuildResult(
        graph=ProximityGraph(n, adjacency), alpha=float(alpha)
    )
