"""HNSW — hierarchical navigable small world graphs (Malkov & Yashunin [22]).

The empirical champion the paper's introduction motivates.  No worst-case
guarantee exists for it (Indyk & Xu [18]); it appears here as the system
baseline the benches compare the provable constructions against.

Implementation follows the published algorithm:

* each point draws a top level from a geometric distribution with scale
  ``m_L = 1 / ln(M)``;
* insertion greedily descends from the entry point to the target level,
  then runs an ``ef_construction``-beam at each level downward, selecting
  ``M`` neighbors (optionally with the "heuristic" diversity rule, which
  is the published Algorithm 4) and linking bidirectionally, pruning
  overflowing adjacency back to ``M_max``;
* search descends greedily to level 1, then runs an ``ef``-beam at level 0.

The structure exposes its level-0 adjacency as a
:class:`~repro.graphs.base.ProximityGraph` so the paper's greedy/navigability
machinery can interrogate it directly.

``batch_size`` selects the :func:`~repro.graphs.engine.bulk_insert` wave
schedule: a whole wave descends the hierarchy in lockstep (one vectorized
:func:`~repro.graphs.engine.construction_beam_batch` per layer per wave
against frozen per-layer snapshots) before committing member-by-member.
``batch_size=1`` is edge-identical to the sequential build.  The one
deviation of the wave path from the published algorithm: each layer's
beam is seeded with the single best vertex found at the layer above
rather than the full ``ef`` pool (the pool lives per-query inside the
lockstep engine); the recall benches show no measurable quality loss.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.engine import bulk_insert, construction_beam_batch, snapshot_graph
from repro.metrics.base import Dataset

__all__ = ["HNSWIndex"]

# A wave member's located pools: (target_level, {level: [(distance, id)]}).
_WavePool = tuple[int, dict[int, list[tuple[float, int]]]]


class HNSWIndex:
    """Hierarchical NSW index over a dataset.

    Parameters
    ----------
    m:
        Target degree ``M``; level-0 allows ``2 * M``.
    ef_construction:
        Beam width during insertion.
    use_heuristic:
        Apply the diversity-select rule (Algorithm 4 of [22]) instead of
        plain nearest-``M`` selection.
    batch_size:
        ``None`` for the sequential reference build; an integer ``k``
        for the wave schedule (``k=1`` is edge-identical to sequential).
    backend:
        Accel backend for the wave schedule's per-layer candidate
        location (``None``/``"numpy"`` = the pinned engines, ``"auto"``
        = best warmed compiled backend, or an explicit backend name).
        The sequential schedule ignores it.
    """

    def __init__(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        m: int = 8,
        ef_construction: int = 64,
        use_heuristic: bool = True,
        batch_size: int | None = None,
        backend: str | None = None,
    ):
        if m < 2:
            raise ValueError("M must be at least 2")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.dataset = dataset
        self.m = int(m)
        self.m_max0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self.use_heuristic = bool(use_heuristic)
        self.batch_size = batch_size
        self.backend = backend
        self._ml = 1.0 / math.log(self.m)
        # adjacency[level][node] -> list of neighbor ids
        self._adj: list[dict[int, list[int]]] = []
        self.entry_point: int | None = None
        self._node_level: dict[int, int] = {}
        self._rng = rng
        if batch_size is None:
            for pid in range(dataset.n):
                self._insert(pid, rng)
        else:
            bulk_insert(self, range(dataset.n), batch_size)

    # ------------------------------------------------------------------

    @property
    def max_level(self) -> int:
        return len(self._adj) - 1

    def neighbors(self, node: int, level: int) -> list[int]:
        return self._adj[level].get(node, [])

    def base_layer_graph(self) -> ProximityGraph:
        """Level-0 adjacency as a flat directed graph."""
        return ProximityGraph(
            self.dataset.n,
            [
                np.array(self._adj[0].get(u, []), dtype=np.intp)
                for u in range(self.dataset.n)
            ],
        )

    # ------------------------------------------------------------------

    def _distance(self, q: Any, node: int) -> float:
        return self.dataset.distance_to_query(q, node)

    def _draw_level(self, rng: np.random.Generator) -> int:
        return int(-math.log(max(rng.random(), 1e-300)) * self._ml)

    def _search_layer(
        self, q: Any, entry: list[int], ef: int, level: int
    ) -> list[tuple[float, int]]:
        """Beam search within one layer; returns up to ``ef`` closest
        ``(distance, id)`` pairs, ascending."""
        visited = set(entry)
        cand: list[tuple[float, int]] = []
        best: list[tuple[float, int]] = []  # max-heap via negation
        for e in entry:
            d = self._distance(q, e)
            heapq.heappush(cand, (d, e))
            heapq.heappush(best, (-d, e))
        while cand:
            d, u = heapq.heappop(cand)
            if d > -best[0][0] and len(best) >= ef:
                break
            for v in self.neighbors(u, level):
                if v in visited:
                    continue
                visited.add(v)
                dv = self._distance(q, v)
                if len(best) < ef or dv < -best[0][0]:
                    heapq.heappush(cand, (dv, v))
                    heapq.heappush(best, (-dv, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, v) for d, v in best)

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Top-``m`` selection; with the heuristic, prefer candidates
        closer to the base point than to any already-selected neighbor
        (diversity rule).  All candidate-to-candidate distances come
        from one vectorized cross-distance matrix, so the greedy scan
        itself is pure Python over floats."""
        if not self.use_heuristic or len(candidates) <= 1:
            return [v for _, v in candidates[:m]]
        ids = np.fromiter(
            (v for _, v in candidates), dtype=np.intp, count=len(candidates)
        )
        pts = self.dataset.points[ids]
        rows = self.dataset.metric.cross_distances(pts, pts).tolist()
        selected: list[int] = []  # indices into candidates
        for j, (d, _v) in enumerate(candidates):
            if len(selected) >= m:
                break
            if any(rows[u][j] < d for u in selected):
                continue
            selected.append(j)
        if len(selected) < m:
            chosen = set(selected)
            for j in range(len(candidates)):
                if len(selected) >= m:
                    break
                if j not in chosen:
                    selected.append(j)
        return [int(ids[j]) for j in selected]

    def _cap_degree(self, v: int, nbrs: list[int], m_max: int) -> list[int]:
        """Re-select an overflowing adjacency list back to ``m_max``."""
        uniq = np.array(sorted(set(nbrs)), dtype=np.intp)
        dists = self.dataset.distances_from_index(v, uniq)
        pairs = sorted(zip(dists.tolist(), uniq.tolist()))
        return self._select_neighbors(pairs, m_max)

    def _insert(self, pid: int, rng: np.random.Generator) -> None:
        level = self._draw_level(rng)
        self._node_level[pid] = level
        while len(self._adj) <= level:
            self._adj.append({})
        q = self.dataset.points[pid]

        if self.entry_point is None:
            self.entry_point = pid
            for lvl in range(level + 1):
                self._adj[lvl][pid] = []
            return

        entry = [self.entry_point]
        # Greedy descent above the insertion level.
        for lvl in range(self.max_level, level, -1):
            entry = [self._search_layer(q, entry, 1, lvl)[0][1]]
        # Beam insert at each level from min(level, old max) down to 0.
        for lvl in range(min(level, self.max_level), -1, -1):
            found = self._search_layer(q, entry, self.ef_construction, lvl)
            found = [(d, v) for d, v in found if v != pid]
            self._link(pid, lvl, found)
            entry = [v for _, v in found] or entry
        if level > self._node_level.get(self.entry_point, 0):
            self.entry_point = pid

    def _link(self, pid: int, lvl: int, found: list[tuple[float, int]]) -> None:
        """Select ``M`` neighbors for ``pid`` at ``lvl``, link both ways,
        and prune any overflowing reverse adjacency."""
        m_max = self.m_max0 if lvl == 0 else self.m
        chosen = self._select_neighbors(found, self.m)
        self._adj[lvl][pid] = list(chosen)
        for v in chosen:
            nbrs = self._adj[lvl].setdefault(v, [])
            nbrs.append(pid)
            if len(nbrs) > m_max:
                self._adj[lvl][v] = self._cap_degree(v, nbrs, m_max)

    # ------------------------------------------------------------------
    # WaveInserter protocol (repro.graphs.engine.bulk_insert)
    # ------------------------------------------------------------------

    def insert_one(self, pid: int) -> None:
        self._insert(int(pid), self._rng)

    def locate_wave(self, pids: Sequence[int]) -> list[_WavePool | None]:
        """Lockstep multi-layer candidate location for a whole wave.

        Levels are drawn for the wave in insertion order (identical rng
        consumption to the sequential build), then the wave descends the
        frozen per-layer snapshots together: one ``beam_width=1`` batch
        for the members still above their target level, one
        ``ef_construction`` batch for the members collecting candidates.
        """
        pids = [int(p) for p in pids]
        pools: list[_WavePool | None] = []
        if self.entry_point is None:
            self._insert(pids[0], self._rng)  # seeds the hierarchy
            pools.append(None)
            pids = pids[1:]
        if not pids:
            return pools
        levels = [self._draw_level(self._rng) for _ in pids]
        n = self.dataset.n
        snap_max = self.max_level
        layers = [
            snapshot_graph(n, [self._adj[lvl].get(u, ()) for u in range(n)], sort=False)
            for lvl in range(snap_max + 1)
        ]
        q_arr = self.dataset.points[np.asarray(pids, dtype=np.intp)]
        entry = np.full(len(pids), self.entry_point, dtype=np.intp)
        by_level: list[dict[int, list[tuple[float, int]]]] = [{} for _ in pids]
        for lvl in range(snap_max, -1, -1):
            desc = [i for i, tl in enumerate(levels) if tl < lvl]
            ins = [i for i, tl in enumerate(levels) if tl >= lvl]
            if desc:
                idx = np.asarray(desc, dtype=np.intp)
                found = construction_beam_batch(
                    layers[lvl], self.dataset, entry[idx], q_arr[idx],
                    beam_width=1, backend=self.backend,
                )
                for i, (ids, _d) in zip(desc, found):
                    entry[i] = ids[0]
            if ins:
                idx = np.asarray(ins, dtype=np.intp)
                found = construction_beam_batch(
                    layers[lvl], self.dataset, entry[idx], q_arr[idx],
                    beam_width=self.ef_construction, backend=self.backend,
                )
                for i, (ids, d) in zip(ins, found):
                    by_level[i][lvl] = list(zip(d.tolist(), ids.tolist()))
                    entry[i] = ids[0]
        pools += [(levels[i], by_level[i]) for i in range(len(pids))]
        return pools

    def commit(self, pid: int, pool: _WavePool | None) -> None:
        if pool is None:  # first point of the build, already inserted
            return
        pid = int(pid)
        level, by_level = pool
        self._node_level[pid] = level
        while len(self._adj) <= level:
            self._adj.append({})
        q = self.dataset.points[pid]
        for lvl in range(level, -1, -1):
            pairs = by_level.get(lvl)
            if pairs is None:
                # A brand-new top level above the snapshot: seeded by the
                # current global entry point, as in the sequential build.
                e = int(self.entry_point)
                pairs = [(self._distance(q, e), e)]
            found = [(d, v) for d, v in pairs if v != pid]
            self._link(pid, lvl, found)
        if level > self._node_level.get(self.entry_point, 0):
            self.entry_point = pid

    # ------------------------------------------------------------------

    def search(self, q: Any, k: int = 1, ef: int | None = None) -> list[tuple[int, float]]:
        """Top-``k`` approximate neighbors of ``q`` (``(id, distance)``)."""
        if self.entry_point is None:
            return []
        ef = max(int(ef) if ef is not None else self.ef_construction, k)
        entry = [self.entry_point]
        for lvl in range(self.max_level, 0, -1):
            entry = [self._search_layer(q, entry, 1, lvl)[0][1]]
        found = self._search_layer(q, entry, ef, 0)
        return [(v, d) for d, v in found[:k]]
