"""HNSW — hierarchical navigable small world graphs (Malkov & Yashunin [22]).

The empirical champion the paper's introduction motivates.  No worst-case
guarantee exists for it (Indyk & Xu [18]); it appears here as the system
baseline the benches compare the provable constructions against.

Implementation follows the published algorithm:

* each point draws a top level from a geometric distribution with scale
  ``m_L = 1 / ln(M)``;
* insertion greedily descends from the entry point to the target level,
  then runs an ``ef_construction``-beam at each level downward, selecting
  ``M`` neighbors (optionally with the "heuristic" diversity rule, which
  is the published Algorithm 4) and linking bidirectionally, pruning
  overflowing adjacency back to ``M_max``;
* search descends greedily to level 1, then runs an ``ef``-beam at level 0.

The structure exposes its level-0 adjacency as a
:class:`~repro.graphs.base.ProximityGraph` so the paper's greedy/navigability
machinery can interrogate it directly.
"""

from __future__ import annotations

import heapq
import math
from typing import Any

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """Hierarchical NSW index over a dataset.

    Parameters
    ----------
    m:
        Target degree ``M``; level-0 allows ``2 * M``.
    ef_construction:
        Beam width during insertion.
    use_heuristic:
        Apply the diversity-select rule (Algorithm 4 of [22]) instead of
        plain nearest-``M`` selection.
    """

    def __init__(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        m: int = 8,
        ef_construction: int = 64,
        use_heuristic: bool = True,
    ):
        if m < 2:
            raise ValueError("M must be at least 2")
        self.dataset = dataset
        self.m = int(m)
        self.m_max0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self.use_heuristic = bool(use_heuristic)
        self._ml = 1.0 / math.log(self.m)
        # adjacency[level][node] -> list of neighbor ids
        self._adj: list[dict[int, list[int]]] = []
        self.entry_point: int | None = None
        self._node_level: dict[int, int] = {}
        for pid in range(dataset.n):
            self._insert(pid, rng)

    # ------------------------------------------------------------------

    @property
    def max_level(self) -> int:
        return len(self._adj) - 1

    def neighbors(self, node: int, level: int) -> list[int]:
        return self._adj[level].get(node, [])

    def base_layer_graph(self) -> ProximityGraph:
        """Level-0 adjacency as a flat directed graph."""
        return ProximityGraph(
            self.dataset.n,
            [
                np.array(self._adj[0].get(u, []), dtype=np.intp)
                for u in range(self.dataset.n)
            ],
        )

    # ------------------------------------------------------------------

    def _distance(self, q: Any, node: int) -> float:
        return self.dataset.distance_to_query(q, node)

    def _search_layer(
        self, q: Any, entry: list[int], ef: int, level: int
    ) -> list[tuple[float, int]]:
        """Beam search within one layer; returns up to ``ef`` closest
        ``(distance, id)`` pairs, ascending."""
        visited = set(entry)
        cand: list[tuple[float, int]] = []
        best: list[tuple[float, int]] = []  # max-heap via negation
        for e in entry:
            d = self._distance(q, e)
            heapq.heappush(cand, (d, e))
            heapq.heappush(best, (-d, e))
        while cand:
            d, u = heapq.heappop(cand)
            if d > -best[0][0] and len(best) >= ef:
                break
            for v in self.neighbors(u, level):
                if v in visited:
                    continue
                visited.add(v)
                dv = self._distance(q, v)
                if len(best) < ef or dv < -best[0][0]:
                    heapq.heappush(cand, (dv, v))
                    heapq.heappush(best, (-dv, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, v) for d, v in best)

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Top-``m`` selection; with the heuristic, prefer candidates
        closer to the base point than to any already-selected neighbor
        (diversity rule)."""
        if not self.use_heuristic:
            return [v for _, v in candidates[:m]]
        selected: list[tuple[float, int]] = []
        for d, v in candidates:
            if len(selected) >= m:
                break
            ok = True
            for _, u in selected:
                if self.dataset.distance(u, v) < d:
                    ok = False
                    break
            if ok:
                selected.append((d, v))
        if len(selected) < m:
            chosen = {v for _, v in selected}
            for d, v in candidates:
                if len(selected) >= m:
                    break
                if v not in chosen:
                    selected.append((d, v))
        return [v for _, v in selected]

    def _insert(self, pid: int, rng: np.random.Generator) -> None:
        level = int(-math.log(max(rng.random(), 1e-300)) * self._ml)
        self._node_level[pid] = level
        while len(self._adj) <= level:
            self._adj.append({})
        q = self.dataset.points[pid]

        if self.entry_point is None:
            self.entry_point = pid
            for lvl in range(level + 1):
                self._adj[lvl][pid] = []
            return

        entry = [self.entry_point]
        # Greedy descent above the insertion level.
        for lvl in range(self.max_level, level, -1):
            entry = [self._search_layer(q, entry, 1, lvl)[0][1]]
        # Beam insert at each level from min(level, old max) down to 0.
        for lvl in range(min(level, self.max_level), -1, -1):
            found = self._search_layer(q, entry, self.ef_construction, lvl)
            found = [(d, v) for d, v in found if v != pid]
            m_max = self.m_max0 if lvl == 0 else self.m
            chosen = self._select_neighbors(found, self.m)
            self._adj[lvl][pid] = list(chosen)
            for v in chosen:
                nbrs = self._adj[lvl].setdefault(v, [])
                nbrs.append(pid)
                if len(nbrs) > m_max:
                    pairs = sorted(
                        (self.dataset.distance(v, u), u) for u in set(nbrs)
                    )
                    self._adj[lvl][v] = self._select_neighbors(pairs, m_max)
            entry = [v for _, v in found] or entry
        if level > self._node_level.get(self.entry_point, 0):
            self.entry_point = pid

    # ------------------------------------------------------------------

    def search(self, q: Any, k: int = 1, ef: int | None = None) -> list[tuple[int, float]]:
        """Top-``k`` approximate neighbors of ``q`` (``(id, distance)``)."""
        if self.entry_point is None:
            return []
        ef = max(int(ef) if ef is not None else self.ef_construction, k)
        entry = [self.entry_point]
        for lvl in range(self.max_level, 0, -1):
            entry = [self._search_layer(q, entry, 1, lvl)[0][1]]
        found = self._search_layer(q, entry, ef, 0)
        return [(v, d) for d, v in found[:k]]
