"""NSW — flat navigable small world graph (Malkov et al. [21]).

The predecessor of HNSW and the first system the paper's related work
lists.  Points are inserted in random order; each new point is linked
bidirectionally to its ``m`` (approximate) nearest current members, found
by beam search on the graph built so far.  Early random insertions create
long-range "small world" links; no worst-case guarantee exists.

``batch_size`` selects the :func:`~repro.graphs.engine.bulk_insert` wave
schedule: each wave's candidates are found with one vectorized lockstep
:func:`~repro.graphs.engine.construction_beam_batch` against the frozen
prefix graph.  ``batch_size=1`` is edge-identical to the sequential build.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.engine import bulk_insert, construction_beam_batch, snapshot_graph
from repro.metrics.base import Dataset

__all__ = ["NSWIndex"]


class NSWIndex:
    """Flat small-world graph with beam-search construction and queries."""

    def __init__(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        m: int = 8,
        ef_construction: int = 32,
        batch_size: int | None = None,
        backend: str | None = None,
    ):
        if m < 1:
            raise ValueError("m must be at least 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.dataset = dataset
        self.m = int(m)
        self.ef_construction = int(ef_construction)
        self.batch_size = batch_size
        self.backend = backend
        self._adj: list[set[int]] = [set() for _ in range(dataset.n)]
        self._members: list[int] = []
        order = rng.permutation(dataset.n)
        if batch_size is None:
            for pid in order:
                self._insert(int(pid))
        else:
            bulk_insert(self, order, batch_size)

    def _insert(self, pid: int) -> None:
        if self._members:
            found = self._beam(
                self.dataset.points[pid],
                ef=max(self.ef_construction, self.m),
                entry=self._members[0],
            )
            for _, v in found[: self.m]:
                self._adj[pid].add(v)
                self._adj[v].add(pid)
        self._members.append(pid)

    def _beam(self, q: Any, ef: int, entry: int) -> list[tuple[float, int]]:
        d0 = self.dataset.distance_to_query(q, entry)
        visited = {entry}
        cand = [(d0, entry)]
        best = [(-d0, entry)]
        while cand:
            d, u = heapq.heappop(cand)
            if len(best) >= ef and d > -best[0][0]:
                break
            for v in self._adj[u]:
                if v in visited:
                    continue
                visited.add(v)
                dv = self.dataset.distance_to_query(q, v)
                if len(best) < ef or dv < -best[0][0]:
                    heapq.heappush(cand, (dv, v))
                    heapq.heappush(best, (-dv, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, v) for d, v in best)

    # ------------------------------------------------------------------
    # WaveInserter protocol (repro.graphs.engine.bulk_insert)
    # ------------------------------------------------------------------

    def insert_one(self, pid: int) -> None:
        self._insert(int(pid))

    def locate_wave(
        self, pids: Sequence[int]
    ) -> list[list[tuple[float, int]] | None]:
        """Lockstep candidate location for a wave.

        The very first insertion of the whole build has no prefix to
        search, so it is inserted on the spot (its pool is ``None`` and
        :meth:`commit` is a no-op for it); the rest of the wave beams
        against the prefix that includes it.
        """
        pids = [int(p) for p in pids]
        pools: list[list[tuple[float, int]] | None] = []
        if not self._members:
            self._insert(pids[0])
            pools.append(None)
            pids = pids[1:]
        if pids:
            idx = np.asarray(pids, dtype=np.intp)
            prefix = snapshot_graph(self.dataset.n, self._adj, sort=False)
            ef = max(self.ef_construction, self.m)
            found = construction_beam_batch(
                prefix,
                self.dataset,
                [self._members[0]] * len(idx),
                self.dataset.points[idx],
                beam_width=ef,
                backend=self.backend,
            )
            pools += [list(zip(d.tolist(), v.tolist())) for v, d in found]
        return pools

    def commit(self, pid: int, pool: list[tuple[float, int]] | None) -> None:
        if pool is None:  # first point of the build, already inserted
            return
        pid = int(pid)
        for _, v in pool[: self.m]:
            self._adj[pid].add(v)
            self._adj[v].add(pid)
        self._members.append(pid)

    # ------------------------------------------------------------------

    def graph(self) -> ProximityGraph:
        """The (symmetric) adjacency as a directed graph."""
        return ProximityGraph(
            self.dataset.n,
            [np.array(sorted(s), dtype=np.intp) for s in self._adj],
        )

    def search(self, q: Any, k: int = 1, ef: int | None = None) -> list[tuple[int, float]]:
        if not self._members:
            return []
        ef = max(int(ef) if ef is not None else self.ef_construction, k)
        found = self._beam(q, ef=ef, entry=self._members[0])
        return [(v, d) for d, v in found[:k]]
