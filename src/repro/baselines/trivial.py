"""Trivial baselines: the complete graph and the k-NN digraph.

* The **complete graph** is a (1+eps)-PG for every ``eps`` (Section 1.1)
  with ``Theta(n^2)`` edges and ``Omega(n)`` query time — the upper
  anchor of every size/quality trade-off table.
* The **k-NN digraph** (edge to each of the k nearest neighbors) is the
  classic *negative control*: it is generally **not** navigable — greedy
  gets stuck in local minima between clusters — which the tests assert on
  a two-cluster workload.  Its failures motivate the long-range edges all
  real proximity graphs add.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = ["build_complete_graph", "build_knn_digraph"]


def build_complete_graph(dataset: Dataset) -> ProximityGraph:
    """All ``n * (n-1)`` directed edges."""
    n = dataset.n
    all_ids = np.arange(n, dtype=np.intp)
    return ProximityGraph(n, [np.delete(all_ids, u) for u in range(n)])


def build_knn_digraph(dataset: Dataset, k: int) -> ProximityGraph:
    """Directed edges to each point's ``k`` nearest neighbors."""
    if k < 1:
        raise ValueError("k must be at least 1")
    n = dataset.n
    k = min(k, n - 1)
    adjacency = []
    for p in range(n):
        row = dataset.distances_from_index_to_all(p)
        row[p] = np.inf
        nearest = np.argpartition(row, k - 1)[:k]
        adjacency.append(nearest.astype(np.intp))
    return ProximityGraph(n, adjacency)
