"""Vamana — DiskANN's *practical* construction (Jayaram Subramanya et al.
[19]), as opposed to the slow-preprocessing variant of
:mod:`repro.baselines.diskann`.

Where the slow variant alpha-prunes against *every* other point (the
version Indyk & Xu proved guarantees for, at Omega(n^2) cost), Vamana
generates each point's candidate set with a beam search over the graph
built so far and alpha-prunes only those candidates, in two passes over
a random insertion order, with degrees capped at ``R``.  That makes it
near-linear in practice but forfeits the worst-case guarantee — the
trade the paper's Theorem 1.1 shows is unnecessary (near-linear build
*and* guarantees are simultaneously possible).

Included as a baseline so benches can show all three regimes:
guaranteed-but-quadratic (diskann slow), fast-but-unguaranteed (vamana,
HNSW), and fast-and-guaranteed (G_net).
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = ["VamanaIndex"]


class VamanaIndex:
    """Two-pass Vamana graph with beam-search queries.

    Parameters
    ----------
    max_degree:
        The degree cap ``R``.
    beam_width:
        Construction beam width ``L`` (candidate pool size).
    alpha:
        Pruning slack; the reference implementation uses 1.2 on the
        second pass and 1.0 on the first.
    """

    def __init__(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        max_degree: int = 16,
        beam_width: int = 48,
        alpha: float = 1.2,
    ):
        if max_degree < 2:
            raise ValueError("max_degree must be at least 2")
        if beam_width < max_degree:
            beam_width = max_degree
        self.dataset = dataset
        self.max_degree = int(max_degree)
        self.beam_width = int(beam_width)
        self.alpha = float(alpha)
        n = dataset.n
        self._adj: list[list[int]] = [[] for _ in range(n)]
        # Medoid approximation: the point closest to the centroid of a
        # sample — the canonical Vamana entry point.
        sample = rng.choice(n, size=min(n, 256), replace=False)
        coords_like = dataset.points[sample]
        center_id = int(
            sample[np.argmin(dataset.metric.distances(coords_like[0], coords_like))]
        )
        self.entry_point = center_id

        order = rng.permutation(n)
        # Pass 1 (alpha = 1), pass 2 (alpha = self.alpha), as in [19].
        for pass_alpha in (1.0, self.alpha):
            for pid in order:
                self._insert(int(pid), pass_alpha)

    # ------------------------------------------------------------------

    def _beam(self, q: Any, ef: int) -> list[tuple[float, int]]:
        start = self.entry_point
        d0 = self.dataset.distance_to_query(q, start)
        visited = {start}
        cand = [(d0, start)]
        best = [(-d0, start)]
        while cand:
            d, u = heapq.heappop(cand)
            if len(best) >= ef and d > -best[0][0]:
                break
            for v in self._adj[u]:
                if v in visited:
                    continue
                visited.add(v)
                dv = self.dataset.distance_to_query(q, v)
                if len(best) < ef or dv < -best[0][0]:
                    heapq.heappush(cand, (dv, v))
                    heapq.heappush(best, (-dv, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, v) for d, v in best)

    def _robust_prune(
        self, pid: int, candidates: list[tuple[float, int]], alpha: float
    ) -> list[int]:
        """The RobustPrune of [19]: keep the closest candidate, discard
        any candidate ``v`` with ``alpha * D(kept, v) <= D(pid, v)``."""
        pool = sorted(set((d, v) for d, v in candidates if v != pid))
        kept: list[int] = []
        while pool and len(kept) < self.max_degree:
            d_best, v_best = pool.pop(0)
            kept.append(v_best)
            survivors = []
            for d, v in pool:
                if alpha * self.dataset.distance(v_best, v) > d:
                    survivors.append((d, v))
            pool = survivors
        return kept

    def _insert(self, pid: int, alpha: float) -> None:
        q = self.dataset.points[pid]
        found = self._beam(q, self.beam_width)
        merged = found + [
            (self.dataset.distance(pid, v), v) for v in self._adj[pid]
        ]
        self._adj[pid] = self._robust_prune(pid, merged, alpha)
        for v in self._adj[pid]:
            nbrs = self._adj[v]
            if pid not in nbrs:
                nbrs.append(pid)
                if len(nbrs) > self.max_degree:
                    pairs = [(self.dataset.distance(v, u), u) for u in nbrs]
                    self._adj[v] = self._robust_prune(v, pairs, alpha)

    # ------------------------------------------------------------------

    def graph(self) -> ProximityGraph:
        return ProximityGraph(
            self.dataset.n,
            [np.array(a, dtype=np.intp) for a in self._adj],
        )

    def search(self, q: Any, k: int = 1, ef: int | None = None) -> list[tuple[int, float]]:
        ef = max(int(ef) if ef is not None else self.beam_width, k)
        return [(v, d) for d, v in self._beam(q, ef)[:k]]
