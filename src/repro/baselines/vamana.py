"""Vamana — DiskANN's *practical* construction (Jayaram Subramanya et al.
[19]), as opposed to the slow-preprocessing variant of
:mod:`repro.baselines.diskann`.

Where the slow variant alpha-prunes against *every* other point (the
version Indyk & Xu proved guarantees for, at Omega(n^2) cost), Vamana
generates each point's candidate set with a beam search over the graph
built so far and alpha-prunes only those candidates, in two passes over
a random insertion order, with degrees capped at ``R``.  That makes it
near-linear in practice but forfeits the worst-case guarantee — the
trade the paper's Theorem 1.1 shows is unnecessary (near-linear build
*and* guarantees are simultaneously possible).

Included as a baseline so benches can show all three regimes:
guaranteed-but-quadratic (diskann slow), fast-but-unguaranteed (vamana,
HNSW), and fast-and-guaranteed (G_net).

Construction runs in one of two schedules:

* **sequential** (``batch_size=None``) — the reference loop: one scalar
  beam search per insertion;
* **batched** (``batch_size=k``) — the :func:`~repro.graphs.engine.bulk_insert`
  wave schedule: each wave of ``k`` points is located with one lockstep
  :func:`~repro.graphs.engine.beam_search_batch` against the frozen
  prefix graph, then committed in order.  ``batch_size=1`` replays the
  sequential insertions exactly (identical edges); larger waves trade a
  little candidate staleness for vectorized distance evaluation.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

import numpy as np

import warnings

from repro.graphs.base import ProximityGraph
from repro.graphs.engine import (
    CommitMirror,
    bulk_insert,
    commit_wave_pools,
    locate_wave_pools,
    prune_and_link,
)
from repro.graphs.engine import robust_prune as _engine_robust_prune
from repro.metrics.base import Dataset

# robust_prune moved to repro.graphs.engine with the rest of the shared
# wave-repair plumbing (PR 4).  ``repro.baselines.vamana.robust_prune``
# stays importable as a deprecated delegate (module __getattr__ below,
# DeprecationWarning once per process) so downstream callers keep
# working while the warning points them at the new home.
__all__ = ["VamanaIndex", "robust_prune"]

_DELEGATE_WARNED = False


def __getattr__(name: str):
    if name == "robust_prune":
        global _DELEGATE_WARNED
        if not _DELEGATE_WARNED:
            _DELEGATE_WARNED = True
            warnings.warn(
                "repro.baselines.vamana.robust_prune is deprecated; import "
                "it from repro.graphs.engine",
                DeprecationWarning,
                stacklevel=2,
            )
        return _engine_robust_prune
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class VamanaIndex:
    """Two-pass Vamana graph with beam-search queries.

    Parameters
    ----------
    max_degree:
        The degree cap ``R``.
    beam_width:
        Construction beam width ``L`` (candidate pool size).
    alpha:
        Pruning slack; the reference implementation uses 1.2 on the
        second pass and 1.0 on the first.
    batch_size:
        ``None`` for the sequential reference build; an integer ``k``
        for the wave schedule (``k=1`` is edge-identical to sequential).
    backend:
        Accel backend for the batched waves' candidate location and
        RobustPrune (``None``/``"numpy"`` = the pinned engines,
        ``"auto"`` = best warmed compiled backend, or an explicit
        backend name).  The sequential schedule ignores it.
    """

    def __init__(
        self,
        dataset: Dataset,
        rng: np.random.Generator,
        max_degree: int = 16,
        beam_width: int = 48,
        alpha: float = 1.2,
        batch_size: int | None = None,
        backend: str | None = None,
    ):
        if max_degree < 2:
            raise ValueError("max_degree must be at least 2")
        if beam_width < max_degree:
            beam_width = max_degree
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.dataset = dataset
        self.max_degree = int(max_degree)
        self.beam_width = int(beam_width)
        self.alpha = float(alpha)
        self.batch_size = batch_size
        self.backend = backend
        n = dataset.n
        self._adj: list[list[int]] = [[] for _ in range(n)]
        self._mirror = CommitMirror()
        # Medoid approximation: the point closest to the centroid of a
        # sample — the canonical Vamana entry point.
        sample = rng.choice(n, size=min(n, 256), replace=False)
        coords_like = dataset.points[sample]
        center_id = int(
            sample[np.argmin(dataset.metric.distances(coords_like[0], coords_like))]
        )
        self.entry_point = center_id
        self._pass_alpha = 1.0

        order = rng.permutation(n)
        # Pass 1 (alpha = 1), pass 2 (alpha = self.alpha), as in [19].
        for pass_no, pass_alpha in enumerate((1.0, self.alpha)):
            self._pass_alpha = pass_alpha
            if batch_size is None:
                for pid in order:
                    self._insert(int(pid), pass_alpha)
            else:
                # Ramp waves only while the graph is filling up (pass 1);
                # pass 2 re-inserts into a complete graph, where full
                # waves are never stale enough to matter.
                bulk_insert(self, order, batch_size, ramp=pass_no == 0)

    # ------------------------------------------------------------------

    def _beam(self, q: Any, ef: int) -> list[tuple[float, int]]:
        start = self.entry_point
        d0 = self.dataset.distance_to_query(q, start)
        visited = {start}
        cand = [(d0, start)]
        best = [(-d0, start)]
        while cand:
            d, u = heapq.heappop(cand)
            if len(best) >= ef and d > -best[0][0]:
                break
            for v in self._adj[u]:
                if v in visited:
                    continue
                visited.add(v)
                dv = self.dataset.distance_to_query(q, v)
                if len(best) < ef or dv < -best[0][0]:
                    heapq.heappush(cand, (dv, v))
                    heapq.heappush(best, (-dv, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, v) for d, v in best)

    def _robust_prune(
        self, pid: int, candidates: list[tuple[float, int]], alpha: float
    ) -> list[int]:
        """The RobustPrune of [19]: keep the closest candidate, discard
        any candidate ``v`` with ``alpha * D(kept, v) <= D(pid, v)``."""
        if not candidates:
            return []
        d_arr = np.fromiter(
            (d for d, _ in candidates), dtype=np.float64, count=len(candidates)
        )
        v_arr = np.fromiter(
            (v for _, v in candidates), dtype=np.intp, count=len(candidates)
        )
        return self._robust_prune_arrays(pid, v_arr, d_arr, alpha)

    def _robust_prune_arrays(
        self, pid: int, v_arr: np.ndarray, d_arr: np.ndarray, alpha: float
    ) -> list[int]:
        return _engine_robust_prune(
            self.dataset, pid, v_arr, d_arr, alpha, self.max_degree,
            backend=self.backend,
        )

    def _commit_arrays(
        self, pid: int, v_arr: np.ndarray, d_arr: np.ndarray, alpha: float
    ) -> None:
        """Neighbor selection + bidirectional linking for one insertion."""
        # Direct list mutation — write back the padded mirror first if a
        # compiled wave commit left it authoritative.
        self._mirror.flush(self._adj)
        if self._adj[pid]:
            own = np.asarray(self._adj[pid], dtype=np.intp)
            own_d = self.dataset.distances_from_index(pid, own)
            v_arr = np.concatenate([v_arr, own])
            d_arr = np.concatenate([d_arr, own_d])
        prune_and_link(
            self.dataset, self._adj, pid, v_arr, d_arr, alpha, self.max_degree,
            backend=self.backend,
        )

    def _insert(self, pid: int, alpha: float) -> None:
        q = self.dataset.points[pid]
        found = self._beam(q, self.beam_width)
        self._commit_arrays(
            pid,
            np.fromiter((v for _, v in found), dtype=np.intp, count=len(found)),
            np.fromiter((d for d, _ in found), dtype=np.float64, count=len(found)),
            alpha,
        )

    # ------------------------------------------------------------------
    # WaveInserter protocol (repro.graphs.engine.bulk_insert)
    # ------------------------------------------------------------------

    def insert_one(self, pid: int) -> None:
        self._insert(int(pid), self._pass_alpha)

    def locate_wave(
        self, pids: Sequence[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """One vectorized lockstep beam for the whole wave against the
        frozen prefix adjacency; returns ``(ids, distances)`` pools,
        ascending by distance."""
        return locate_wave_pools(
            self.dataset, self._adj, self.entry_point, pids, self.beam_width,
            backend=self.backend, mirror=self._mirror,
        )

    def commit(self, pid: int, pool: tuple[np.ndarray, np.ndarray]) -> None:
        v_arr, d_arr = pool
        self._commit_arrays(
            int(pid), np.asarray(v_arr, dtype=np.intp), d_arr, self._pass_alpha
        )

    def commit_wave(
        self,
        pids: Sequence[int],
        pools: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Whole-wave commit: Vamana concatenates each member's current
        out-edges into its candidate pool (``include_own``), then runs
        the shared prune-and-link wave body."""
        commit_wave_pools(
            self.dataset, self._adj, pids, pools, self._pass_alpha,
            self.max_degree, backend=self.backend, mirror=self._mirror,
            include_own=True,
        )

    def finish_waves(self) -> None:
        self._mirror.flush(self._adj)

    # ------------------------------------------------------------------

    def graph(self) -> ProximityGraph:
        return ProximityGraph(
            self.dataset.n,
            [np.array(a, dtype=np.intp) for a in self._adj],
        )

    def search(self, q: Any, k: int = 1, ef: int | None = None) -> list[tuple[int, float]]:
        ef = max(int(ef) if ef is not None else self.beam_width, k)
        return [(v, d) for d, v in self._beam(q, ef)[:k]]
