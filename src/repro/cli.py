"""Command-line interface: build, query, validate, and inspect proximity
graphs from the shell.

    python -m repro build   points.npy graph.npz --method gnet --epsilon 0.5
    python -m repro query   points.npy graph.npz --q 0.25 0.75
    python -m repro stats   points.npy graph.npz
    python -m repro validate points.npy graph.npz --queries 200
    python -m repro bench-throughput points.npy --method vamana --queries 1000
    python -m repro bench-build points.npy --method vamana --batch-size 500
    python -m repro bench-build points.npy --method vamana --shards 4 --workers 4
    python -m repro save-index points.npy index.npz --method vamana
    python -m repro save-index points.npy index_dir --shards 4 --workers 4
    python -m repro save-index points.npy index.npz --storage pq
    python -m repro save-index points.npy index.v5 --format disk
    python -m repro load-index index.npz --q 0.25 0.75
    python -m repro load-index index.v5 --mmap --q 0.25 0.75
    python -m repro search index.npz --q 0.25 0.75 --k 10 --beam-width 32
    python -m repro search index.npz --q 0.25 0.75 --k 10 --rerank-factor 4
    python -m repro search index_dir --queries-file queries.npy --k 10 --workers 4
    python -m repro index info index.npz
    python -m repro bench-storage points.npy --method vamana
    python -m repro serve  index.npz --port 8080 --max-batch 64
    python -m repro add    index.npz points.npy
    python -m repro delete index.npz --ids 3 17 29 --compact
    python -m repro builders

Points files are ``.npy`` arrays of shape ``(n, d)``.  Bare graphs
persist in the library's ``.npz`` CSR format next to a ``.json``
metadata sidecar (method, epsilon, normalization factor) so
``query``/``validate`` can reconstruct the exact search setting; a
*full index* (graph + points + provenance in one self-contained file)
persists via ``save-index``/``load-index``.  ``save-index --shards K``
builds a sharded index instead (process-parallel with ``--workers``)
and saves it as a manifest *directory*; every index-consuming
subcommand (``search``/``add``/``delete``/``load-index``/``index
info``) accepts either kind transparently.  ``save-index --storage
{flat,sq8,pq}`` selects the vector storage (quantized indexes traverse
compressed codes and exact-rerank; tune with ``search
--rerank-factor``); ``index info`` prints the memory breakdown and
``bench-storage`` compares the three storages on one workload.
``save-index --format disk`` writes the memory-mappable v5 directory
(``--no-compress`` speeds up the npz path); ``load-index``/``serve``
``--mmap`` lazily attach it so the index opens in milliseconds and the
full-precision vectors stay on disk until the exact-rerank stage.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import accel
from repro.core.builders import BATCHED_BUILDERS, available_builders, build
from repro.core.index import ProximityGraphIndex
from repro.core.persistence import load_any
from repro.core.search import SearchParams
from repro.core.sharded import ShardedIndex
from repro.core.stats import (
    compute_ground_truth_k,
    measure_queries,
    recall_at_k,
    storage_breakdown,
    timed,
)
from repro.storage import STORAGE_KINDS
from repro.graphs.base import ProximityGraph
from repro.graphs.engine import beam_search_batch, greedy_batch
from repro.graphs.greedy import greedy
from repro.graphs.navigability import find_violations
from repro.metrics.base import Dataset
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads.queries import near_data_queries, uniform_queries

__all__ = ["main"]


def _load_points(path: str) -> np.ndarray:
    points = np.load(Path(path))
    if points.ndim != 2:
        raise SystemExit(f"{path}: expected an (n, d) array, got {points.shape}")
    return points.astype(np.float64)


def _dataset(points: np.ndarray) -> tuple[Dataset, float]:
    return normalize_min_distance(Dataset(EuclideanMetric(), points))


def _sidecar(graph_path: str) -> Path:
    return Path(graph_path).with_suffix(".json")


def _cmd_builders(_args: argparse.Namespace) -> int:
    for name in available_builders():
        print(name)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    points = _load_points(args.points)
    dataset, factor = _dataset(points)
    rng = np.random.default_rng(args.seed)
    built, seconds = timed(
        lambda: build(
            args.method, dataset, args.epsilon, rng,
            batch_size=getattr(args, "batch_size", None),
        )
    )
    built.graph.save(args.graph)
    meta = {
        "method": args.method,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "scale_factor": factor,
        "guaranteed": built.guaranteed,
        "build_seconds": round(seconds, 3),
        **built.graph.summary(),
    }
    _sidecar(args.graph).write_text(json.dumps(meta, indent=2))
    print(json.dumps(meta, indent=2))
    return 0


def _load_graph(points_path: str, graph_path: str):
    points = _load_points(points_path)
    dataset, factor = _dataset(points)
    graph = ProximityGraph.load(graph_path)
    if graph.n != dataset.n:
        raise SystemExit(
            f"graph has {graph.n} vertices but points file has {dataset.n}"
        )
    meta = {}
    sidecar = _sidecar(graph_path)
    if sidecar.exists():
        meta = json.loads(sidecar.read_text())
    return dataset, graph, factor, meta


def _cmd_query(args: argparse.Namespace) -> int:
    dataset, graph, factor, meta = _load_graph(args.points, args.graph)
    q = np.array(args.q, dtype=np.float64)
    rng = np.random.default_rng(args.seed)
    start = args.start if args.start is not None else int(rng.integers(graph.n))
    result = greedy(graph, dataset, start, q)
    print(
        json.dumps(
            {
                "point_id": result.point,
                "distance": result.distance / factor,
                "hops": len(result.hops),
                "distance_evals": result.distance_evals,
                "start": start,
                "epsilon": meta.get("epsilon"),
            },
            indent=2,
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    _dataset_, graph, _factor, meta = _load_graph(args.points, args.graph)
    out = dict(graph.summary())
    out.update({k: v for k, v in meta.items() if k not in out})
    print(json.dumps(out, indent=2))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    dataset, graph, _factor, meta = _load_graph(args.points, args.graph)
    epsilon = args.epsilon if args.epsilon is not None else meta.get("epsilon")
    if epsilon is None:
        raise SystemExit("no epsilon on record; pass --epsilon")
    rng = np.random.default_rng(args.seed)
    points = np.asarray(dataset.points)
    queries = list(uniform_queries(args.queries // 2, points, rng))
    queries += list(near_data_queries(args.queries - len(queries), points, rng))
    violations = find_violations(graph, dataset, queries, epsilon, stop_at=None)
    stats = measure_queries(graph, dataset, queries, epsilon=epsilon, rng=rng)
    print(
        json.dumps(
            {
                "queries": len(queries),
                "epsilon": epsilon,
                "violations": len(violations),
                "recall_at_1": stats.recall_at_1,
                "eps_satisfied_fraction": stats.epsilon_satisfied_fraction,
                "mean_distance_evals": round(stats.mean_distance_evals, 1),
            },
            indent=2,
        )
    )
    return 0 if not violations else 1


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    """Scalar loop vs lockstep batch engine on one workload: report QPS."""
    points = _load_points(args.points)
    dataset, _factor = _dataset(points)
    rng = np.random.default_rng(args.seed)
    built, build_seconds = timed(
        lambda: build(args.method, dataset, args.epsilon, rng)
    )
    graph = built.graph
    m = args.queries
    queries = np.concatenate(
        [
            uniform_queries(m // 2, points, rng),
            near_data_queries(m - m // 2, points, rng),
        ]
    )
    starts = rng.integers(graph.n, size=len(queries))

    # Warm the requested backend before the clock starts (JIT/C
    # compilation reported separately) and run one untimed warm-up
    # batch so first-call costs never pollute the QPS numbers.
    backend = args.backend
    compile_seconds = 0.0
    if backend != "numpy":
        rec = accel.warm(None if backend == "auto" else backend)
        compile_seconds = rec["compile_seconds"]
        if backend == "auto":
            backend = rec["backend"]
    warm_m = min(len(queries), 64)
    greedy_batch(
        graph, dataset, starts[:warm_m], queries[:warm_m],
        budget=args.budget, backend=backend,
    )

    t0 = time.perf_counter()
    batch = greedy_batch(
        graph, dataset, starts, queries, budget=args.budget, backend=backend
    )
    batch_seconds = time.perf_counter() - t0

    scalar_seconds = None
    identical = None
    if not args.skip_scalar:
        t0 = time.perf_counter()
        scalar = [
            greedy(graph, dataset, int(s), q, budget=args.budget)
            for q, s in zip(queries, starts)
        ]
        scalar_seconds = time.perf_counter() - t0
        identical = all(
            a.point == b.point
            and a.distance == b.distance
            and a.distance_evals == b.distance_evals
            for a, b in zip(scalar, batch)
        )

    out = {
        "method": args.method,
        "epsilon": args.epsilon,
        "n": int(graph.n),
        "edges": graph.num_edges,
        "queries": len(queries),
        "build_seconds": round(build_seconds, 3),
        "mean_distance_evals": round(
            float(np.mean([r.distance_evals for r in batch])), 1
        ),
        "batch_qps": round(len(queries) / batch_seconds, 1),
        "backend": backend,
        "jit_compile_seconds": round(compile_seconds, 3),
        "warmup_batch": warm_m,
    }
    if scalar_seconds is not None:
        out["scalar_qps"] = round(len(queries) / scalar_seconds, 1)
        out["speedup"] = round(scalar_seconds / batch_seconds, 2)
        out["results_identical"] = identical
    print(json.dumps(out, indent=2))
    return 0 if identical in (None, True) else 1


def _cmd_save_index(args: argparse.Namespace) -> int:
    """Build a full index over a points file and persist it — one .npz
    for the flat index, a manifest directory when ``--shards > 1``."""
    points = _load_points(args.points)
    if args.shards > 1:
        index, seconds = timed(
            lambda: ShardedIndex.build(
                points,
                epsilon=args.epsilon,
                method=args.method,
                seed=args.seed,
                shards=args.shards,
                workers=args.workers,
                assignment=args.assignment,
                storage=args.storage,
                **(
                    {}
                    if args.batch_size is None
                    else {"batch_size": args.batch_size}
                ),
            )
        )
    else:
        index, seconds = timed(
            lambda: ProximityGraphIndex.build(
                points,
                epsilon=args.epsilon,
                method=args.method,
                seed=args.seed,
                batch_size=args.batch_size,
                storage=args.storage,
            )
        )
    written, save_seconds = timed(
        lambda: index.save(
            args.index, format=args.format, compress=not args.no_compress
        )
    )
    out = dict(index.stats())
    out["build_seconds"] = round(seconds, 3)
    out["save_seconds"] = round(save_seconds, 3)
    out["format"] = args.format
    out["index_file"] = str(written)
    if args.batch_size is not None:
        out["batch_size"] = args.batch_size
    print(json.dumps(out, indent=2))
    return 0


def _cmd_load_index(args: argparse.Namespace) -> int:
    """Load a saved index (either kind); print its stats, optionally
    answer a query through the unified front door."""
    index = load_any(args.index, mmap=True if args.mmap else None)
    out = dict(index.stats())
    if args.q is not None:
        q = np.array(args.q, dtype=np.float64)
        params = SearchParams(
            starts=[args.start] if args.start is not None else None
        )
        result = index.search(q, k=args.k, params=params)
        out["query"] = [
            {"point_id": pid, "distance": dist} for pid, dist in result.pairs(0)
        ]
    print(json.dumps(out, indent=2))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """The unified front door from the shell: one query or a batch."""
    index = load_any(args.index)
    if args.workers is not None:
        if isinstance(index, ShardedIndex):
            index.workers = args.workers
        elif args.workers > 1:
            raise SystemExit("--workers applies to sharded indexes only")
    if (args.q is None) == (args.queries_file is None):
        raise SystemExit("pass exactly one of --q or --queries-file")
    if args.q is not None:
        queries = np.array(args.q, dtype=np.float64)
    else:
        queries = _load_points(args.queries_file)
    params = SearchParams(
        mode=args.mode,
        beam_width=args.beam_width,
        budget=args.budget,
        seed=args.seed,
        allowed_ids=args.allowed if args.allowed else None,
        rerank_factor=args.rerank_factor,
        backend=args.backend,
    )
    result, seconds = timed(lambda: index.search(queries, k=args.k, params=params))
    out = {
        "queries": result.m,
        "k": result.k,
        "mode": args.mode,
        "backend": args.backend,
        "seconds": round(seconds, 4),
        "mean_distance_evals": round(float(result.evals.mean()), 1)
        if result.m
        else 0.0,
        "results": [
            [{"id": int(v), "distance": float(d)} for v, d in result.pairs(i)]
            for i in range(result.m)
        ],
    }
    print(json.dumps(out, indent=2))
    return 0


def _cmd_add(args: argparse.Namespace) -> int:
    """Insert new points into a saved index and write it back."""
    index = load_any(args.index)
    points = _load_points(args.points)
    new_ids, seconds = timed(
        lambda: index.add(
            points,
            ids=args.ids,
            mode=args.mode,
            batch_size=args.batch_size,
        )
    )
    written = index.save(args.out or args.index)
    out = dict(index.stats())
    out["added"] = len(new_ids)
    out["new_ids"] = [int(i) for i in new_ids[:20]]
    out["add_seconds"] = round(seconds, 3)
    out["index_file"] = str(written)
    print(json.dumps(out, indent=2))
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    """Tombstone (and optionally compact away) points of a saved index."""
    index = load_any(args.index)
    try:
        removed = index.delete(args.ids)
    except KeyError as exc:
        raise SystemExit(str(exc))
    if args.compact:
        index.compact()
    written = index.save(args.out or args.index)
    out = dict(index.stats())
    out["deleted"] = removed
    out["compacted"] = bool(args.compact)
    out["index_file"] = str(written)
    print(json.dumps(out, indent=2))
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    """Kind, counts, storage mode, and the memory breakdown of a saved
    index (either kind); ``--validate`` adds the structural integrity
    checks (CSR shape, id-map/tombstone consistency, manifest shard
    agreement) and exits nonzero on any violated invariant."""
    if getattr(args, "validate", False):
        # On-disk agreement is checked *before* loading: a manifest
        # whose shard count disagrees with its files — or a v5 disk
        # directory whose header disagrees with its raw array files —
        # should name the invariant, not die inside the loader.
        if Path(args.index).is_dir():
            from repro.core.integrity import (
                check_disk_layout,
                check_sharded_manifest,
            )
            from repro.core.persistence import DISK_HEADER_NAME

            pre = (
                check_disk_layout(args.index)
                if (Path(args.index) / DISK_HEADER_NAME).is_file()
                else check_sharded_manifest(args.index)
            )
            if pre:
                for violation in pre:
                    print(f"INTEGRITY VIOLATION: {violation}", file=sys.stderr)
                return 1
    index = load_any(args.index)
    out = {
        "kind": "sharded" if isinstance(index, ShardedIndex) else "flat",
        "n": int(index.n),
        "active": int(index.active_count),
        "tombstones": int(index.tombstone_count),
        "epsilon": float(index.epsilon),
        "storage": storage_breakdown(index),
        "accel": accel.backend_status(),
    }
    if isinstance(index, ShardedIndex):
        out["shards"] = index.n_shards
        out["builder"] = index.shards[0].built.name
    else:
        out["builder"] = index.built.name
    if getattr(args, "validate", False):
        from repro.core.integrity import integrity_report

        report = integrity_report(index, path=args.index)
        out["integrity"] = report
        print(json.dumps(out, indent=2))
        if not report["ok"]:
            for violation in report["violations"]:
                print(f"INTEGRITY VIOLATION: {violation}", file=sys.stderr)
            return 1
        return 0
    print(json.dumps(out, indent=2))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project-contract linter; nonzero on any unsuppressed
    finding.  See ``repro.analysis.lint`` for the rules."""
    from repro.analysis.lint import (
        ALL_RULES,
        LintConfig,
        LintError,
        format_findings,
        lint_paths,
    )

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.id}: {' '.join(cls.rationale.split())}")
        return 0
    if not args.paths:
        print("error: no paths to lint (try: repro lint src/repro)",
              file=sys.stderr)
        return 2
    config = LintConfig(
        select=frozenset(args.select or ()),
        ignore=frozenset(args.ignore or ()),
    )
    try:
        report = lint_paths(args.paths, config=config)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        format_findings(
            report, fmt=args.format, show_suppressed=args.show_suppressed
        )
    )
    return report.exit_code


def _cmd_bench_storage(args: argparse.Namespace) -> int:
    """Flat vs SQ8 vs PQ on one workload: recall@k (rerank on), memory
    breakdown, and search wall time — one graph, three storages."""
    points = _load_points(args.points)
    rng = np.random.default_rng(args.seed)
    queries = np.concatenate(
        [
            uniform_queries(args.queries // 2, points, rng),
            near_data_queries(args.queries - args.queries // 2, points, rng),
        ]
    )
    gt, _ = compute_ground_truth_k(
        Dataset(EuclideanMetric(), points), queries, k=args.k
    )
    index, build_seconds = timed(
        lambda: ProximityGraphIndex.build(
            points, epsilon=args.epsilon, method=args.method, seed=args.seed
        )
    )
    params = SearchParams(
        beam_width=args.beam_width, seed=args.seed,
        rerank_factor=args.rerank_factor,
    )
    rows = []
    for kind in STORAGE_KINDS:
        index.set_storage(kind)
        recall, seconds = timed(
            lambda: recall_at_k(index, queries, gt, args.k, params=params)
        )
        mem = storage_breakdown(index)
        rows.append(
            {
                "storage": kind,
                f"recall_at_{args.k}": round(recall, 4),
                "bytes_per_vector": mem["traversal_bytes_per_vector"],
                "compression": mem["compression"],
                "search_seconds": round(seconds, 3),
            }
        )
    out = {
        "method": args.method,
        "n": int(len(points)),
        "queries": len(queries),
        "beam_width": args.beam_width,
        "rerank_factor": args.rerank_factor,
        "build_seconds": round(build_seconds, 3),
        "storages": rows,
    }
    print(json.dumps(out, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a saved index over HTTP with micro-batched search."""
    import asyncio

    from repro.serve import IndexHolder, SearchServer

    index = load_any(args.index, mmap=True if args.mmap else None)
    if args.workers is not None and isinstance(index, ShardedIndex):
        index.workers = args.workers
    server = SearchServer(
        IndexHolder(index),
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        search_workers=args.search_workers,
    )
    try:
        asyncio.run(server.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench_build(args: argparse.Namespace) -> int:
    """Sequential vs batched build of one insertion-based builder:
    wall-clock build time plus recall of both graphs on one workload.
    With ``--shards > 1`` the comparison is flat-vs-sharded instead:
    the default flat build against the sharded parallel build engine
    (``--workers`` processes), recall measured through each front door.
    """
    points = _load_points(args.points)
    dataset, _factor = _dataset(points)
    rng = np.random.default_rng(args.seed)
    queries = np.concatenate(
        [
            uniform_queries(args.queries // 2, points, rng),
            near_data_queries(args.queries - args.queries // 2, points, rng),
        ]
    )
    starts = rng.integers(dataset.n, size=len(queries))
    gt, _gt_dists = compute_ground_truth_k(dataset, queries, k=args.k)

    def recall(graph) -> float:
        found = beam_search_batch(
            graph, dataset, starts, queries, beam_width=max(args.k * 4, 32),
            k=args.k,
        )
        hits = sum(
            len({v for v, _ in pairs} & set(gt[i].tolist()))
            for i, (pairs, _evals) in enumerate(found)
        )
        return hits / (len(queries) * args.k)

    def index_recall(index) -> float:
        return recall_at_k(
            index, queries, gt, args.k,
            params=SearchParams(beam_width=max(args.k * 4, 32), seed=args.seed),
        )

    if args.shards > 1:
        flat, flat_seconds = timed(
            lambda: ProximityGraphIndex.build(
                points, epsilon=args.epsilon, method=args.method, seed=args.seed
            )
        )
        sharded, sharded_seconds = timed(
            lambda: ShardedIndex.build(
                points, epsilon=args.epsilon, method=args.method,
                seed=args.seed, shards=args.shards, workers=args.workers,
            )
        )
        out = {
            "method": args.method,
            "n": dataset.n,
            "shards": args.shards,
            "workers": args.workers,
            "flat_seconds": round(flat_seconds, 3),
            "sharded_seconds": round(sharded_seconds, 3),
            "speedup": round(flat_seconds / sharded_seconds, 2),
            f"flat_recall_at_{args.k}": round(index_recall(flat), 4),
            f"sharded_recall_at_{args.k}": round(index_recall(sharded), 4),
        }
        sharded.close()
        print(json.dumps(out, indent=2))
        return 0

    seq, seq_seconds = timed(
        lambda: build(args.method, dataset, args.epsilon, np.random.default_rng(args.seed))
    )
    bat, bat_seconds = timed(
        lambda: build(
            args.method, dataset, args.epsilon, np.random.default_rng(args.seed),
            batch_size=args.batch_size,
        )
    )
    out = {
        "method": args.method,
        "n": dataset.n,
        "batch_size": args.batch_size,
        "sequential_seconds": round(seq_seconds, 3),
        "batched_seconds": round(bat_seconds, 3),
        "speedup": round(seq_seconds / bat_seconds, 2),
        f"sequential_recall_at_{args.k}": round(recall(seq.graph), 4),
        f"batched_recall_at_{args.k}": round(recall(bat.graph), 4),
    }
    if args.backend is not None and args.backend != "numpy":
        # Warm (compile + self-check) BEFORE the clock so the timing
        # below measures steady-state throughput, not JIT latency...
        compile_seconds = accel.warm(args.backend)["compile_seconds"]
        resolved = accel.resolve_backend(args.backend)
        # ...and run one small untimed warm-up build so any remaining
        # lazy state (kernel caches, scratch buffers) is paid here.
        warm_n = min(dataset.n, 2000)
        build(
            args.method,
            Dataset(dataset.metric, np.asarray(dataset.points)[:warm_n]),
            args.epsilon, np.random.default_rng(args.seed),
            batch_size=args.batch_size, backend=resolved,
        )
        acc, acc_seconds = timed(
            lambda: build(
                args.method, dataset, args.epsilon,
                np.random.default_rng(args.seed),
                batch_size=args.batch_size, backend=resolved,
            )
        )
        out.update({
            "backend": resolved,
            "jit_compile_seconds": round(compile_seconds, 3),
            "compiled_seconds": round(acc_seconds, 3),
            "compiled_speedup": round(bat_seconds / acc_seconds, 2),
            f"compiled_recall_at_{args.k}": round(recall(acc.graph), 4),
        })
    print(json.dumps(out, indent=2))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proximity graphs for similarity search (Lu & Tao, PODS 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("builders", help="list registered graph builders")
    p.set_defaults(fn=_cmd_builders)

    p = sub.add_parser("build", help="build a graph from an (n, d) .npy file")
    p.add_argument("points")
    p.add_argument("graph", help="output .npz path")
    p.add_argument("--method", default="gnet", choices=available_builders())
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--batch-size", type=int, default=None,
        help="wave size for the batched construction engine "
        f"(insertion builders only: {sorted(BATCHED_BUILDERS)})",
    )
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser(
        "save-index",
        help="build a full index (graph + points + provenance) into one .npz",
    )
    p.add_argument("points")
    p.add_argument("index", help="output index .npz path")
    p.add_argument("--method", default="gnet", choices=available_builders())
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--shards", type=int, default=1,
                   help="partition into this many shards (> 1 builds a "
                   "ShardedIndex, saved as a manifest directory)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for the sharded build")
    p.add_argument("--assignment", default="random",
                   choices=["random", "kmeans"],
                   help="shard assignment policy")
    p.add_argument("--storage", default="flat", choices=list(STORAGE_KINDS),
                   help="vector storage: flat (exact), sq8 (8-bit scalar "
                   "quantization), pq (product quantization + ADC)")
    p.add_argument("--format", default="npz", choices=["npz", "disk"],
                   help="persistence format: npz (single compressed file, "
                   "v4) or disk (v5 directory of raw array files that "
                   "load/serve --mmap attach lazily)")
    p.add_argument("--no-compress", action="store_true",
                   help="npz format only: write np.savez instead of "
                   "savez_compressed (bigger file, much faster save)")
    p.set_defaults(fn=_cmd_save_index)

    p = sub.add_parser(
        "load-index",
        help="load a saved index; print stats and optionally answer a query",
    )
    p.add_argument("index")
    p.add_argument("--q", type=float, nargs="+", default=None)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--start", type=int, default=None)
    p.add_argument("--mmap", action="store_true",
                   help="lazily attach a disk-format (v5) index via "
                   "np.memmap instead of reading it into RAM (error on "
                   ".npz files — re-save with --format disk)")
    p.set_defaults(fn=_cmd_load_index)

    p = sub.add_parser(
        "search",
        help="unified search over a saved index (single query or batch)",
    )
    p.add_argument("index")
    p.add_argument("--q", type=float, nargs="+", default=None,
                   help="one query point, inline")
    p.add_argument("--queries-file", default=None,
                   help="an (m, d) .npy batch of query points")
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--mode", default="auto", choices=["auto", "greedy", "beam"])
    p.add_argument("--beam-width", type=int, default=None)
    p.add_argument("--budget", type=int, default=None,
                   help="distance-evaluation cap per query")
    p.add_argument("--seed", type=int, default=None,
                   help="seed for default start vertices")
    p.add_argument("--allowed", type=int, nargs="+", default=None,
                   help="restrict results to these external ids")
    p.add_argument("--workers", type=int, default=None,
                   help="fan a sharded index's search out over this "
                   "many worker processes (sharded indexes only)")
    p.add_argument("--rerank-factor", type=int, default=None,
                   help="over-fetch multiplier of the compressed-traversal "
                   "+ exact-rerank pipeline (quantized indexes; default: "
                   "the storage's own, 2 for sq8 / 4 for pq)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "numpy", "numba", "cffi", "python"],
                   help="traversal backend: 'auto' uses the best warmed "
                   "compiled backend (numpy until repro.accel.warm() ran), "
                   "'numpy' pins the pure-numpy engines, a backend name "
                   "forces it (warming on demand; error if unavailable)")
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser("index", help="saved-index utilities")
    isub = p.add_subparsers(dest="index_command", required=True)
    pi = isub.add_parser(
        "info",
        help="kind, point counts, storage mode, and memory breakdown",
    )
    pi.add_argument("index")
    pi.add_argument(
        "--validate", action="store_true",
        help="run structural integrity checks (CSR offsets/targets, "
             "tombstone/id-map consistency, manifest shard agreement); "
             "exits 1 naming every violated invariant",
    )
    pi.set_defaults(fn=_cmd_index_info)

    p = sub.add_parser(
        "lint",
        help="project-contract linter (determinism, async/spawn safety, "
             "arena hygiene, kernel parity, typing); nonzero on findings",
    )
    p.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    p.add_argument(
        "--select", nargs="*", metavar="RULE",
        help="run only these rule ids (default: all)",
    )
    p.add_argument(
        "--ignore", nargs="*", metavar="RULE", help="skip these rule ids"
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    p.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by # repro: ignore[...]",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its rationale and exit",
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "add", help="insert an (n, d) .npy of new points into a saved index"
    )
    p.add_argument("index")
    p.add_argument("points")
    p.add_argument("--ids", type=int, nargs="+", default=None,
                   help="external ids for the new points (default: fresh)")
    p.add_argument("--mode", default="auto",
                   choices=["auto", "repair", "dynamic"])
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--out", default=None,
                   help="write here instead of overwriting the index")
    p.set_defaults(fn=_cmd_add)

    p = sub.add_parser(
        "delete", help="tombstone points of a saved index by external id"
    )
    p.add_argument("index")
    p.add_argument("--ids", type=int, nargs="+", required=True)
    p.add_argument("--compact", action="store_true",
                   help="rebuild over the survivors instead of tombstoning")
    p.add_argument("--out", default=None,
                   help="write here instead of overwriting the index")
    p.set_defaults(fn=_cmd_delete)

    p = sub.add_parser(
        "serve",
        help="serve a saved index over HTTP (coalesced micro-batching; "
        "POST /search /add /delete, GET /healthz /stats)",
    )
    p.add_argument("index", help="saved index (.npz file, manifest dir, "
                   "or v5 disk dir)")
    p.add_argument("--mmap", action="store_true",
                   help="serve a disk-format (v5) index straight off its "
                   "memory-mapped files: millisecond start, vectors paged "
                   "in only at rerank; add/delete still work (mutations "
                   "materialize copy-on-write, never write the mapping)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--max-batch", type=int, default=64,
                   help="flush a coalescing bucket at this many requests")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="longest a lone request waits for batch-mates")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="LRU query-cache entries (0 disables)")
    p.add_argument("--search-workers", type=int, default=2,
                   help="threads running coalesced search batches")
    p.add_argument("--workers", type=int, default=None,
                   help="fan-out worker processes (sharded indexes only)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("query", help="greedy (1+eps)-ANN query")
    p.add_argument("points")
    p.add_argument("graph")
    p.add_argument("--q", type=float, nargs="+", required=True)
    p.add_argument("--start", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser("stats", help="structural statistics of a saved graph")
    p.add_argument("points")
    p.add_argument("graph")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "validate", help="navigability check (exit 1 on violations)"
    )
    p.add_argument("points")
    p.add_argument("graph")
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "bench-throughput",
        help="QPS of the lockstep batch engine vs the scalar greedy loop",
    )
    p.add_argument("points")
    p.add_argument("--method", default="vamana", choices=available_builders())
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--queries", type=int, default=1000)
    p.add_argument("--budget", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--skip-scalar",
        action="store_true",
        help="report only the batch engine (skip the slow scalar baseline)",
    )
    p.add_argument("--backend", default="numpy",
                   choices=["auto", "numpy", "numba", "cffi", "python"],
                   help="traversal backend for the batch engine; non-numpy "
                   "backends are warmed before the clock starts and their "
                   "compile time is reported as jit_compile_seconds")
    p.set_defaults(fn=_cmd_bench_throughput)

    p = sub.add_parser(
        "bench-build",
        help="sequential vs batched construction: build time and recall",
    )
    p.add_argument("points")
    p.add_argument("--method", default="vamana", choices=sorted(BATCHED_BUILDERS))
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--batch-size", type=int, default=500)
    p.add_argument("--queries", type=int, default=200)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="> 1 benches the sharded parallel build against "
                   "the flat default build instead")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for the sharded side")
    p.add_argument("--backend", default=None,
                   help="accel backend for a third, compiled-build leg "
                   "(numba/cffi/python/auto); warmed before the clock — "
                   "JIT/C compile time reports as jit_compile_seconds and "
                   "one untimed warm-up build runs first")
    p.set_defaults(fn=_cmd_bench_build)

    p = sub.add_parser(
        "bench-storage",
        help="flat vs sq8 vs pq on one graph: recall, memory, wall time",
    )
    p.add_argument("points")
    p.add_argument("--method", default="vamana", choices=available_builders())
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--queries", type=int, default=200)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--beam-width", type=int, default=64)
    p.add_argument("--rerank-factor", type=int, default=None,
                   help="rerank over-fetch (default: each storage's own)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_bench_storage)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
