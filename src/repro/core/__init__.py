"""Public API: the index facade, the builder registry, and measurement
helpers."""

from repro.core.builders import (
    BATCHED_BUILDERS,
    BuiltGraph,
    available_builders,
    build,
    register_builder,
)
from repro.core.index import ProximityGraphIndex
from repro.core.interface import SearchableIndex
from repro.core.persistence import load_any
from repro.core.search import IdMap, SearchParams, SearchResult
from repro.core.sharded import ShardedIndex
from repro.core.stats import (
    QueryStats,
    compute_ground_truth,
    compute_ground_truth_k,
    measure_queries,
    storage_breakdown,
    timed,
)

__all__ = [
    "BATCHED_BUILDERS",
    "BuiltGraph",
    "IdMap",
    "ProximityGraphIndex",
    "QueryStats",
    "SearchParams",
    "SearchResult",
    "SearchableIndex",
    "ShardedIndex",
    "available_builders",
    "build",
    "compute_ground_truth",
    "compute_ground_truth_k",
    "load_any",
    "measure_queries",
    "register_builder",
    "storage_breakdown",
    "timed",
]
