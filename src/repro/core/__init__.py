"""Public API: the index facade, the builder registry, and measurement
helpers."""

from repro.core.builders import BuiltGraph, available_builders, build, register_builder
from repro.core.index import ProximityGraphIndex
from repro.core.stats import QueryStats, compute_ground_truth, measure_queries, timed

__all__ = [
    "BuiltGraph",
    "ProximityGraphIndex",
    "QueryStats",
    "available_builders",
    "build",
    "compute_ground_truth",
    "measure_queries",
    "register_builder",
    "timed",
]
