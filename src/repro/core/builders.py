"""Registry of graph builders behind a single uniform signature.

Every construction in the library — the paper's three (G_net, theta,
merged) and the baselines — is reachable as

    ``build(name, dataset, epsilon, rng, **options) -> BuiltGraph``

which is what the :class:`~repro.core.index.ProximityGraphIndex` facade
and all benches use.  ``BuiltGraph.meta`` carries builder-specific
artifacts (parameters, net hierarchy, jackpot mask, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.baselines.diskann import build_diskann_slow
from repro.baselines.hnsw import HNSWIndex
from repro.baselines.nsw import NSWIndex
from repro.baselines.trivial import build_complete_graph, build_knn_digraph
from repro.baselines.vamana import VamanaIndex
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import build_gnet
from repro.graphs.merged import build_merged_graph
from repro.graphs.theta import build_theta_graph, theta_for_epsilon
from repro.metrics.base import Dataset

__all__ = [
    "BuiltGraph",
    "BUILDERS",
    "BATCHED_BUILDERS",
    "build",
    "available_builders",
    "register_builder",
]


@dataclass
class BuiltGraph:
    """A constructed graph plus its provenance."""

    name: str
    graph: ProximityGraph
    epsilon: float
    guaranteed: bool  # does this construction carry a (1+eps)-PG proof?
    meta: dict[str, Any] = field(default_factory=dict)
    backend: Any = None  # native index object (HNSW/NSW) when applicable
    # The exact keyword options the builder ran with — recorded by
    # build() so a mutable index can replay the construction (compact()
    # rebuilds over the surviving points with the same knobs).
    options: dict[str, Any] = field(default_factory=dict)


BuilderFn = Callable[..., BuiltGraph]
BUILDERS: dict[str, BuilderFn] = {}


def register_builder(name: str) -> Callable[[BuilderFn], BuilderFn]:
    def decorate(fn: BuilderFn) -> BuilderFn:
        if name in BUILDERS:
            raise ValueError(f"builder {name!r} already registered")
        BUILDERS[name] = fn
        return fn

    return decorate


def available_builders() -> list[str]:
    return sorted(BUILDERS)


# Builders with an insertion loop the batched construction engine
# (repro.graphs.engine.bulk_insert) can drive in waves.
BATCHED_BUILDERS = frozenset({"hnsw", "nsw", "vamana", "diskann"})


def build(
    name: str,
    dataset: Dataset,
    epsilon: float,
    rng: np.random.Generator | None = None,
    batch_size: int | None = None,
    **options: Any,
) -> BuiltGraph:
    """Build graph ``name`` over ``dataset``; returns it with provenance.

    ``batch_size`` selects the batched construction engine for the
    insertion-based builders (``hnsw``, ``nsw``, ``vamana``,
    ``diskann``): points are inserted in waves of ``batch_size``, each
    wave's candidates located with one lockstep beam search against the
    frozen prefix graph and its distance work vectorized across the
    wave.  ``batch_size=1`` reproduces the sequential build edge-for-edge;
    larger waves build several times faster but locate candidates
    against a prefix that is up to one wave stale, which can shave a
    hair off recall — empirically < 0.01 recall@10 at ``batch_size <=
    n/10`` (see ``benchmarks/bench_build_throughput.py`` and the recall
    regression suite).  Passing ``batch_size`` to any other builder
    raises ``ValueError``: the paper's constructions (gnet/theta/merged)
    are not insertion-ordered, so the knob has no meaning there.
    """
    if name not in BUILDERS:
        raise ValueError(f"unknown builder {name!r}; have {available_builders()}")
    if batch_size is not None:
        if name not in BATCHED_BUILDERS:
            raise ValueError(
                f"builder {name!r} does not support batched construction; "
                f"batch_size applies to {sorted(BATCHED_BUILDERS)}"
            )
        options["batch_size"] = batch_size
    built = BUILDERS[name](
        dataset=dataset,
        epsilon=epsilon,
        rng=rng or np.random.default_rng(0),
        **options,
    )
    built.options = dict(options)
    # Finished graphs are CSR-native: freeze the builder's mutable buffer
    # so queries gather from flat storage (mutation transparently thaws).
    built.graph.freeze()
    return built


# ----------------------------------------------------------------------
# The paper's constructions
# ----------------------------------------------------------------------


@register_builder("gnet")
def _build_gnet(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Theorem 1.1: the net-hierarchy graph (any doubling metric)."""
    result = build_gnet(dataset, epsilon, **options)
    return BuiltGraph(
        name="gnet",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=True,
        meta={
            "params": result.params,
            "hierarchy": result.hierarchy,
            "level_sizes": result.level_sizes,
            "level_edge_counts": result.level_edge_counts,
        },
    )


@register_builder("theta")
def _build_theta(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Lemma 5.1: the (eps/32)-graph (Euclidean; small but maybe slow)."""
    theta = options.pop("theta", theta_for_epsilon(epsilon))
    result = build_theta_graph(dataset, theta, **options)
    guaranteed = theta <= theta_for_epsilon(epsilon) + 1e-15
    return BuiltGraph(
        name="theta",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=guaranteed,
        meta={"theta": result.theta, "cones": result.cones},
    )


@register_builder("merged")
def _build_merged(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Theorem 1.3: jackpot-sampled G_net merged with the theta-graph."""
    result = build_merged_graph(dataset, epsilon, rng, **options)
    return BuiltGraph(
        name="merged",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=True,
        meta={
            "tau": result.tau,
            "jackpot": result.jackpot,
            "params": result.params,
            "runs_edge_counts": result.runs_edge_counts,
            "gnet_edges": result.gnet.graph.num_edges,
            "theta_edges": result.geo.graph.num_edges,
        },
    )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


@register_builder("diskann")
def _build_diskann(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Indyk-Xu slow-preprocessing DiskANN (guaranteed, Omega(n^2) build)."""
    result = build_diskann_slow(dataset, epsilon=epsilon, **options)
    guaranteed = options.get("max_degree") is None
    return BuiltGraph(
        name="diskann",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=guaranteed,
        meta={"alpha": result.alpha, "guarantee": result.guarantee},
    )


@register_builder("hnsw")
def _build_hnsw(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """HNSW (no guarantee; the empirical champion)."""
    index = HNSWIndex(dataset, rng, **options)
    return BuiltGraph(
        name="hnsw",
        graph=index.base_layer_graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"m": index.m, "max_level": index.max_level},
        backend=index,
    )


@register_builder("nsw")
def _build_nsw(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Flat NSW (no guarantee)."""
    index = NSWIndex(dataset, rng, **options)
    return BuiltGraph(
        name="nsw",
        graph=index.graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"m": index.m},
        backend=index,
    )


@register_builder("vamana")
def _build_vamana(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Practical DiskANN (Vamana [19]): fast build, degree-capped, no
    worst-case guarantee — the regime Theorem 1.1 renders unnecessary."""
    index = VamanaIndex(dataset, rng, **options)
    return BuiltGraph(
        name="vamana",
        graph=index.graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"max_degree": index.max_degree, "alpha": index.alpha},
        backend=index,
    )


@register_builder("knn")
def _build_knn(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """k-NN digraph (negative control: not navigable in general)."""
    k = options.pop("k", 8)
    return BuiltGraph(
        name="knn",
        graph=build_knn_digraph(dataset, k=k),
        epsilon=epsilon,
        guaranteed=False,
        meta={"k": k},
    )


@register_builder("complete")
def _build_complete(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Complete digraph (a PG for every eps; Theta(n^2) edges)."""
    return BuiltGraph(
        name="complete",
        graph=build_complete_graph(dataset),
        epsilon=epsilon,
        guaranteed=True,
        meta={},
    )
