"""Registry of graph builders behind a single uniform signature.

Every construction in the library — the paper's three (G_net, theta,
merged) and the baselines — is reachable as

    ``build(name, dataset, epsilon, rng, **options) -> BuiltGraph``

which is what the :class:`~repro.core.index.ProximityGraphIndex` facade
and all benches use.  ``BuiltGraph.meta`` carries builder-specific
artifacts (parameters, net hierarchy, jackpot mask, ...).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.baselines.diskann import build_diskann_slow
from repro.baselines.hnsw import HNSWIndex
from repro.baselines.nsw import NSWIndex
from repro.baselines.trivial import build_complete_graph, build_knn_digraph
from repro.baselines.vamana import VamanaIndex
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import build_gnet
from repro.graphs.merged import build_merged_graph
from repro.graphs.theta import build_theta_graph, theta_for_epsilon
from repro.metrics.base import Dataset

__all__ = [
    "BuiltGraph",
    "BUILDERS",
    "BUILDER_OPTIONS",
    "BATCHED_BUILDERS",
    "build",
    "available_builders",
    "builder_options",
    "register_builder",
    "validate_builder_options",
]


@dataclass
class BuiltGraph:
    """A constructed graph plus its provenance."""

    name: str
    graph: ProximityGraph
    epsilon: float
    guaranteed: bool  # does this construction carry a (1+eps)-PG proof?
    meta: dict[str, Any] = field(default_factory=dict)
    backend: Any = None  # native index object (HNSW/NSW) when applicable
    # The exact keyword options the builder ran with — recorded by
    # build() so a mutable index can replay the construction (compact()
    # rebuilds over the surviving points with the same knobs).
    options: dict[str, Any] = field(default_factory=dict)


BuilderFn = Callable[..., BuiltGraph]
BUILDERS: dict[str, BuilderFn] = {}

# Per-builder allow-list of ``**options`` keyword names, or ``None`` for
# builders registered without a declaration (no validation — an escape
# hatch for external registrations).  Populated by ``register_builder``
# from the *delegate* signatures (``build_gnet``, ``VamanaIndex``, ...),
# so the front-door check can never drift from what the builder accepts.
BUILDER_OPTIONS: dict[str, frozenset[str] | None] = {}

# Parameters every builder receives positionally from build(); they are
# never valid **options keywords.
_RESERVED_PARAMS = frozenset({"self", "dataset", "epsilon", "rng"})


def register_builder(
    name: str,
    *,
    options_from: Iterable[Callable] | None = None,
    extra_options: Iterable[str] = (),
) -> Callable[[BuilderFn], BuilderFn]:
    """Register a builder, declaring which ``**options`` it accepts.

    ``options_from`` lists the callables the builder forwards its
    options to (their keyword parameters, minus the reserved
    dataset/epsilon/rng slots, become the allow-list); ``extra_options``
    adds names the wrapper itself pops.  Leaving both unset registers
    the builder *unvalidated* — any option passes through, and a typo
    surfaces as the delegate's own ``TypeError``.
    """

    def decorate(fn: BuilderFn) -> BuilderFn:
        if name in BUILDERS:
            raise ValueError(f"builder {name!r} already registered")
        BUILDERS[name] = fn
        if options_from is None and not extra_options:
            BUILDER_OPTIONS[name] = None
            return fn
        allowed = set(extra_options)
        for target in options_from or ():
            for pname, p in inspect.signature(target).parameters.items():
                if pname in _RESERVED_PARAMS or p.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD,
                ):
                    continue
                allowed.add(pname)
        BUILDER_OPTIONS[name] = frozenset(allowed)
        return fn

    return decorate


def available_builders() -> list[str]:
    return sorted(BUILDERS)


def builder_options(name: str) -> list[str] | None:
    """The valid ``**options`` names of builder ``name`` (sorted), or
    ``None`` when the builder was registered without a declaration."""
    if name not in BUILDERS:
        raise ValueError(f"unknown builder {name!r}; have {available_builders()}")
    allowed = BUILDER_OPTIONS.get(name)
    return sorted(allowed) if allowed is not None else None


def validate_builder_options(name: str, options: dict[str, Any]) -> None:
    """Front-door validation of a prospective ``build(name, **options)``.

    Raises a ``ValueError`` naming the offending keyword(s), the
    builder's valid options, and the registered builder names — instead
    of the confusing deep ``TypeError`` (``build_gnet() got an
    unexpected keyword argument ...``) a typo used to surface as, often
    only *after* an expensive normalization pass.  Cheap and data-free,
    so callers run it before any heavy work.
    """
    if name not in BUILDERS:
        raise ValueError(f"unknown builder {name!r}; have {available_builders()}")
    if "batch_size" in options and name not in BATCHED_BUILDERS:
        raise ValueError(
            f"builder {name!r} does not support batched construction; "
            f"batch_size applies to {sorted(BATCHED_BUILDERS)}"
        )
    if "backend" in options and name not in BATCHED_BUILDERS:
        raise ValueError(
            f"builder {name!r} has no accelerated construction path; "
            f"backend applies to {sorted(BATCHED_BUILDERS)}"
        )
    allowed = BUILDER_OPTIONS.get(name)
    if allowed is None:
        return
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        accepts = (
            f"valid options for {name!r}: {sorted(allowed)}"
            if allowed
            else f"builder {name!r} takes no options"
        )
        raise ValueError(
            f"unknown build option(s) {unknown} for builder {name!r}; "
            f"{accepts}.  Select the construction itself with "
            f"method=<one of {available_builders()}>"
        )


# Builders with an insertion loop the batched construction engine
# (repro.graphs.engine.bulk_insert) can drive in waves.
BATCHED_BUILDERS = frozenset({"hnsw", "nsw", "vamana", "diskann"})


def build(
    name: str,
    dataset: Dataset,
    epsilon: float,
    rng: np.random.Generator | None = None,
    batch_size: int | None = None,
    backend: str | None = None,
    **options: Any,
) -> BuiltGraph:
    """Build graph ``name`` over ``dataset``; returns it with provenance.

    ``batch_size`` selects the batched construction engine for the
    insertion-based builders (``hnsw``, ``nsw``, ``vamana``,
    ``diskann``): points are inserted in waves of ``batch_size``, each
    wave's candidates located with one lockstep beam search against the
    frozen prefix graph and its distance work vectorized across the
    wave.  ``batch_size=1`` reproduces the sequential build edge-for-edge;
    larger waves build several times faster but locate candidates
    against a prefix that is up to one wave stale, which can shave a
    hair off recall — empirically < 0.01 recall@10 at ``batch_size <=
    n/10`` (see ``benchmarks/bench_build_throughput.py`` and the recall
    regression suite).  Passing ``batch_size`` to any other builder
    raises ``ValueError``: the paper's constructions (gnet/theta/merged)
    are not insertion-ordered, so the knob has no meaning there.

    ``backend`` selects the accel backend for the batched builders'
    construction inner loops (candidate location + RobustPrune):
    ``None``/``"numpy"`` run the pinned numpy engines, ``"auto"`` the
    best warmed compiled backend (falling back silently), and an
    explicit name (``"numba"``/``"cffi"``/``"python"``) that backend,
    warmed on demand, raising when unavailable.  Like ``batch_size``
    it is rejected for builders without an insertion loop.
    """
    if name not in BUILDERS:
        raise ValueError(f"unknown builder {name!r}; have {available_builders()}")
    if batch_size is not None:
        if name not in BATCHED_BUILDERS:
            raise ValueError(
                f"builder {name!r} does not support batched construction; "
                f"batch_size applies to {sorted(BATCHED_BUILDERS)}"
            )
        options["batch_size"] = batch_size
    if backend is not None:
        if name not in BATCHED_BUILDERS:
            raise ValueError(
                f"builder {name!r} has no accelerated construction path; "
                f"backend applies to {sorted(BATCHED_BUILDERS)}"
            )
        options["backend"] = backend
    validate_builder_options(name, options)
    built = BUILDERS[name](
        dataset=dataset,
        epsilon=epsilon,
        rng=rng or np.random.default_rng(0),
        **options,
    )
    built.options = dict(options)
    # Finished graphs are CSR-native: freeze the builder's mutable buffer
    # so queries gather from flat storage (mutation transparently thaws).
    built.graph.freeze()
    return built


# ----------------------------------------------------------------------
# The paper's constructions
# ----------------------------------------------------------------------


@register_builder("gnet", options_from=(build_gnet,))
def _build_gnet(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Theorem 1.1: the net-hierarchy graph (any doubling metric)."""
    result = build_gnet(dataset, epsilon, **options)
    return BuiltGraph(
        name="gnet",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=True,
        meta={
            "params": result.params,
            "hierarchy": result.hierarchy,
            "level_sizes": result.level_sizes,
            "level_edge_counts": result.level_edge_counts,
        },
    )


@register_builder("theta", options_from=(build_theta_graph,))
def _build_theta(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Lemma 5.1: the (eps/32)-graph (Euclidean; small but maybe slow)."""
    theta = options.pop("theta", theta_for_epsilon(epsilon))
    result = build_theta_graph(dataset, theta, **options)
    guaranteed = theta <= theta_for_epsilon(epsilon) + 1e-15
    return BuiltGraph(
        name="theta",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=guaranteed,
        meta={"theta": result.theta, "cones": result.cones},
    )


@register_builder("merged", options_from=(build_merged_graph,))
def _build_merged(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Theorem 1.3: jackpot-sampled G_net merged with the theta-graph."""
    result = build_merged_graph(dataset, epsilon, rng, **options)
    return BuiltGraph(
        name="merged",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=True,
        meta={
            "tau": result.tau,
            "jackpot": result.jackpot,
            "params": result.params,
            "runs_edge_counts": result.runs_edge_counts,
            "gnet_edges": result.gnet.graph.num_edges,
            "theta_edges": result.geo.graph.num_edges,
        },
    )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


@register_builder("diskann", options_from=(build_diskann_slow,))
def _build_diskann(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Indyk-Xu slow-preprocessing DiskANN (guaranteed, Omega(n^2) build)."""
    result = build_diskann_slow(dataset, epsilon=epsilon, **options)
    guaranteed = options.get("max_degree") is None
    return BuiltGraph(
        name="diskann",
        graph=result.graph,
        epsilon=epsilon,
        guaranteed=guaranteed,
        meta={"alpha": result.alpha, "guarantee": result.guarantee},
    )


@register_builder("hnsw", options_from=(HNSWIndex,))
def _build_hnsw(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """HNSW (no guarantee; the empirical champion)."""
    index = HNSWIndex(dataset, rng, **options)
    return BuiltGraph(
        name="hnsw",
        graph=index.base_layer_graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"m": index.m, "max_level": index.max_level},
        backend=index,
    )


@register_builder("nsw", options_from=(NSWIndex,))
def _build_nsw(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Flat NSW (no guarantee)."""
    index = NSWIndex(dataset, rng, **options)
    return BuiltGraph(
        name="nsw",
        graph=index.graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"m": index.m},
        backend=index,
    )


@register_builder("vamana", options_from=(VamanaIndex,))
def _build_vamana(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Practical DiskANN (Vamana [19]): fast build, degree-capped, no
    worst-case guarantee — the regime Theorem 1.1 renders unnecessary."""
    index = VamanaIndex(dataset, rng, **options)
    return BuiltGraph(
        name="vamana",
        graph=index.graph(),
        epsilon=epsilon,
        guaranteed=False,
        meta={"max_degree": index.max_degree, "alpha": index.alpha},
        backend=index,
    )


@register_builder("knn", options_from=(), extra_options=("k",))
def _build_knn(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """k-NN digraph (negative control: not navigable in general)."""
    k = options.pop("k", 8)
    return BuiltGraph(
        name="knn",
        graph=build_knn_digraph(dataset, k=k),
        epsilon=epsilon,
        guaranteed=False,
        meta={"k": k},
    )


@register_builder("complete", options_from=())
def _build_complete(
    dataset: Dataset, epsilon: float, rng: np.random.Generator, **options: Any
) -> BuiltGraph:
    """Complete digraph (a PG for every eps; Theta(n^2) edges)."""
    return BuiltGraph(
        name="complete",
        graph=build_complete_graph(dataset),
        epsilon=epsilon,
        guaranteed=True,
        meta={},
    )
