"""``ProximityGraphIndex`` — the library's front door.

Wraps the whole pipeline a user needs for (1+eps)-ANN search:

1. wrap raw points + metric into a dataset,
2. normalize so the minimum inter-point distance is 2 (Section 2.1's
   convention; a pure rescaling, undone transparently on output),
3. build a proximity graph with any registered builder,
4. answer queries through one entry point — :meth:`search` — which
   accepts a single query or a batch, routes everything through the
   vectorized lockstep engine, and reports distances in *original*
   units,
5. mutate the collection in place: :meth:`add` grows it (wave-batched
   graph repair, or true online net maintenance for ``gnet`` indexes),
   :meth:`delete` tombstones points out of the result set, and
   :meth:`compact` rebuilds to reclaim them — all under *stable
   external ids* that survive every mutation and a ``save``/``load``
   round trip.

Example
-------
>>> import numpy as np
>>> from repro import ProximityGraphIndex, SearchParams
>>> rng = np.random.default_rng(7)
>>> points = rng.uniform(size=(500, 2))
>>> index = ProximityGraphIndex.build(points, epsilon=0.5, method="gnet")
>>> result = index.search(np.array([0.5, 0.5]))          # single query
>>> nn_id, dist = result.top1()
>>> batch = index.search(rng.uniform(size=(64, 2)), k=10)  # (64, 10) ids
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Sequence

import numpy as np

from repro.core.builders import BuiltGraph, build, validate_builder_options
from repro.core.search import IdMap, SearchParams, SearchResult
from repro.core.stats import QueryStats, measure_queries
from repro.graphs.base import ProximityGraph
from repro.graphs.engine import (
    RepairInserter,
    beam_search_batch,
    bulk_insert,
    greedy_batch,
    snapshot_graph,
)
from repro.graphs.navigability import NavigabilityViolation, find_violations
from repro.metrics.base import Dataset, MetricSpace, ScaledMetric
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric
from repro.metrics.scaling import normalize_min_distance
from repro.storage import make_store, validate_storage_options
from repro.storage.base import VectorStore
from repro.storage.flat import FlatStore

__all__ = ["ProximityGraphIndex"]


# Legacy query methods that already warned this process (the shims warn
# exactly once per method, per the deprecation policy checked in CI).
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(name: str, hint: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"ProximityGraphIndex.{name}() is deprecated; use {hint}",
        DeprecationWarning,
        stacklevel=3,
    )


class ProximityGraphIndex:
    """A proximity-graph ANN index over a mutable, id-stable collection.

    Use :meth:`build` rather than the constructor.  Attributes of note:
    ``graph`` (the underlying :class:`ProximityGraph`), ``dataset`` (the
    normalized dataset), ``built`` (builder provenance, including
    theoretical parameters in ``built.meta``), ``scale`` (the
    normalization factor; reported distances are already divided back),
    and ``id_map`` (the stable external↔internal id translation).
    """

    def __init__(
        self,
        dataset: Dataset,
        built: BuiltGraph,
        scale: float,
        rng: np.random.Generator,
        seed: int = 0,
        id_map: IdMap | None = None,
        tombstones: np.ndarray | None = None,
        store: VectorStore | None = None,
    ) -> None:
        self.dataset = dataset
        self.built = built
        self.scale = scale
        self.seed = int(seed)
        self._rng = rng
        # How the vectors are held for traversal; FlatStore (exact, the
        # raw array) unless build()/set_storage() installed a quantizer.
        self.store: VectorStore = (
            store
            if store is not None
            else FlatStore(dataset.metric, dataset.points)
        )
        self.id_map = id_map if id_map is not None else IdMap.identity(dataset.n)
        if len(self.id_map) != dataset.n:
            raise ValueError("id map must cover every point")
        self._tombstones = (
            np.asarray(tombstones, dtype=bool).copy()
            if tombstones is not None
            else np.zeros(dataset.n, dtype=bool)
        )
        if self._tombstones.shape != (dataset.n,):
            raise ValueError("tombstone mask must cover every point")
        self._dynamic = None  # DynamicGNet, after a gnet index's first add()

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: Any,
        epsilon: float = 0.5,
        method: str = "gnet",
        metric: MetricSpace | None = None,
        normalize: bool = True,
        seed: int = 0,
        ids: Sequence[int] | None = None,
        storage: str = "flat",
        storage_options: dict[str, Any] | None = None,
        **options: Any,
    ) -> "ProximityGraphIndex":
        """Build an index over raw points.

        Parameters
        ----------
        points:
            ``(n, d)`` float array for Euclidean metrics, or whatever the
            supplied ``metric`` understands (ids for abstract metrics).
        epsilon:
            The target approximation: queries return (1+eps)-ANNs
            (guaranteed for ``method`` in {"gnet", "theta", "merged",
            "diskann", "complete"}).
        method:
            Any registered builder; see
            :func:`repro.core.builders.available_builders`.
        normalize:
            Rescale so the minimum inter-point distance is 2 (required by
            the paper's constructions; disable only if the input already
            satisfies it).
        ids:
            Optional external id per point (unique integers).  Defaults
            to ``0..n-1``.  External ids are what :meth:`search` returns
            and what :meth:`delete` accepts, and they stay stable under
            every mutation.
        storage:
            How the index *holds* its vectors for graph traversal:
            ``"flat"`` (raw float array, exact — the default, and
            bit-identical to indexes built before the storage layer),
            ``"sq8"`` (8-bit scalar quantization), or ``"pq"`` (product
            quantization with ADC lookup tables).  Quantized indexes
            traverse compressed and exact-rerank an over-fetched pool —
            see ``SearchParams.rerank_factor``.  ``storage_options``
            passes quantizer knobs through (e.g. ``m``/``ks`` for pq).

        Extra options (including ``batch_size``, the batched
        construction wave size for the insertion builders — see
        :func:`repro.core.builders.build`) pass through to the builder.
        """
        rng = np.random.default_rng(seed)
        # Fail fast on an unknown builder or a misspelled build option
        # (e.g. builder= instead of method=), BEFORE the O(n^2)
        # normalization pass and the graph build.
        validate_builder_options(method, options)
        if metric is None:
            points = np.asarray(points, dtype=np.float64)
            metric = EuclideanMetric()
        # Fail fast on a bad quantizer config, BEFORE the graph build.
        arr = np.asarray(points)
        validate_storage_options(
            storage, storage_options,
            dim=int(arr.shape[1]) if arr.ndim == 2 else None,
        )
        dataset = Dataset(metric, points)
        scale = 1.0
        if normalize:
            dataset, scale = normalize_min_distance(dataset)
        built = build(method, dataset, epsilon, rng, **options)
        id_map = IdMap(ids) if ids is not None else IdMap.identity(dataset.n)
        if len(id_map) != dataset.n:
            raise ValueError(
                f"need exactly {dataset.n} external ids, got {len(id_map)}"
            )
        store = make_store(
            storage, dataset.metric, dataset.points, seed=seed,
            **(storage_options or {}),
        )
        return cls(
            dataset=dataset, built=built, scale=scale, rng=rng, seed=seed,
            id_map=id_map, store=store,
        )

    # ------------------------------------------------------------------

    @property
    def graph(self) -> ProximityGraph:
        return self.built.graph

    @property
    def epsilon(self) -> float:
        return self.built.epsilon

    @property
    def n(self) -> int:
        """Total vertex count, including tombstoned points."""
        return self.dataset.n

    @property
    def active_count(self) -> int:
        """Points that searches may return (not tombstoned)."""
        return int((~self._tombstones).sum())

    @property
    def tombstone_count(self) -> int:
        return int(self._tombstones.sum())

    def _to_original(self, distance: float) -> float:
        return distance / self.scale

    # ------------------------------------------------------------------
    # The unified search entry point
    # ------------------------------------------------------------------

    def _point_rank(self) -> int:
        return max(np.asarray(self.dataset.points).ndim - 1, 0)

    def _normalize_queries(self, queries: Any) -> tuple[Any, bool]:
        """Canonicalize to a batch array; flag whether input was single."""
        if isinstance(queries, np.ndarray):
            arr = queries
        else:
            try:
                arr = np.asarray(queries)
            except ValueError:  # ragged input
                arr = np.empty(len(queries), dtype=object)
                arr[:] = list(queries)
        rank = self._point_rank()
        if arr.size == 0 and arr.ndim <= max(rank, 1):
            # An empty batch ([] or np.array([])) — never a single query.
            shape = (0,) + np.asarray(self.dataset.points).shape[1:]
            return np.empty(shape, dtype=np.float64), False
        if arr.ndim == rank:
            return arr[None] if rank else arr.reshape(1), True
        return arr, False

    def validate_queries(self, Q: Any) -> None:
        """Front-door input validation of a canonicalized query batch.

        Coordinate indexes reject what a network-facing caller will send
        first: queries of the wrong dimensionality (previously a raw
        numpy broadcast error from deep inside the engine) and
        non-finite queries (NaN/inf previously traversed silently and
        returned arbitrary ids with NaN distances).  Abstract-metric
        indexes (object points, id-based metrics) pass through — there
        is no coordinate shape to check.
        """
        arr = np.asarray(Q)
        if arr.dtype == object or arr.size == 0:
            return
        pts = np.asarray(self.dataset.points)
        if pts.ndim == 2 and arr.ndim == 2 and arr.shape[1] != pts.shape[1]:
            raise ValueError(
                f"query dim {arr.shape[1]} does not match index dim "
                f"{pts.shape[1]}"
            )
        if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
            raise ValueError("query contains non-finite values")

    def _allowed_mask(self, params: SearchParams) -> np.ndarray | None:
        """Combined tombstone + filter mask, or ``None`` when inactive."""
        if params.allowed_ids is None:
            if not self._tombstones.any():
                return None
            return ~self._tombstones
        mask = np.zeros(self.n, dtype=bool)
        mask[self.id_map.to_internal_known(params.allowed_ids)] = True
        mask &= ~self._tombstones
        return mask

    def search(
        self,
        queries: Any,
        k: int = 1,
        params: SearchParams | None = None,
    ) -> SearchResult:
        """Answer one query or a batch — the single front door.

        Routes everything through the vectorized lockstep engine: the
        paper's greedy routine for plain ``k=1`` searches, best-first
        beam search otherwise (``k > 1``, an explicit ``beam_width``, an
        active filter, or quantized storage).  Returns a
        :class:`SearchResult` with dense ``(m, k)`` arrays of external
        ids and original-unit distances plus per-query cost stats.  See
        :class:`SearchParams` for every knob (budget, starts/seed,
        ``allowed_ids`` filtering, ``rerank_factor``).  Calls with
        identical arguments return identical results: default start
        vertices come from a fresh seeded generator, never shared state.

        With quantized storage (``sq8``/``pq``) the search is
        **two-stage**: the graph walk runs over the store's compressed
        codes (PQ binds its ADC lookup tables once per batch), an
        over-fetched pool of ``k * rerank_factor`` candidates survives,
        and one exact-distance pass over the raw vectors returns the top
        ``k`` — reported distances are always exact, in original units.
        The rerank's exact evaluations are included in ``evals`` (they
        are not subject to ``budget``, which caps traversal only).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if params is None:
            params = SearchParams()
        Q, single = self._normalize_queries(queries)
        self.validate_queries(Q)
        m = len(Q)
        allowed = self._allowed_mask(params)

        store = self.store
        quantized = store.is_quantized
        rerank = (
            params.rerank_factor
            if params.rerank_factor is not None
            else store.default_rerank_factor
        )
        traversal_store = store if quantized else None

        mode = params.mode
        if mode == "auto":
            use_greedy = (
                k == 1
                and params.beam_width is None
                and allowed is None
                and not quantized
            )
            mode = "greedy" if use_greedy else "beam"
        if mode == "greedy" and k != 1:
            raise ValueError(
                "greedy returns a single neighbor; use mode='beam' (or "
                "mode='auto') for k > 1"
            )

        ids = np.full((m, k), -1, dtype=np.int64)
        dists = np.full((m, k), np.inf, dtype=np.float64)
        evals = np.zeros(m, dtype=np.int64)
        if m == 0 or (allowed is not None and not allowed.any()):
            hops = np.zeros(m, dtype=np.int64) if mode == "greedy" else None
            return SearchResult(ids, dists, evals, hops=hops, single=single)

        if params.starts is not None:
            starts = np.asarray(params.starts, dtype=np.intp)
            if len(starts) != m:
                raise ValueError("need exactly one start vertex per query")
        else:
            gen = np.random.default_rng(
                self.seed if params.seed is None else params.seed
            )
            starts = gen.integers(self.n, size=m)

        if mode == "greedy":
            results = greedy_batch(
                self.graph, self.dataset, starts, Q,
                budget=params.budget, allowed=allowed, store=traversal_store,
                backend=params.backend,
            )
            ids[:, 0] = self.id_map.to_external([r.point for r in results])
            evals[:] = [r.distance_evals for r in results]
            if quantized:
                # The walk measured code distances; report the exact one
                # (through the store's rerank hook, so a disk-tier store
                # is the only thing that touches full-precision rows).
                for i, r in enumerate(results):
                    if r.point >= 0:
                        exact1 = store.rerank_distances(
                            self.dataset, Q[i],
                            np.asarray([r.point], dtype=np.intp),
                        )
                        dists[i, 0] = self._to_original(float(exact1[0]))
                        evals[i] += 1
            else:
                dists[:, 0] = [self._to_original(r.distance) for r in results]
            hops = np.fromiter(
                (len(r.hops) for r in results), dtype=np.int64, count=m
            )
            return SearchResult(ids, dists, evals, hops=hops, single=single)

        # Stage 1: traversal.  Quantized (or an explicit rerank_factor
        # > 1) over-fetches the pool; the beam width only grows when the
        # fetch count would not fit it, so "equal beam width" comparisons
        # across storages stay equal-width.
        two_stage = quantized or rerank > 1
        k_fetch = int(math.ceil(k * rerank)) if two_stage else k
        width = params.beam_width if params.beam_width is not None else max(2 * k, 16)
        if two_stage:
            # Only the over-fetched pool may widen the beam; a plain
            # search honors an explicit beam_width < k exactly as the
            # pre-storage pipeline did (it returns at most width hits).
            width = max(width, k_fetch)
        if allowed is not None:
            # A pool wider than the admissible set can never fill, which
            # would disable the beam bound and degenerate to exhaustive
            # traversal; clamp so termination stays meaningful.
            width = max(min(width, int(allowed.sum())), 1)
            k_fetch = min(k_fetch, width) if two_stage else k_fetch
        found = beam_search_batch(
            self.graph, self.dataset, starts, Q,
            beam_width=width, k=k_fetch, budget=params.budget, allowed=allowed,
            store=traversal_store, backend=params.backend,
        )
        if not two_stage:
            for i, (pairs, ev) in enumerate(found):
                evals[i] = ev
                take = min(len(pairs), k)
                if take:
                    ids[i, :take] = self.id_map.to_external(
                        [v for v, _ in pairs[:take]]
                    )
                    dists[i, :take] = [self._to_original(d) for _, d in pairs[:take]]
            return SearchResult(ids, dists, evals, hops=None, single=single)

        # Stage 2: exact rerank of the survivors with the flat metric.
        # A flat store's traversal distances are already exact, so only
        # quantized stores re-evaluate (and charge) the candidate pool.
        for i, (pairs, ev) in enumerate(found):
            if pairs:
                cand = np.fromiter(
                    (v for v, _ in pairs), dtype=np.intp, count=len(pairs)
                )
                if quantized:
                    # store.rerank_distances == dataset.distances_to_query
                    # bit-for-bit; disk-tier stores gather the rows in
                    # ascending file-offset order first.
                    exact = store.rerank_distances(self.dataset, Q[i], cand)
                    ev += len(cand)
                else:
                    exact = np.fromiter(
                        (d for _, d in pairs), dtype=np.float64, count=len(pairs)
                    )
                order = np.lexsort((cand, exact))[:k]
                take = len(order)
                ids[i, :take] = self.id_map.to_external(cand[order])
                dists[i, :take] = [self._to_original(d) for d in exact[order]]
            evals[i] = ev
        return SearchResult(ids, dists, evals, hops=None, single=single)

    # ------------------------------------------------------------------
    # Mutation: add / delete / compact
    # ------------------------------------------------------------------

    def add(
        self,
        points: Any,
        ids: Sequence[int] | None = None,
        mode: str = "auto",
        batch_size: int = 64,
        backend: str | None = None,
    ) -> np.ndarray:
        """Insert new points; returns their external ids.

        ``mode`` selects how the graph absorbs them:

        * ``"repair"`` — Vamana-style incremental repair, wave-batched
          through :func:`~repro.graphs.engine.bulk_insert`: candidates
          located by lockstep beam search, out-edges RobustPruned,
          backlinks re-pruned on overflow.  Works for every builder and
          metric, but forfeits the paper's worst-case guarantee
          (``built.guaranteed`` drops to ``False``).
        * ``"dynamic"`` — true online insertion via
          :class:`~repro.graphs.dynamic.DynamicGNet`, maintaining
          Theorem 1.1's net invariants so the (1+eps) guarantee
          *survives*.  Only for ``gnet`` indexes over coordinate
          metrics; the first call upgrades the index (an O(n) one-time
          re-insertion, after which the graph is the dynamic net's —
          equally guaranteed, not edge-identical to the static build).
          Points closer than the normalized minimum distance or outside
          the domain headroom are rejected *before* anything mutates.
        * ``"auto"`` — ``"dynamic"`` where it applies, else ``"repair"``.
          If the dynamic path rejects the batch (points closer than the
          normalized minimum, or outside the domain headroom), auto
          falls back to repair — the add succeeds, and
          ``built.guaranteed`` records that the guarantee lapsed.
          Force ``mode="dynamic"`` to get the rejection instead.

        New points are given in original units, like :meth:`build`.
        ``ids`` assigns their external ids (fresh ones by default).
        ``backend`` selects the accel backend for the repair path's
        wave location and RobustPrune (the engine-wide seam:
        ``None``/``"numpy"`` = pinned engines, ``"auto"`` = best warmed
        compiled backend, explicit names warm on demand); the dynamic
        path maintains net invariants in numpy regardless.
        """
        if mode not in ("auto", "repair", "dynamic"):
            raise ValueError(f"unknown add mode {mode!r}")
        new_pts, _single = self._normalize_queries(points)
        new_pts = np.asarray(new_pts)
        count = len(new_pts)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        # Validate the prospective ids BEFORE any structure grows, so an
        # id clash can never leave graph/dataset/id-map inconsistent.
        self.id_map.check_assignable(count, ids)
        if mode == "dynamic":
            self._add_dynamic(new_pts)
        elif mode == "repair" or not self._dynamic_feasible():
            self._add_repair(new_pts, batch_size=batch_size, backend=backend)
        else:
            try:
                self._add_dynamic(new_pts)
            except ValueError:
                # Batch (or upgrade) rejected by the net's preconditions;
                # pre-validation left everything untouched, so the
                # generic path can absorb the points instead.
                self._add_repair(new_pts, batch_size=batch_size, backend=backend)
        self._tombstones = np.concatenate(
            [self._tombstones, np.zeros(count, dtype=bool)]
        )
        # Keep the vector store in step: quantized stores encode the new
        # rows through their *frozen* training state and count them as
        # drift (surfaced in stats(); compact() retrains and resets it).
        self.store = self.store.refresh(self.dataset, count)
        return self.id_map.assign(count, ids)

    def _dynamic_feasible(self) -> bool:
        if self.built.name != "gnet" or self._point_rank() != 1:
            return False
        metric = self.dataset.metric
        inner = metric.inner if isinstance(metric, ScaledMetric) else metric
        return isinstance(inner, (EuclideanMetric, ChebyshevMetric, MinkowskiMetric))

    def _dynamic_factor(self) -> float:
        metric = self.dataset.metric
        return metric.factor if isinstance(metric, ScaledMetric) else 1.0

    def _upgrade_dynamic(self) -> None:
        """First dynamic add: adopt the collection into a DynamicGNet.

        Coordinate norms are homogeneous, so scaling the *coordinates*
        by the normalization factor reproduces the scaled metric's
        distances under the plain inner metric — exactly the convention
        :class:`DynamicGNet` requires.
        """
        from repro.graphs.dynamic import DynamicGNet

        if not self._dynamic_feasible():
            raise ValueError(
                "mode='dynamic' requires a gnet index over a coordinate "
                "metric; use mode='repair'"
            )
        metric = self.dataset.metric
        inner = metric.inner if isinstance(metric, ScaledMetric) else metric
        coords = np.asarray(self.dataset.points, dtype=np.float64)
        coords = coords * self._dynamic_factor()
        try:
            self._dynamic = DynamicGNet.from_points(inner, coords, self.epsilon)
        except ValueError as exc:
            raise ValueError(
                "cannot upgrade this index to online insertion "
                f"({exc}); was it built with normalize=False over "
                "unnormalized points?  Use add(..., mode='repair')."
            ) from exc

    def _add_dynamic(self, new_pts: np.ndarray) -> None:
        if self._dynamic is None:
            self._upgrade_dynamic()
        net = self._dynamic
        scaled = np.asarray(new_pts, dtype=np.float64) * self._dynamic_factor()
        if scaled.ndim != 2 or scaled.shape[1] != net.dim:
            raise ValueError(f"expected (c, {net.dim}) new points")
        # Pre-validate the whole batch (against the net AND batch-mates)
        # so a rejection leaves the index untouched.
        for j, x in enumerate(scaled):
            reason = net.rejection_reason(x)
            if reason is None and j:
                d = net.metric.distances(x, scaled[:j])
                if float(d.min()) < net.min_distance:
                    reason = (
                        "insertion violates the declared minimum "
                        "inter-point distance (within the added batch)"
                    )
            if reason is not None:
                raise ValueError(f"cannot add point {j}: {reason}")
        net.insert_many(scaled, prevalidated=True)
        self._adopt_dynamic_state(new_pts)

    def _adopt_dynamic_state(self, new_pts: np.ndarray) -> None:
        points = np.concatenate([np.asarray(self.dataset.points), new_pts], axis=0)
        self.dataset = Dataset(self.dataset.metric, points)
        self.built.graph = self._dynamic.graph().freeze()
        self.built.backend = None
        # Static net provenance no longer describes the graph.
        for stale in ("hierarchy", "level_sizes", "level_edge_counts"):
            self.built.meta.pop(stale, None)
        self.built.meta["params"] = self._dynamic.params
        self.built.meta["dynamic"] = True
        # The upgrade re-validated every point into a proper net, so the
        # Theorem 1.1 guarantee holds for the whole collection — even if
        # an earlier repair add had lapsed it.
        self.built.guaranteed = True

    def _add_repair(
        self, new_pts: np.ndarray, batch_size: int, backend: str | None = None
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        n_old, count = self.dataset.n, len(new_pts)
        points = np.concatenate([np.asarray(self.dataset.points), new_pts], axis=0)
        dataset = Dataset(self.dataset.metric, points)
        graph = self.graph
        adj = [
            [int(v) for v in graph.out_neighbors(u)] for u in range(n_old)
        ] + [[] for _ in range(count)]
        degree_cap = max(8, int(math.ceil(graph.mean_out_degree())))
        # Entry point: the medoid of a sample — the sample member with
        # the smallest summed distance to the rest (metric-generic).
        sample = np.random.default_rng(self.seed).choice(
            n_old, size=min(n_old, 256), replace=False
        )
        pair = dataset.metric.pairwise(dataset.points[sample])
        entry = int(sample[np.argmin(pair.sum(axis=1))])
        inserter = RepairInserter(
            dataset, adj, entry,
            max_degree=degree_cap, beam_width=max(32, 2 * degree_cap),
            backend=backend,
        )
        bulk_insert(inserter, range(n_old, n_old + count), batch_size, ramp=False)
        self.dataset = dataset
        self.built.graph = snapshot_graph(len(adj), adj, sort=True)
        self.built.backend = None
        # Any dynamic net predates the repair and no longer mirrors the
        # collection; the next dynamic add must re-upgrade from scratch.
        self._dynamic = None
        if self.built.guaranteed:
            # Repair has no worst-case proof; be honest about it.
            self.built.guaranteed = False
        self.built.meta["repaired_inserts"] = (
            int(self.built.meta.get("repaired_inserts", 0)) + count
        )

    def delete(self, ids: Any) -> int:
        """Tombstone points by external id; returns how many were newly
        deleted.

        Tombstoned points stay in the graph as routing waypoints (so
        navigability is unharmed) but are excluded from every result
        set.  Unknown ids raise ``KeyError``; deleting an id twice is a
        no-op.  Call :meth:`compact` to physically remove them.
        """
        internal = self.id_map.to_internal(ids)
        newly = int((~self._tombstones[internal]).sum())
        self._tombstones[internal] = True
        return newly

    def compact(self, seed: int | None = None) -> "ProximityGraphIndex":
        """Rebuild over the surviving points, dropping tombstones.

        Replays the original construction (same builder, epsilon, and
        recorded options) on the survivors; external ids are preserved,
        internal indices renumber densely.  A no-op without tombstones.
        Returns ``self`` for chaining.
        """
        if not self._tombstones.any():
            return self
        keep = np.flatnonzero(~self._tombstones)
        if len(keep) < 2:
            raise ValueError(
                "compacting would leave fewer than 2 points (the paper "
                "assumes n >= 2); delete less or rebuild from scratch"
            )
        points = np.asarray(self.dataset.points)[keep]
        dataset = Dataset(self.dataset.metric, points)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        self.built = build(
            self.built.name, dataset, self.epsilon, rng, **self.built.options
        )
        self.dataset = dataset
        self.id_map = self.id_map.compact(keep)
        self._tombstones = np.zeros(len(keep), dtype=bool)
        self._dynamic = None
        # Retrain the store over the survivors: post-build adds were
        # encoded with stale training statistics (the drift counter);
        # compaction is where that debt is repaid.
        self.store = self.store.retrained(
            self.dataset, self.seed if seed is None else seed
        )
        return self

    def snapshot(self) -> "ProximityGraphIndex":
        """A mutation-isolated copy sharing the immutable bulk data.

        The copy shares the (never mutated in place) heavy arrays —
        points, graph CSR, quantized codes — but owns every container a
        mutation writes through: the :class:`BuiltGraph` wrapper (whose
        ``graph``/``backend``/``meta`` attributes ``add`` rebinds), the
        ``meta``/``options`` dicts, the id map, the tombstone mask, and
        the vector store.  ``add``/``delete``/``compact`` on either side
        are invisible to the other, which is what the serving layer's
        copy-mutate-swap writer relies on: readers keep traversing the
        old object while the writer grows the snapshot.

        Any online-insertion net (``mode="dynamic"`` state) is *not*
        carried over — the first dynamic add on the snapshot re-upgrades
        from its own collection, so the guarantee story is unchanged.
        """
        built = BuiltGraph(
            name=self.built.name,
            graph=self.built.graph,
            epsilon=self.built.epsilon,
            guaranteed=self.built.guaranteed,
            meta=dict(self.built.meta),
            backend=self.built.backend,
            options=dict(self.built.options),
        )
        return ProximityGraphIndex(
            dataset=self.dataset,
            built=built,
            scale=self.scale,
            rng=np.random.default_rng(self.seed),
            seed=self.seed,
            id_map=self.id_map.clone(),
            tombstones=self._tombstones,  # the constructor copies
            store=self.store.clone(),
        )

    def set_storage(
        self, kind: str, seed: int | None = None, **options: Any
    ) -> "ProximityGraphIndex":
        """Re-encode the collection under a different vector storage.

        Trains a fresh store of ``kind`` (``"flat"``/``"sq8"``/``"pq"``)
        over the current points and installs it; the graph is untouched,
        only traversal distances change.  Returns ``self`` for chaining.
        """
        self.store = make_store(
            kind, self.dataset.metric, self.dataset.points,
            seed=self.seed if seed is None else seed, **options,
        )
        return self

    # ------------------------------------------------------------------
    # Legacy query methods — thin deprecation shims over search()
    # ------------------------------------------------------------------

    def query(
        self,
        q: Any,
        p_start: int | None = None,
        budget: int | None = None,
    ) -> tuple[int, float]:
        """Greedy (1+eps)-ANN query; returns ``(point_id, distance)``.

        .. deprecated:: 1.1
            Use :meth:`search`; this shim delegates to
            ``search(q, k=1, params=SearchParams(mode="greedy", ...))``
            and returns bit-identical results.
        """
        _warn_deprecated("query", "search(q)")
        start = int(p_start) if p_start is not None else int(self._rng.integers(self.n))
        result = self.search(
            q, k=1, params=SearchParams(mode="greedy", budget=budget, starts=[start])
        )
        return result.top1()

    def query_k(
        self,
        q: Any,
        k: int,
        beam_width: int | None = None,
        p_start: int | None = None,
        budget: int | None = None,
    ) -> list[tuple[int, float]]:
        """Top-``k`` search via beam search.

        .. deprecated:: 1.1
            Use :meth:`search`; this shim delegates to
            ``search(q, k=k, params=SearchParams(mode="beam", ...))``
            and returns bit-identical results.  (``budget`` now works
            here too — it is forwarded to the beam engine.)
        """
        _warn_deprecated("query_k", "search(q, k=k)")
        start = int(p_start) if p_start is not None else int(self._rng.integers(self.n))
        result = self.search(
            q,
            k=k,
            params=SearchParams(
                mode="beam", beam_width=beam_width, budget=budget, starts=[start]
            ),
        )
        return result.pairs(0)

    def query_batch(
        self,
        queries: Sequence[Any],
        starts: Sequence[int] | None = None,
        budget: int | None = None,
    ) -> list[tuple[int, float]]:
        """Greedy (1+eps)-ANN for a whole query batch in lockstep.

        .. deprecated:: 1.1
            Use :meth:`search`; this shim delegates to
            ``search(queries, params=SearchParams(mode="greedy", ...))``
            and returns bit-identical results.
        """
        _warn_deprecated("query_batch", "search(queries)")
        if len(queries) == 0:
            return []
        if starts is None:
            starts = self._rng.integers(self.n, size=len(queries))
        result = self.search(
            queries,
            k=1,
            params=SearchParams(mode="greedy", budget=budget, starts=starts),
        )
        return [
            (int(result.ids[i, 0]), float(result.distances[i, 0]))
            for i in range(result.m)
        ]

    def query_k_batch(
        self,
        queries: Sequence[Any],
        k: int,
        beam_width: int | None = None,
        starts: Sequence[int] | None = None,
        budget: int | None = None,
    ) -> list[list[tuple[int, float]]]:
        """Top-``k`` beam search for a whole query batch in lockstep.

        .. deprecated:: 1.1
            Use :meth:`search`; this shim delegates to
            ``search(queries, k=k, params=SearchParams(mode="beam", ...))``
            and returns bit-identical results.  (``budget`` now works
            here too.)
        """
        _warn_deprecated("query_k_batch", "search(queries, k=k)")
        if len(queries) == 0:
            return []
        if starts is None:
            starts = self._rng.integers(self.n, size=len(queries))
        result = self.search(
            queries,
            k=k,
            params=SearchParams(
                mode="beam", beam_width=beam_width, budget=budget, starts=starts
            ),
        )
        return [result.pairs(i) for i in range(result.m)]

    # ------------------------------------------------------------------
    # Persistence (single-file .npz; see repro.core.persistence)
    # ------------------------------------------------------------------

    def save(
        self, path: Any, format: str = "npz", compress: bool = True
    ) -> Any:
        """Serialize this index — one ``.npz`` file (format v4) by
        default, or a v5 disk directory with ``format="disk"``.

        Either form holds the graph's CSR arrays verbatim, the
        normalized points, the external id map and tombstone mask, the
        vector store's codes + training state (codebooks / scales, when
        quantized), and a JSON header with the builder provenance,
        scale, build options, metric spec, and storage spec — a loaded
        index answers :meth:`search` with identical ids and distances.
        ``compress=False`` trades ``.npz`` file size for save speed;
        the disk format writes raw files and ignores it.  Indexes over
        non-coordinate metrics (counting wrappers, tree metrics,
        explicit matrices) raise :class:`NotImplementedError` instead
        of pickling.
        """
        from repro.core.persistence import save_index

        return save_index(self, path, format=format, compress=compress)

    @classmethod
    def load(cls, path: Any, mmap: bool | None = None) -> "ProximityGraphIndex":
        """Load an index previously written by :meth:`save` (v1–v5).

        A v5 disk directory lazily attaches via ``np.memmap`` by
        default (millisecond opens, vectors paged in only at rerank);
        ``mmap=False`` reads it eagerly.  ``.npz`` files always load
        eagerly and reject ``mmap=True``.
        """
        from repro.core.persistence import load_index

        return load_index(path, cls, mmap=mmap)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Structural summary plus theory-side context when available."""
        out = dict(self.built.graph.summary())
        out["builder"] = self.built.name
        out["epsilon"] = self.epsilon
        out["guaranteed"] = self.built.guaranteed
        params = self.built.meta.get("params")
        if params is not None:
            out["h"] = params.height
            out["phi"] = params.phi
            out["log2_aspect_ratio"] = params.height - 1
        out["edges_per_point"] = out["edges"] / max(out["n"], 1)
        out["log2_n"] = round(math.log2(max(out["n"], 2)), 2)
        out["active"] = self.active_count
        out["tombstones"] = self.tombstone_count
        out["storage"] = self.store.summary()
        from repro import accel

        out["accel"] = accel.backend_status()
        return out

    def validate(
        self, queries: Sequence[Any], stop_at: int | None = 1
    ) -> list[NavigabilityViolation]:
        """Check (1+eps)-navigability (Fact 2.1) over a query batch."""
        return find_violations(
            self.graph, self.dataset, queries, self.epsilon, stop_at=stop_at
        )

    def measure(
        self,
        queries: Sequence[Any],
        budget: int | None = None,
        starts: Sequence[int] | None = None,
        seed: int | None = None,
        backend: str | None = None,
    ) -> QueryStats:
        """Cost/quality statistics of greedy over a query batch.

        Default start vertices come from a generator seeded with
        ``seed`` (falling back to the index's build seed), never from
        shared mutable state — repeated identical calls return identical
        statistics regardless of what ran in between.  ``backend``
        selects the traversal engine as in :class:`SearchParams`
        (``None`` means ``"auto"``).
        """
        return measure_queries(
            self.graph,
            self.dataset,
            queries,
            epsilon=self.epsilon,
            starts=starts,
            budget=budget,
            rng=np.random.default_rng(self.seed if seed is None else seed),
            backend=backend,
        )
