"""``ProximityGraphIndex`` — the library's front door.

Wraps the whole pipeline a user needs for (1+eps)-ANN search:

1. wrap raw points + metric into a dataset,
2. normalize so the minimum inter-point distance is 2 (Section 2.1's
   convention; a pure rescaling, undone transparently on output),
3. build a proximity graph with any registered builder,
4. answer queries with the paper's greedy routine (optionally budgeted,
   optionally beam-widened), reporting distances in *original* units.

Example
-------
>>> import numpy as np
>>> from repro import ProximityGraphIndex
>>> rng = np.random.default_rng(7)
>>> points = rng.uniform(size=(500, 2))
>>> index = ProximityGraphIndex.build(points, epsilon=0.5, method="gnet")
>>> nn_id, dist = index.query(np.array([0.5, 0.5]))
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.builders import BuiltGraph, build
from repro.core.stats import QueryStats, measure_queries
from repro.graphs.base import ProximityGraph
from repro.graphs.engine import beam_search_batch, greedy_batch
from repro.graphs.greedy import beam_search, greedy
from repro.graphs.navigability import NavigabilityViolation, find_violations
from repro.metrics.base import Dataset, MetricSpace
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.scaling import normalize_min_distance

__all__ = ["ProximityGraphIndex"]


class ProximityGraphIndex:
    """A built proximity-graph ANN index.

    Use :meth:`build` rather than the constructor.  Attributes of note:
    ``graph`` (the underlying :class:`ProximityGraph`), ``dataset`` (the
    normalized dataset), ``built`` (builder provenance, including
    theoretical parameters in ``built.meta``), and ``scale`` (the
    normalization factor; reported distances are already divided back).
    """

    def __init__(
        self,
        dataset: Dataset,
        built: BuiltGraph,
        scale: float,
        rng: np.random.Generator,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.built = built
        self.scale = scale
        self.seed = int(seed)
        self._rng = rng

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: Any,
        epsilon: float = 0.5,
        method: str = "gnet",
        metric: MetricSpace | None = None,
        normalize: bool = True,
        seed: int = 0,
        **options: Any,
    ) -> "ProximityGraphIndex":
        """Build an index over raw points.

        Parameters
        ----------
        points:
            ``(n, d)`` float array for Euclidean metrics, or whatever the
            supplied ``metric`` understands (ids for abstract metrics).
        epsilon:
            The target approximation: queries return (1+eps)-ANNs
            (guaranteed for ``method`` in {"gnet", "theta", "merged",
            "diskann", "complete"}).
        method:
            Any registered builder; see
            :func:`repro.core.builders.available_builders`.
        normalize:
            Rescale so the minimum inter-point distance is 2 (required by
            the paper's constructions; disable only if the input already
            satisfies it).

        Extra options (including ``batch_size``, the batched
        construction wave size for the insertion builders — see
        :func:`repro.core.builders.build`) pass through to the builder.
        """
        rng = np.random.default_rng(seed)
        if metric is None:
            points = np.asarray(points, dtype=np.float64)
            metric = EuclideanMetric()
        dataset = Dataset(metric, points)
        scale = 1.0
        if normalize:
            dataset, scale = normalize_min_distance(dataset)
        built = build(method, dataset, epsilon, rng, **options)
        return cls(dataset=dataset, built=built, scale=scale, rng=rng, seed=seed)

    # ------------------------------------------------------------------

    @property
    def graph(self) -> ProximityGraph:
        return self.built.graph

    @property
    def epsilon(self) -> float:
        return self.built.epsilon

    @property
    def n(self) -> int:
        return self.dataset.n

    def _to_original(self, distance: float) -> float:
        return distance / self.scale

    # ------------------------------------------------------------------

    def query(
        self,
        q: Any,
        p_start: int | None = None,
        budget: int | None = None,
    ) -> tuple[int, float]:
        """Greedy (1+eps)-ANN query; returns ``(point_id, distance)`` in
        original distance units.  ``p_start`` defaults to a random vertex
        (any choice is valid — Section 1.1)."""
        start = int(p_start) if p_start is not None else int(self._rng.integers(self.n))
        result = greedy(self.graph, self.dataset, start, q, budget=budget)
        return result.point, self._to_original(result.distance)

    def query_k(
        self,
        q: Any,
        k: int,
        beam_width: int | None = None,
        p_start: int | None = None,
    ) -> list[tuple[int, float]]:
        """Top-``k`` search via beam search (practical extension)."""
        start = int(p_start) if p_start is not None else int(self._rng.integers(self.n))
        width = beam_width if beam_width is not None else max(2 * k, 16)
        found, _evals = beam_search(
            self.graph, self.dataset, start, q, beam_width=width, k=k
        )
        return [(pid, self._to_original(d)) for pid, d in found]

    # ------------------------------------------------------------------
    # Batched queries (the vectorized engine; bit-identical to the
    # per-query paths above, amortized over the whole batch)
    # ------------------------------------------------------------------

    def query_batch(
        self,
        queries: Sequence[Any],
        starts: Sequence[int] | None = None,
        budget: int | None = None,
    ) -> list[tuple[int, float]]:
        """Greedy (1+eps)-ANN for a whole query batch in lockstep.

        Returns one ``(point_id, distance)`` pair per query, in original
        distance units.  ``starts`` defaults to one random vertex per
        query, mirroring :meth:`query`.
        """
        if starts is None:
            starts = self._rng.integers(self.n, size=len(queries))
        results = greedy_batch(self.graph, self.dataset, starts, queries, budget=budget)
        return [(r.point, self._to_original(r.distance)) for r in results]

    def query_k_batch(
        self,
        queries: Sequence[Any],
        k: int,
        beam_width: int | None = None,
        starts: Sequence[int] | None = None,
    ) -> list[list[tuple[int, float]]]:
        """Top-``k`` beam search for a whole query batch in lockstep."""
        if starts is None:
            starts = self._rng.integers(self.n, size=len(queries))
        width = beam_width if beam_width is not None else max(2 * k, 16)
        found = beam_search_batch(
            self.graph, self.dataset, starts, queries, beam_width=width, k=k
        )
        return [
            [(pid, self._to_original(d)) for pid, d in pairs]
            for pairs, _evals in found
        ]

    # ------------------------------------------------------------------
    # Persistence (single-file .npz; see repro.core.persistence)
    # ------------------------------------------------------------------

    def save(self, path: Any) -> Any:
        """Serialize this index to one ``.npz`` file.

        The file holds the graph's CSR arrays verbatim, the normalized
        points, and a JSON header with the builder provenance, scale,
        and metric spec — a loaded index answers ``query_batch`` with
        identical ids and distances.  Indexes over non-coordinate
        metrics (counting wrappers, tree metrics, explicit matrices)
        raise :class:`NotImplementedError` instead of pickling.
        """
        from repro.core.persistence import save_index

        return save_index(self, path)

    @classmethod
    def load(cls, path: Any) -> "ProximityGraphIndex":
        """Load an index previously written by :meth:`save`."""
        from repro.core.persistence import load_index

        return load_index(path, cls)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Structural summary plus theory-side context when available."""
        out = dict(self.built.graph.summary())
        out["builder"] = self.built.name
        out["epsilon"] = self.epsilon
        out["guaranteed"] = self.built.guaranteed
        params = self.built.meta.get("params")
        if params is not None:
            out["h"] = params.height
            out["phi"] = params.phi
            out["log2_aspect_ratio"] = params.height - 1
        out["edges_per_point"] = out["edges"] / max(out["n"], 1)
        out["log2_n"] = round(math.log2(max(out["n"], 2)), 2)
        return out

    def validate(
        self, queries: Sequence[Any], stop_at: int | None = 1
    ) -> list[NavigabilityViolation]:
        """Check (1+eps)-navigability (Fact 2.1) over a query batch."""
        return find_violations(
            self.graph, self.dataset, queries, self.epsilon, stop_at=stop_at
        )

    def measure(
        self,
        queries: Sequence[Any],
        budget: int | None = None,
        starts: Sequence[int] | None = None,
    ) -> QueryStats:
        """Cost/quality statistics of greedy over a query batch."""
        return measure_queries(
            self.graph,
            self.dataset,
            queries,
            epsilon=self.epsilon,
            starts=starts,
            budget=budget,
            rng=self._rng,
        )
