"""Structural integrity checks for saved and live indexes.

``graphs/validate.py`` checks the *semantic* proximity-graph property
(greedy routing reaches a (1+eps)-ANN); this module checks the
*structural* invariants underneath it — the ones a truncated file, a
buggy migration, or a bad manual edit breaks first:

* CSR shape: ``offsets`` is ``(n+1,)``, starts at 0, is monotone
  non-decreasing, and spans ``targets`` exactly;
* every CSR target lies in ``[0, n)``;
* the tombstone mask covers every point and agrees with the index's
  own active/tombstone counters;
* external ids are one per point, non-negative, and unique (across
  *all* shards of a sharded index);
* the vector store holds exactly ``n`` codes/points;
* a sharded manifest's declared shard count agrees with the files it
  lists **and** with the files actually on disk;
* a v5 disk directory's ``header.json`` array manifest agrees with the
  raw files next to it — every declared file present, every file
  exactly ``dtype * prod(shape)`` bytes (a truncated ``vectors.bin``
  or hand-edited header fails here, by name, before anything attaches)
  — and the CSR arrays it maps pass the same structural checks a live
  graph would.

Every violation names its invariant (``csr-offsets-monotone``,
``manifest-shard-count``, ...) so a failing ``repro index info
--validate`` run reads as a diagnosis, not a stack trace.  Like the
semantic validator, this one is tested by failure injection — a
validator that never fires is worse than none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "IntegrityError",
    "check_index",
    "check_flat_index",
    "check_sharded_index",
    "check_sharded_manifest",
    "check_disk_layout",
    "integrity_report",
]


class IntegrityError(ValueError):
    """One or more structural invariants are violated; the message
    lists every violation by invariant name."""


def _check_csr(n: int, offsets: np.ndarray, targets: np.ndarray) -> list[str]:
    violations: list[str] = []
    if offsets.shape != (n + 1,):
        violations.append(
            f"csr-offsets-shape: offsets has shape {offsets.shape}, "
            f"expected ({n + 1},) for n={n} points"
        )
        return violations  # downstream checks would misread the array
    if int(offsets[0]) != 0:
        violations.append(
            f"csr-offsets-start: offsets[0] is {int(offsets[0])}, must be 0"
        )
    if len(offsets) > 1 and bool((np.diff(offsets) < 0).any()):
        at = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        violations.append(
            "csr-offsets-monotone: offsets must be non-decreasing; "
            f"offsets[{at}]={int(offsets[at])} > "
            f"offsets[{at + 1}]={int(offsets[at + 1])}"
        )
    if int(offsets[-1]) != len(targets):
        violations.append(
            f"csr-offsets-span: offsets[-1]={int(offsets[-1])} must equal "
            f"len(targets)={len(targets)}"
        )
    if len(targets):
        lo, hi = int(targets.min()), int(targets.max())
        if lo < 0 or hi >= n:
            violations.append(
                f"csr-targets-range: targets span [{lo}, {hi}] but every "
                f"neighbor id must lie in [0, {n})"
            )
    return violations


def check_flat_index(index: Any, label: str = "") -> list[str]:
    """Structural violations of one flat index (empty list = clean)."""
    prefix = f"{label}: " if label else ""
    violations: list[str] = []
    n = int(index.n)
    offsets, targets = index.graph.csr()
    violations.extend(prefix + v for v in _check_csr(n, offsets, targets))

    tombstones = np.asarray(index._tombstones)
    if tombstones.shape != (n,):
        violations.append(
            f"{prefix}tombstone-shape: mask has shape {tombstones.shape}, "
            f"expected ({n},)"
        )
    else:
        active = int((~tombstones).sum())
        if active != int(index.active_count):
            violations.append(
                f"{prefix}tombstone-count: mask says {active} active "
                f"points but the index reports {index.active_count}"
            )

    externals = np.asarray(index.id_map.externals)
    if externals.shape != (n,):
        violations.append(
            f"{prefix}external-id-shape: {len(externals)} external ids "
            f"for {n} points — every point needs exactly one"
        )
    else:
        if len(externals) and int(externals.min()) < 0:
            violations.append(
                f"{prefix}external-id-negative: external ids must be "
                f"non-negative, found {int(externals.min())}"
            )
        if len(np.unique(externals)) != len(externals):
            uniq, counts = np.unique(externals, return_counts=True)
            dup = int(uniq[counts > 1][0])
            violations.append(
                f"{prefix}external-id-unique: external id {dup} is "
                "assigned to more than one point"
            )

    store_n = int(index.store.n)
    if store_n != n:
        violations.append(
            f"{prefix}storage-count: the vector store holds {store_n} "
            f"vectors but the graph has {n} vertices"
        )
    return violations


def check_sharded_index(index: Any) -> list[str]:
    """Per-shard structural checks plus the cross-shard id invariant."""
    violations: list[str] = []
    for j, shard in enumerate(index.shards):
        violations.extend(check_flat_index(shard, label=f"shard[{j}]"))
    seen: dict[int, int] = {}
    for j, shard in enumerate(index.shards):
        for e in np.asarray(shard.id_map.externals).tolist():
            if e in seen:
                violations.append(
                    "external-id-unique-across-shards: external id "
                    f"{e} appears in shard[{seen[e]}] and shard[{j}]"
                )
            else:
                seen[e] = j
    return violations


def check_sharded_manifest(path: str | Path) -> list[str]:
    """Does the manifest's declared shard count agree with reality?

    Checks declared ``shards`` against both the ``shard_files`` list it
    carries and the files actually present on disk — a manifest edited
    by hand (or a partially copied directory) fails here with the
    invariant named, before any load is attempted.
    """
    from repro.core.persistence import MANIFEST_NAME

    path = Path(path)
    directory = path if path.is_dir() else path.parent
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        return [
            f"manifest-missing: {directory} has no {MANIFEST_NAME}; not a "
            "sharded index directory"
        ]
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"manifest-unreadable: cannot parse {manifest_path}: {exc}"]

    violations: list[str] = []
    declared = manifest.get("shards")
    shard_files = manifest.get("shard_files") or []
    if not isinstance(declared, int):
        violations.append(
            f"manifest-shard-count: manifest declares shards={declared!r}; "
            "expected an integer count"
        )
        return violations
    if declared != len(shard_files):
        violations.append(
            f"manifest-shard-count: manifest declares {declared} shards "
            f"but lists {len(shard_files)} shard file(s)"
        )
    # A shard entry is a .npz file or (shard_format="disk") a v5
    # directory; either way it must exist.
    missing = [f for f in shard_files if not (directory / f).exists()]
    if missing:
        violations.append(
            f"manifest-shard-files: {len(missing)} listed shard file(s) "
            f"missing on disk: {missing}"
        )
    return violations


def _map_array(
    file_path: Path, dtype: np.dtype, shape: tuple[int, ...]
) -> np.ndarray:
    """A read-only mapping of one raw array file, owned by the caller
    (released with the last reference; zero-size arrays need no file)."""
    if int(np.prod(shape, dtype=np.int64)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(file_path, dtype=dtype, mode="r", shape=shape)


def check_disk_layout(path: str | Path) -> list[str]:
    """Structural violations of one v5 disk directory (pre-attach).

    Validates the layer :func:`repro.core.persistence.load_index`
    skips on its millisecond mmap path: that ``header.json`` parses,
    declares the right version/kind, that every array it lists exists
    with exactly ``dtype * prod(shape)`` bytes, that per-point arrays
    hold ``n`` rows — and, when the sizes allow it, that the mapped
    CSR arrays satisfy the same shape/monotonicity/range invariants a
    live graph enforces.  Every violation names its invariant
    (``disk-file-missing``, ``disk-array-size``, ...).
    """
    from repro.core.persistence import DISK_FORMAT_VERSION, DISK_HEADER_NAME

    directory = Path(path)
    header_path = directory / DISK_HEADER_NAME
    if not header_path.is_file():
        return [
            f"disk-header-missing: {directory} has no {DISK_HEADER_NAME}; "
            "not a v5 disk-index directory"
        ]
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"disk-header-unreadable: cannot parse {header_path}: {exc}"]
    violations: list[str] = []
    version = header.get("format_version")
    if version != DISK_FORMAT_VERSION or header.get("kind") != "disk-index":
        return [
            f"disk-header-version: {header_path} declares "
            f"format_version={version!r}, kind={header.get('kind')!r}; "
            f"expected {DISK_FORMAT_VERSION} / 'disk-index'"
        ]
    entries = header.get("arrays")
    if not isinstance(entries, dict):
        return [f"disk-manifest-missing: {header_path} lists no arrays"]
    required = (
        "csr_offsets", "csr_targets", "vectors", "external_ids", "tombstones"
    )
    for stem in required:
        if stem not in entries:
            violations.append(
                f"disk-array-missing: {header_path} declares no entry for "
                f"required array {stem!r}"
            )
    sized: dict[str, tuple[np.dtype, tuple[int, ...]]] = {}
    for stem, entry in entries.items():
        file_path = directory / entry["file"]
        if not file_path.is_file():
            violations.append(
                f"disk-file-missing: declared array file {entry['file']} "
                "does not exist"
            )
            continue
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        actual = file_path.stat().st_size
        if actual != expected:
            violations.append(
                f"disk-array-size: {entry['file']} holds {actual} bytes "
                f"but {DISK_HEADER_NAME} declares {dtype} x {shape} = "
                f"{expected} bytes"
            )
            continue
        sized[stem] = (dtype, shape)
    n = int(header.get("n", -1))
    for stem in ("vectors", "external_ids", "tombstones"):
        if stem in sized and sized[stem][1][0] != n:
            violations.append(
                f"disk-array-rows: {entries[stem]['file']} holds "
                f"{sized[stem][1][0]} rows but {DISK_HEADER_NAME} declares "
                f"n={n}"
            )
    if "csr_offsets" in sized and "csr_targets" in sized:
        # The deep check the mmap load path defers: map the CSR arrays
        # (read-only, paged on demand) and run the live-graph checks.
        offsets = _map_array(
            directory / entries["csr_offsets"]["file"], *sized["csr_offsets"]
        )
        targets = _map_array(
            directory / entries["csr_targets"]["file"], *sized["csr_targets"]
        )
        violations.extend(_check_csr(n, offsets, targets))
    return violations


def check_index(index: Any, path: str | Path | None = None) -> list[str]:
    """Every applicable structural check for ``index`` (either kind)."""
    # Shard lists only exist on sharded indexes; duck-typed so this
    # module needs no import of either index class.
    if hasattr(index, "shards"):
        violations = check_sharded_index(index)
        if path is not None:
            violations = check_sharded_manifest(path) + violations
    else:
        violations = check_flat_index(index)
        if path is not None and Path(path).is_dir():
            # A flat index loaded from a directory is the v5 disk
            # layout; validate the on-disk files against their header.
            violations = check_disk_layout(path) + violations
    return violations


def integrity_report(
    index: Any, path: str | Path | None = None, strict: bool = False
) -> dict[str, Any]:
    """JSON-safe report for ``repro index info --validate``.

    With ``strict=True`` raises :class:`IntegrityError` listing every
    violation instead of returning a failing report.
    """
    violations = check_index(index, path=path)
    report = {
        "ok": not violations,
        "violations": violations,
        "checks": [
            "csr-offsets (shape/start/monotone/span)",
            "csr-targets-range",
            "tombstone (shape/count)",
            "external-id (shape/negative/unique)",
            "storage-count",
        ]
        + (
            ["manifest-shard-count", "manifest-shard-files"]
            if hasattr(index, "shards")
            else []
        )
        + (
            [
                "disk-header (missing/unreadable/version)",
                "disk-array (missing/size/rows)",
                "disk-file-missing",
            ]
            if path is not None and Path(path).is_dir()
            and not hasattr(index, "shards")
            else []
        ),
    }
    if strict and violations:
        raise IntegrityError(
            "index failed structural validation:\n  "
            + "\n  ".join(violations)
        )
    return report
