"""Structural integrity checks for saved and live indexes.

``graphs/validate.py`` checks the *semantic* proximity-graph property
(greedy routing reaches a (1+eps)-ANN); this module checks the
*structural* invariants underneath it — the ones a truncated file, a
buggy migration, or a bad manual edit breaks first:

* CSR shape: ``offsets`` is ``(n+1,)``, starts at 0, is monotone
  non-decreasing, and spans ``targets`` exactly;
* every CSR target lies in ``[0, n)``;
* the tombstone mask covers every point and agrees with the index's
  own active/tombstone counters;
* external ids are one per point, non-negative, and unique (across
  *all* shards of a sharded index);
* the vector store holds exactly ``n`` codes/points;
* a sharded manifest's declared shard count agrees with the files it
  lists **and** with the files actually on disk.

Every violation names its invariant (``csr-offsets-monotone``,
``manifest-shard-count``, ...) so a failing ``repro index info
--validate`` run reads as a diagnosis, not a stack trace.  Like the
semantic validator, this one is tested by failure injection — a
validator that never fires is worse than none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "IntegrityError",
    "check_index",
    "check_flat_index",
    "check_sharded_index",
    "check_sharded_manifest",
    "integrity_report",
]


class IntegrityError(ValueError):
    """One or more structural invariants are violated; the message
    lists every violation by invariant name."""


def _check_csr(n: int, offsets: np.ndarray, targets: np.ndarray) -> list[str]:
    violations: list[str] = []
    if offsets.shape != (n + 1,):
        violations.append(
            f"csr-offsets-shape: offsets has shape {offsets.shape}, "
            f"expected ({n + 1},) for n={n} points"
        )
        return violations  # downstream checks would misread the array
    if int(offsets[0]) != 0:
        violations.append(
            f"csr-offsets-start: offsets[0] is {int(offsets[0])}, must be 0"
        )
    if len(offsets) > 1 and bool((np.diff(offsets) < 0).any()):
        at = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        violations.append(
            "csr-offsets-monotone: offsets must be non-decreasing; "
            f"offsets[{at}]={int(offsets[at])} > "
            f"offsets[{at + 1}]={int(offsets[at + 1])}"
        )
    if int(offsets[-1]) != len(targets):
        violations.append(
            f"csr-offsets-span: offsets[-1]={int(offsets[-1])} must equal "
            f"len(targets)={len(targets)}"
        )
    if len(targets):
        lo, hi = int(targets.min()), int(targets.max())
        if lo < 0 or hi >= n:
            violations.append(
                f"csr-targets-range: targets span [{lo}, {hi}] but every "
                f"neighbor id must lie in [0, {n})"
            )
    return violations


def check_flat_index(index: Any, label: str = "") -> list[str]:
    """Structural violations of one flat index (empty list = clean)."""
    prefix = f"{label}: " if label else ""
    violations: list[str] = []
    n = int(index.n)
    offsets, targets = index.graph.csr()
    violations.extend(prefix + v for v in _check_csr(n, offsets, targets))

    tombstones = np.asarray(index._tombstones)
    if tombstones.shape != (n,):
        violations.append(
            f"{prefix}tombstone-shape: mask has shape {tombstones.shape}, "
            f"expected ({n},)"
        )
    else:
        active = int((~tombstones).sum())
        if active != int(index.active_count):
            violations.append(
                f"{prefix}tombstone-count: mask says {active} active "
                f"points but the index reports {index.active_count}"
            )

    externals = np.asarray(index.id_map.externals)
    if externals.shape != (n,):
        violations.append(
            f"{prefix}external-id-shape: {len(externals)} external ids "
            f"for {n} points — every point needs exactly one"
        )
    else:
        if len(externals) and int(externals.min()) < 0:
            violations.append(
                f"{prefix}external-id-negative: external ids must be "
                f"non-negative, found {int(externals.min())}"
            )
        if len(np.unique(externals)) != len(externals):
            uniq, counts = np.unique(externals, return_counts=True)
            dup = int(uniq[counts > 1][0])
            violations.append(
                f"{prefix}external-id-unique: external id {dup} is "
                "assigned to more than one point"
            )

    store_n = int(index.store.n)
    if store_n != n:
        violations.append(
            f"{prefix}storage-count: the vector store holds {store_n} "
            f"vectors but the graph has {n} vertices"
        )
    return violations


def check_sharded_index(index: Any) -> list[str]:
    """Per-shard structural checks plus the cross-shard id invariant."""
    violations: list[str] = []
    for j, shard in enumerate(index.shards):
        violations.extend(check_flat_index(shard, label=f"shard[{j}]"))
    seen: dict[int, int] = {}
    for j, shard in enumerate(index.shards):
        for e in np.asarray(shard.id_map.externals).tolist():
            if e in seen:
                violations.append(
                    "external-id-unique-across-shards: external id "
                    f"{e} appears in shard[{seen[e]}] and shard[{j}]"
                )
            else:
                seen[e] = j
    return violations


def check_sharded_manifest(path: str | Path) -> list[str]:
    """Does the manifest's declared shard count agree with reality?

    Checks declared ``shards`` against both the ``shard_files`` list it
    carries and the files actually present on disk — a manifest edited
    by hand (or a partially copied directory) fails here with the
    invariant named, before any load is attempted.
    """
    from repro.core.persistence import MANIFEST_NAME

    path = Path(path)
    directory = path if path.is_dir() else path.parent
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        return [
            f"manifest-missing: {directory} has no {MANIFEST_NAME}; not a "
            "sharded index directory"
        ]
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"manifest-unreadable: cannot parse {manifest_path}: {exc}"]

    violations: list[str] = []
    declared = manifest.get("shards")
    shard_files = manifest.get("shard_files") or []
    if not isinstance(declared, int):
        violations.append(
            f"manifest-shard-count: manifest declares shards={declared!r}; "
            "expected an integer count"
        )
        return violations
    if declared != len(shard_files):
        violations.append(
            f"manifest-shard-count: manifest declares {declared} shards "
            f"but lists {len(shard_files)} shard file(s)"
        )
    missing = [f for f in shard_files if not (directory / f).is_file()]
    if missing:
        violations.append(
            f"manifest-shard-files: {len(missing)} listed shard file(s) "
            f"missing on disk: {missing}"
        )
    return violations


def check_index(index: Any, path: str | Path | None = None) -> list[str]:
    """Every applicable structural check for ``index`` (either kind)."""
    # Shard lists only exist on sharded indexes; duck-typed so this
    # module needs no import of either index class.
    if hasattr(index, "shards"):
        violations = check_sharded_index(index)
        if path is not None:
            violations = check_sharded_manifest(path) + violations
    else:
        violations = check_flat_index(index)
    return violations


def integrity_report(
    index: Any, path: str | Path | None = None, strict: bool = False
) -> dict[str, Any]:
    """JSON-safe report for ``repro index info --validate``.

    With ``strict=True`` raises :class:`IntegrityError` listing every
    violation instead of returning a failing report.
    """
    violations = check_index(index, path=path)
    report = {
        "ok": not violations,
        "violations": violations,
        "checks": [
            "csr-offsets (shape/start/monotone/span)",
            "csr-targets-range",
            "tombstone (shape/count)",
            "external-id (shape/negative/unique)",
            "storage-count",
        ]
        + (
            ["manifest-shard-count", "manifest-shard-files"]
            if hasattr(index, "shards")
            else []
        ),
    }
    if strict and violations:
        raise IntegrityError(
            "index failed structural validation:\n  "
            + "\n  ".join(violations)
        )
    return report
