"""``SearchableIndex`` — the one front door, as a protocol.

PR 3 unified every query shape behind ``ProximityGraphIndex.search()``;
the sharded index multiplies the *implementations* of that surface while
keeping exactly one *shape*.  This protocol is that shape, extracted
from :class:`~repro.core.index.ProximityGraphIndex` so the flat and
sharded indexes (and any future backend) are interchangeable to callers:
the CLI, the benches, and user code accept a ``SearchableIndex`` and
never ask which kind they were given.

The contract, in one place:

* :meth:`search` — single query or batch, greedy or beam, filtered or
  budgeted; returns a :class:`~repro.core.search.SearchResult` of dense
  ``(m, k)`` *external*-id / original-unit-distance arrays.  An index
  with nothing to return (every point tombstoned, an empty filter, an
  empty batch) returns empty/padded arrays — it never raises.
* :meth:`add` / :meth:`delete` / :meth:`compact` — the mutable
  collection under *stable external ids*: ids survive every mutation
  and a save/load round trip.
* :meth:`stats` — a JSON-safe structural summary.
* :meth:`save` — persistence; see :mod:`repro.core.persistence` for the
  format family (v1/v2 single-file flat, v3 sharded directory) and
  ``load_any`` for the type-dispatching loader.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.search import SearchParams, SearchResult

__all__ = ["SearchableIndex"]


@runtime_checkable
class SearchableIndex(Protocol):
    """What every index front door exposes.

    ``runtime_checkable`` so ``isinstance(x, SearchableIndex)`` works as
    a structural check (method presence only, as Python protocols go);
    the behavioral contract — stable ids, never-raising empty searches,
    original-unit distances — is pinned by the shared test suites
    instead.
    """

    @property
    def n(self) -> int:
        """Total vertex count, including tombstoned points."""
        ...

    @property
    def active_count(self) -> int:
        """Points that searches may return (not tombstoned)."""
        ...

    @property
    def tombstone_count(self) -> int:
        ...

    @property
    def epsilon(self) -> float:
        ...

    def search(
        self,
        queries: Any,
        k: int = 1,
        params: SearchParams | None = None,
    ) -> SearchResult:
        ...

    def add(
        self, points: Any, ids: Sequence[int] | None = None, **kwargs: Any
    ) -> np.ndarray:
        ...

    def delete(self, ids: Any) -> int:
        ...

    def compact(self, seed: int | None = None) -> "SearchableIndex":
        ...

    def stats(self) -> dict:
        ...

    def save(self, path: Any) -> Any:
        ...
