"""Index persistence — one ``.npz`` per index, JSON header inside.

A saved :class:`~repro.core.index.ProximityGraphIndex` is a single
compressed ``.npz`` holding the graph's CSR arrays verbatim
(``offsets``/``targets``), the normalized point coordinates, and a JSON
header (builder name, epsilon, guarantee flag, normalization scale,
metric spec, rng seed, and the JSON-safe slice of the builder's
provenance ``meta``).  Loading reconstructs the metric from its spec,
adopts the CSR arrays without per-row copies, and returns an index whose
``search`` answers are *identical* — same ids, same distances — to the
index that was saved.

Format v2 additionally persists the *mutable-collection* state: the
external id map (``external_ids``), the tombstone mask
(``tombstones``), and the recorded builder options (so ``compact()``
can replay the construction after a reload).  v1 files — written before
the index was mutable — still load: they get the identity id map, an
empty tombstone mask, and default builder options.

Format v3 is the **sharded directory** layout of a
:class:`~repro.core.sharded.ShardedIndex`: a ``manifest.json`` naming
the shard files plus routing state (assignment policy, seed, worker
count, next fresh external id), next to one flat per-shard file each —
so the shard format and the flat format share one code path, and older
flat files keep loading through the same :func:`load_index`.  Use
:func:`load_any` when the on-disk kind is not known in advance; it
dispatches on the manifest and returns whichever index type was saved.

Format v4 adds the **vector store**: the storage spec (kind, quantizer
options, training stats including the drift counter) joins the JSON
header, and the store's arrays — codes, PQ codebooks, SQ8 scales — are
written as ``store_*`` members.  Flat-storage indexes carry only the
spec (no extra arrays).  v1–v3 files still load (as flat storage);
sharded directories keep the v3 manifest and simply hold v4 shard files
inside.

Format v5 (this build) is the **disk directory** layout behind
beyond-RAM indexes: ``save_index(index, path, format="disk")`` writes a
directory of raw, page-aligned binary files —

    header.json          JSON header + per-array manifest (file, dtype, shape)
    csr_offsets.bin      (n+1,) int64   graph row pointers      | hot tier
    csr_targets.bin      (e,)   int64   flat neighbor ids       | hot tier
    codes.bin            (n, m) uint8   quantized codes         | hot tier
    vectors.bin          (n, d) float64 full-precision rows     | COLD tier
    external_ids.bin     (n,)   int64   stable external ids
    tombstones.bin       (n,)   uint8   deletion mask
    store_*.bin          quantizer training state (scales, codebooks)

— each array in its own file at offset 0, so ``load(path, mmap=True)``
attaches every large array with a read-only ``np.memmap`` in
milliseconds and the full-precision ``vectors.bin`` is only ever paged
in by the exact-rerank stage (see
:class:`~repro.storage.disk.DiskTierStore`).  ``mmap=False`` reads the
same files eagerly into RAM.  Content is identical to what v4 would
have written, so search answers are bit-identical across formats.

Only **coordinate metrics** (Euclidean, Chebyshev, Minkowski, optionally
wrapped in the normalization :class:`~repro.metrics.base.ScaledMetric`)
have an on-disk form: their state is a handful of floats and the points
array round-trips losslessly through ``.npz``.  Abstract metrics —
:class:`~repro.metrics.counting.CountingMetric` (mutable counter),
:class:`~repro.metrics.tree_metric.TreeMetric` and explicit-matrix
spaces (id-based points) — raise :class:`NotImplementedError` from
``save()`` rather than silently pickling objects whose identity cannot
be restored faithfully.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.builders import BuiltGraph
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters
from repro.metrics.base import Dataset
from repro.metrics.specs import metric_from_spec, metric_to_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.index import ProximityGraphIndex
    from repro.core.sharded import ShardedIndex

__all__ = [
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "DISK_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
    "DISK_HEADER_NAME",
    "metric_to_spec",
    "metric_from_spec",
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_sharded_index",
    "load_any",
]

FORMAT_VERSION = 4
SHARDED_FORMAT_VERSION = 3
DISK_FORMAT_VERSION = 5
# Versions the single-file .npz reader accepts.  3 is the sharded
# manifest *directory* and 5 the disk *directory* — both get precise
# errors from load_index naming the right loader, never the generic
# unsupported-version branch.
SUPPORTED_VERSIONS = (1, 2, 4)
MANIFEST_NAME = "manifest.json"
DISK_HEADER_NAME = "header.json"

# Tag for GNetParameters entries in the serialized meta (the one
# provenance object stats() needs back as a real object).
_GNET_PARAMS_TAG = "__gnet_parameters__"


# metric_to_spec / metric_from_spec live in repro.metrics.specs (the
# sharded build/search workers need them without this module); they are
# re-exported here because the saved-header format is their other home.


def _sanitize_meta(meta: dict[str, Any]) -> tuple[dict[str, Any], list[str]]:
    """Split builder provenance into (JSON-safe subset, dropped keys).

    :class:`GNetParameters` is serialized through a tagged dict (it is a
    frozen dataclass of numbers and the one meta object ``stats()``
    consumes); plain JSON values pass through; everything else — net
    hierarchies, cone families, numpy arrays — is dropped by key, with
    the keys recorded so a loaded index can report what it lost.
    """
    kept: dict[str, Any] = {}
    dropped: list[str] = []
    for key, value in meta.items():
        if isinstance(value, GNetParameters):
            kept[key] = {_GNET_PARAMS_TAG: dataclasses.asdict(value)}
            continue
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            dropped.append(key)
        else:
            kept[key] = value
    return kept, dropped


def _rehydrate_meta(kept: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in kept.items():
        if isinstance(value, dict) and _GNET_PARAMS_TAG in value:
            out[key] = GNetParameters(**value[_GNET_PARAMS_TAG])
        else:
            out[key] = value
    return out


def _flat_header(index: "ProximityGraphIndex") -> dict[str, Any]:
    """The JSON header both flat writers (v4 .npz, v5 disk dir) share."""
    spec = metric_to_spec(index.dataset.metric)
    meta_kept, meta_dropped = _sanitize_meta(index.built.meta)
    options_kept, _options_dropped = _sanitize_meta(index.built.options)
    return {
        "n": int(index.dataset.n),
        "builder": index.built.name,
        "epsilon": float(index.built.epsilon),
        "guaranteed": bool(index.built.guaranteed),
        "scale": float(index.scale),
        "seed": int(getattr(index, "seed", 0)),
        "metric": spec,
        "meta": meta_kept,
        "meta_dropped": meta_dropped,
        "options": options_kept,
        "storage": index.store.spec(),
    }


def _coordinate_points(index: "ProximityGraphIndex") -> np.ndarray:
    points = np.asarray(index.dataset.points)
    if points.dtype == object or not np.issubdtype(points.dtype, np.number):
        raise NotImplementedError(
            "cannot save an index whose points are not a numeric coordinate "
            f"array (got dtype {points.dtype})"
        )
    return points


def save_index(
    index: "ProximityGraphIndex",
    path: str | Path,
    format: str = "npz",
    compress: bool = True,
) -> Path:
    """Write ``index`` to ``path``.

    ``format="npz"`` (default) writes a single ``.npz`` file — format
    v4 — compressed unless ``compress=False`` (uncompressed saves are
    several times faster on large indexes; the file is bigger but loads
    the same).  ``format="disk"`` writes the v5 directory of raw binary
    files that ``load_index(path, mmap=True)`` attaches lazily; raw
    files are inherently uncompressed, so ``compress`` is ignored
    there.  Raises :class:`NotImplementedError` for indexes over
    non-coordinate metrics (see the module docstring).  Returns the
    path written (numpy appends ``.npz`` when missing).
    """
    if format == "disk":
        return _save_disk_index(index, path)
    if format != "npz":
        raise ValueError(f"unknown save format {format!r}; use 'npz' or 'disk'")
    points = _coordinate_points(index)
    offsets, targets = index.graph.csr()
    header = {"format_version": FORMAT_VERSION, **_flat_header(index)}
    store_arrays = {
        f"store_{name}": arr for name, arr in index.store.arrays().items()
    }
    path = Path(path)
    writer = np.savez_compressed if compress else np.savez
    writer(
        path,
        offsets=offsets.astype(np.int64, copy=False),
        targets=targets.astype(np.int64, copy=False),
        points=points,
        external_ids=index.id_map.externals.astype(np.int64, copy=False),
        tombstones=index._tombstones.astype(np.uint8, copy=False),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **store_arrays,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


# ----------------------------------------------------------------------
# Format v5: the disk directory (one raw binary file per array)
# ----------------------------------------------------------------------


def _disk_array_files(
    index: "ProximityGraphIndex",
) -> dict[str, np.ndarray]:
    """File stem -> array, for every array a v5 directory holds.

    CSR indices are widened to int64 on the way out so the loader (and
    the accel planner's ``ascontiguousarray``) can adopt the mappings
    without a converting copy; codes get their own ``codes.bin`` (the
    hot tier), quantizer training state lands in ``store_*.bin``.
    """
    offsets, targets = index.graph.csr()
    files = {
        "csr_offsets": offsets.astype(np.int64, copy=False),
        "csr_targets": targets.astype(np.int64, copy=False),
        "vectors": _coordinate_points(index),
        "external_ids": index.id_map.externals.astype(np.int64, copy=False),
        "tombstones": index._tombstones.astype(np.uint8, copy=False),
    }
    for name, arr in index.store.arrays().items():
        files["codes" if name == "codes" else f"store_{name}"] = arr
    return files


def _save_disk_index(index: "ProximityGraphIndex", path: str | Path) -> Path:
    """Write the v5 directory: raw array files + ``header.json`` last.

    The header doubles as the commit marker — an interrupted save
    leaves a directory without ``header.json``, which the loader
    rejects by name instead of attaching torn arrays.
    """
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{path} exists and is not a directory; a disk-format index "
            "saves as a directory of raw array files"
        )
    files = _disk_array_files(index)
    manifest: dict[str, Any] = {}
    try:
        path.mkdir(parents=True, exist_ok=True)
        for stem, arr in files.items():
            arr = np.ascontiguousarray(arr)
            arr.tofile(path / f"{stem}.bin")
            manifest[stem] = {
                "file": f"{stem}.bin",
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        header = {
            "format_version": DISK_FORMAT_VERSION,
            "kind": "disk-index",
            **_flat_header(index),
            "arrays": manifest,
        }
        (path / DISK_HEADER_NAME).write_text(
            json.dumps(header, indent=2), encoding="utf-8"
        )
    except OSError as exc:
        raise ValueError(
            f"disk-dir-unwritable: cannot write v5 index into {path}: {exc}"
        ) from exc
    return path


def _attach_array(
    directory: Path, stem: str, entry: dict[str, Any], mmap: bool
) -> np.ndarray:
    """Open one v5 array file, validated against its header entry.

    With ``mmap=True`` returns a read-only ``np.memmap`` whose
    ownership transfers to the caller (the dataset/store/graph that
    adopts it holds the mapping for the index's lifetime; numpy
    releases it with the last reference).  With ``mmap=False`` the file
    is read eagerly into a private RAM array.  A missing file or a size
    that disagrees with ``dtype * prod(shape)`` — a truncated
    ``vectors.bin``, a hand-edited header — fails loudly with the
    invariant named.
    """
    file_path = directory / entry["file"]
    dtype = np.dtype(entry["dtype"])
    shape = tuple(int(s) for s in entry["shape"])
    if not file_path.is_file():
        raise ValueError(
            f"disk-file-missing: {directory} declares array {stem!r} in "
            f"{entry['file']} but the file does not exist"
        )
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    actual = file_path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"disk-array-size: {entry['file']} holds {actual} bytes but "
            f"header.json declares {dtype} x {shape} = {expected} bytes "
            "(truncated or mislabeled array)"
        )
    if not mmap:
        return np.fromfile(file_path, dtype=dtype).reshape(shape)
    if expected == 0:
        # np.memmap refuses zero-length mappings; an empty array needs
        # no backing file anyway.
        return np.empty(shape, dtype=dtype)
    return np.memmap(file_path, dtype=dtype, mode="r", shape=shape)


def _load_disk_index(
    path: Path, cls: type | None, mmap: bool
) -> "ProximityGraphIndex":
    """Load a v5 directory; ``mmap=True`` is the lazy-attach fast path.

    Large arrays (CSR, vectors, codes) attach as read-only memmaps —
    opening is O(header size), not O(index size) — and the store is
    wrapped in a :class:`~repro.storage.disk.DiskTierStore` so only the
    exact-rerank stage ever pages in ``vectors.bin``.  Mutable state
    (external ids, tombstone mask) is always read eagerly: ``delete()``
    writes the mask in place and must never touch the mapping.  Deep
    CSR content validation is skipped on the mmap path (it would fault
    in the whole hot tier); ``repro index info --validate`` runs it on
    demand via :func:`repro.core.integrity.check_disk_layout`.
    """
    if cls is None:
        from repro.core.index import ProximityGraphIndex as cls
    from repro.core.search import IdMap
    from repro.storage import store_from_arrays
    from repro.storage.disk import DiskTierStore

    header_path = path / DISK_HEADER_NAME
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"corrupt disk-index header {header_path}: {exc}"
        ) from exc
    version = header.get("format_version")
    if version != DISK_FORMAT_VERSION or header.get("kind") != "disk-index":
        raise ValueError(
            f"{header_path} is not a v{DISK_FORMAT_VERSION} disk-index "
            f"header (format_version={version!r}, kind="
            f"{header.get('kind')!r})"
        )
    entries = header.get("arrays")
    if not isinstance(entries, dict):
        raise ValueError(
            f"{header_path} declares no array manifest; the directory "
            "cannot be attached"
        )
    required = ("csr_offsets", "csr_targets", "vectors", "external_ids",
                "tombstones")
    missing = [stem for stem in required if stem not in entries]
    if missing:
        raise ValueError(
            f"disk-array-missing: {header_path} lists no entry for "
            f"{missing} — required by every v5 index"
        )
    n = int(header["n"])
    arrays = {
        stem: _attach_array(path, stem, entry, mmap=mmap and stem not in
                            ("external_ids", "tombstones"))
        for stem, entry in entries.items()
    }
    for stem in ("vectors", "external_ids", "tombstones"):
        if len(arrays[stem]) != n:
            raise ValueError(
                f"disk-array-rows: {entries[stem]['file']} holds "
                f"{len(arrays[stem])} rows but header.json declares n={n}"
            )
    graph = ProximityGraph.from_csr(
        n, arrays["csr_offsets"], arrays["csr_targets"], validate=not mmap
    )
    metric = metric_from_spec(header["metric"])
    points = arrays["vectors"]
    dataset = Dataset(metric, points)
    store_arrays = {
        ("codes" if stem == "codes" else stem[len("store_"):]): arr
        for stem, arr in arrays.items()
        if stem == "codes" or stem.startswith("store_")
    }
    inner = store_from_arrays(
        header.get("storage") or {"kind": "flat"}, store_arrays, metric, points
    )
    store = DiskTierStore(inner, points)
    built = BuiltGraph(
        name=header["builder"],
        graph=graph,
        epsilon=float(header["epsilon"]),
        guaranteed=bool(header["guaranteed"]),
        meta=_rehydrate_meta(header["meta"]),
        options=dict(header.get("options") or {}),
    )
    if header["meta_dropped"]:
        built.meta["meta_dropped"] = list(header["meta_dropped"])
    index = cls(
        dataset=dataset,
        built=built,
        scale=float(header["scale"]),
        rng=np.random.default_rng(int(header["seed"])),
        # validated=True: uniqueness was enforced when the file was
        # written, and re-deriving the reverse map eagerly would put an
        # O(n) Python loop back on the millisecond attach path.
        id_map=IdMap(
            arrays["external_ids"].astype(np.int64, copy=False),
            validated=True,
        ),
        tombstones=arrays["tombstones"].astype(bool),
        store=store,
    )
    index.seed = int(header["seed"])
    return index


def load_index(
    path: str | Path, cls: type | None = None, mmap: bool | None = None
) -> "ProximityGraphIndex":
    """Load an index saved by :func:`save_index` (format v1, v2, v4, v5).

    The loaded index answers ``search`` with ids and distances identical
    to the saved one: the CSR arrays are adopted verbatim, the points
    array round-trips losslessly, and the scale and metric constants
    survive JSON exactly (Python floats serialize shortest-round-trip).
    The query rng is re-seeded from the saved build seed, so per-call
    random starts follow the same stream a freshly built index would
    use.  v1 files predate the mutable collection: they load with the
    identity id map and no tombstones.  v1–v3-era files predate the
    storage layer: they load as flat (exact) storage; v4 files restore
    the saved store — codes, codebooks/scales, and training stats
    (including the drift counter) — exactly.

    A v5 disk directory (``header.json`` inside) lazily attaches via
    ``np.memmap`` by default — pass ``mmap=False`` to read it eagerly
    into RAM instead.  ``mmap=True`` on an ``.npz`` file is an error
    (zip members cannot be mapped); re-save with ``format="disk"``.
    """
    if cls is None:
        from repro.core.index import ProximityGraphIndex as cls
    from repro.core.search import IdMap
    from repro.storage import store_from_arrays

    path = Path(path)
    if path.is_dir():
        if (path / DISK_HEADER_NAME).is_file():
            return _load_disk_index(path, cls, mmap=mmap is not False)
        if (path / MANIFEST_NAME).is_file():
            raise ValueError(
                f"{path} is a sharded (format v3) manifest directory — "
                "load it via ShardedIndex.load / load_sharded_index / "
                "load_any, not load_index"
            )
        raise ValueError(
            f"{path} is a directory without {DISK_HEADER_NAME} (disk "
            f"format v5) or {MANIFEST_NAME} (sharded format v3) — not a "
            "saved index"
        )
    if mmap:
        raise ValueError(
            f"{path} is a single-file .npz index; zip members cannot be "
            "memory-mapped — re-save with save_index(..., format='disk') "
            "to get an mmap-able v5 directory"
        )
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        version = header.get("format_version")
        if version == SHARDED_FORMAT_VERSION:
            raise ValueError(
                f"{path} is labeled format version "
                f"{SHARDED_FORMAT_VERSION}, the sharded manifest-directory "
                "layout — a flat file can never carry it; load the "
                "enclosing directory via ShardedIndex.load / "
                "load_sharded_index / load_any"
            )
        if version == DISK_FORMAT_VERSION:
            raise ValueError(
                f"{path} is labeled format version {DISK_FORMAT_VERSION}, "
                "the disk directory layout — a single .npz can never carry "
                "it; load the v5 directory itself (load_index on the "
                "directory, or load_any)"
            )
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported index format version {version!r} "
                f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
            )
        n = int(header["n"])
        graph = ProximityGraph.from_csr(
            n,
            data["offsets"].astype(np.int64),
            data["targets"].astype(np.intp),
            validate=True,
        )
        points = data["points"]
        if version >= 2:
            external_ids = data["external_ids"].astype(np.int64)
            tombstones = data["tombstones"].astype(bool)
        else:
            external_ids = np.arange(n, dtype=np.int64)
            tombstones = np.zeros(n, dtype=bool)
        store_arrays = {
            name[len("store_"):]: data[name]
            for name in data.files
            if name.startswith("store_")
        }
    metric = metric_from_spec(header["metric"])
    dataset = Dataset(metric, points)
    store = store_from_arrays(
        header.get("storage") or {"kind": "flat"}, store_arrays, metric, points
    )
    built = BuiltGraph(
        name=header["builder"],
        graph=graph,
        epsilon=float(header["epsilon"]),
        guaranteed=bool(header["guaranteed"]),
        meta=_rehydrate_meta(header["meta"]),
        options=dict(header.get("options") or {}),
    )
    if header["meta_dropped"]:
        built.meta["meta_dropped"] = list(header["meta_dropped"])
    index = cls(
        dataset=dataset,
        built=built,
        scale=float(header["scale"]),
        rng=np.random.default_rng(int(header["seed"])),
        id_map=IdMap(external_ids),
        tombstones=tombstones,
        store=store,
    )
    index.seed = int(header["seed"])
    return index


# ----------------------------------------------------------------------
# Format v3: the sharded manifest directory
# ----------------------------------------------------------------------


def _shard_filename(j: int, format: str = "npz") -> str:
    return f"shard-{j:03d}.npz" if format == "npz" else f"shard-{j:03d}.disk"


def save_sharded_index(
    index: "ShardedIndex",
    path: str | Path,
    format: str = "npz",
    compress: bool = True,
) -> Path:
    """Write a :class:`ShardedIndex` as a manifest directory.

    ``path`` becomes a directory holding ``manifest.json`` plus one
    per-shard entry written by :func:`save_index` — a flat-format
    ``.npz`` by default, or (``format="disk"``) a per-shard v5
    ``shard-NNN.disk/`` directory, so everything a flat save preserves —
    CSR graph, points, id map, tombstones, metric spec, builder
    options, vector store — is preserved per shard and every shard can
    lazily mmap-attach on load.
    The manifest records the fan-out state that lives *above* the
    shards: assignment policy, build seed, worker count, and the next
    fresh external id (so id stability survives delete-then-reload).
    """
    if format not in ("npz", "disk"):
        raise ValueError(f"unknown save format {format!r}; use 'npz' or 'disk'")
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{path} exists and is not a directory; a sharded index "
            "saves as a manifest directory"
        )
    path.mkdir(parents=True, exist_ok=True)
    shard_files = []
    for j, shard in enumerate(index.shards):
        save_index(
            shard, path / _shard_filename(j, format),
            format=format, compress=compress,
        )
        shard_files.append(_shard_filename(j, format))
    # Re-saving into a directory that held a wider (or differently
    # formatted) index must not leave stale shard entries behind: the
    # directory's shard-* set always matches the manifest exactly.
    for stale in path.glob("shard-*"):
        if stale.name not in shard_files:
            if stale.is_dir():
                shutil.rmtree(stale)
            else:
                stale.unlink()
    manifest = {
        "format_version": SHARDED_FORMAT_VERSION,
        "kind": "sharded-index",
        "shards": len(index.shards),
        "shard_files": shard_files,
        "shard_format": format,
        "assignment": index.assignment,
        "seed": int(index.seed),
        "workers": int(index.workers),
        "search_chunk": int(index.search_chunk),
        "next_id": int(index._next),
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return path


def load_sharded_index(
    path: str | Path, cls: type | None = None, mmap: bool | None = None
) -> "ShardedIndex":
    """Load a directory written by :func:`save_sharded_index`.

    Shards saved with ``format="disk"`` are per-shard v5 directories;
    they lazily mmap-attach by default (``mmap=False`` forces eager
    reads).  Errors are diagnosed precisely: a missing manifest, corrupt
    manifest JSON, a wrong format version, a shard-count mismatch, and
    missing shard files each raise ``ValueError`` naming the problem —
    a partially copied index directory must never load quietly.
    """
    if cls is None:
        from repro.core.sharded import ShardedIndex as cls

    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest_path.exists():
        raise ValueError(
            f"{path} is not a sharded index: no {MANIFEST_NAME} found"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"corrupt sharded-index manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != "sharded-index":
        raise ValueError(
            f"{manifest_path} is not a sharded-index manifest "
            "(missing kind: 'sharded-index')"
        )
    version = manifest.get("format_version")
    if version != SHARDED_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded format version {version!r} "
            f"(this build reads version {SHARDED_FORMAT_VERSION})"
        )
    root = manifest_path.parent
    shard_files = manifest.get("shard_files")
    declared = manifest.get("shards")
    if not shard_files or declared != len(shard_files):
        raise ValueError(
            f"corrupt sharded-index manifest {manifest_path}: declares "
            f"{declared!r} shards but lists {len(shard_files or [])} files"
        )
    shards = []
    for name in shard_files:
        shard_path = root / name
        if not shard_path.exists():
            raise ValueError(
                f"sharded index at {root} is incomplete: missing shard "
                f"file {name} (declared in {MANIFEST_NAME})"
            )
        shards.append(
            load_index(shard_path, mmap=mmap)
            if shard_path.is_dir()
            else load_index(shard_path)
        )
    return cls(
        shards,
        seed=int(manifest.get("seed", 0)),
        workers=int(manifest.get("workers", 1)),
        assignment=manifest.get("assignment", "random"),
        next_id=manifest.get("next_id"),
        search_chunk=int(manifest.get("search_chunk", 4096)),
    )


def load_any(
    path: str | Path, mmap: bool | None = None
) -> "ProximityGraphIndex | ShardedIndex":
    """Load whichever index kind lives at ``path``.

    Dispatches on shape: a directory with a ``header.json`` loads as a
    flat v5 disk index, a directory with a ``manifest.json`` (or the
    manifest itself) as a :class:`ShardedIndex`, and a single file as a
    flat :class:`ProximityGraphIndex`.  ``mmap`` passes through to the
    disk-format loaders (directories attach lazily by default).  The
    one loader every CLI entry point uses, so saved indexes of either
    kind are interchangeable from the shell.
    """
    path = Path(path)
    if path.is_dir() and (path / DISK_HEADER_NAME).is_file():
        return load_index(path, mmap=mmap)
    if path.is_dir() or path.name == MANIFEST_NAME:
        return load_sharded_index(path, mmap=mmap)
    return load_index(path, mmap=mmap)
