"""Index persistence — one ``.npz`` per index, JSON header inside.

A saved :class:`~repro.core.index.ProximityGraphIndex` is a single
compressed ``.npz`` holding the graph's CSR arrays verbatim
(``offsets``/``targets``), the normalized point coordinates, and a JSON
header (builder name, epsilon, guarantee flag, normalization scale,
metric spec, rng seed, and the JSON-safe slice of the builder's
provenance ``meta``).  Loading reconstructs the metric from its spec,
adopts the CSR arrays without per-row copies, and returns an index whose
``search`` answers are *identical* — same ids, same distances — to the
index that was saved.

Format v2 (this build) additionally persists the *mutable-collection*
state: the external id map (``external_ids``), the tombstone mask
(``tombstones``), and the recorded builder options (so ``compact()``
can replay the construction after a reload).  v1 files — written before
the index was mutable — still load: they get the identity id map, an
empty tombstone mask, and default builder options.

Only **coordinate metrics** (Euclidean, Chebyshev, Minkowski, optionally
wrapped in the normalization :class:`~repro.metrics.base.ScaledMetric`)
have an on-disk form: their state is a handful of floats and the points
array round-trips losslessly through ``.npz``.  Abstract metrics —
:class:`~repro.metrics.counting.CountingMetric` (mutable counter),
:class:`~repro.metrics.tree_metric.TreeMetric` and explicit-matrix
spaces (id-based points) — raise :class:`NotImplementedError` from
``save()`` rather than silently pickling objects whose identity cannot
be restored faithfully.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.builders import BuiltGraph
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters
from repro.metrics.base import Dataset, MetricSpace, ScaledMetric
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.index import ProximityGraphIndex

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "metric_to_spec",
    "metric_from_spec",
    "save_index",
    "load_index",
]

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

# Tag for GNetParameters entries in the serialized meta (the one
# provenance object stats() needs back as a real object).
_GNET_PARAMS_TAG = "__gnet_parameters__"


def metric_to_spec(metric: MetricSpace) -> dict[str, Any]:
    """JSON spec of a coordinate metric, or ``NotImplementedError``.

    The supported family is closed by construction: Euclidean /
    Chebyshev / Minkowski leaves, optionally wrapped in a
    :class:`ScaledMetric`.  Anything else (counting wrappers, tree
    metrics, explicit matrices, user subclasses) has no faithful
    on-disk form here and must not be pickled silently.
    """
    if isinstance(metric, EuclideanMetric):
        return {"kind": "euclidean"}
    if isinstance(metric, ChebyshevMetric):
        return {"kind": "chebyshev"}
    if isinstance(metric, MinkowskiMetric):
        return {"kind": "minkowski", "p": float(metric.p)}
    if isinstance(metric, ScaledMetric):
        return {
            "kind": "scaled",
            "factor": float(metric.factor),
            "inner": metric_to_spec(metric.inner),
        }
    raise NotImplementedError(
        f"cannot save an index over {type(metric).__name__}: only coordinate "
        "metrics (EuclideanMetric, ChebyshevMetric, MinkowskiMetric, "
        "optionally ScaledMetric-wrapped) can be serialized"
    )


def metric_from_spec(spec: dict[str, Any]) -> MetricSpace:
    """Inverse of :func:`metric_to_spec`."""
    kind = spec.get("kind")
    if kind == "euclidean":
        return EuclideanMetric()
    if kind == "chebyshev":
        return ChebyshevMetric()
    if kind == "minkowski":
        return MinkowskiMetric(spec["p"])
    if kind == "scaled":
        return ScaledMetric(metric_from_spec(spec["inner"]), spec["factor"])
    raise ValueError(f"unknown metric spec {spec!r}")


def _sanitize_meta(meta: dict[str, Any]) -> tuple[dict[str, Any], list[str]]:
    """Split builder provenance into (JSON-safe subset, dropped keys).

    :class:`GNetParameters` is serialized through a tagged dict (it is a
    frozen dataclass of numbers and the one meta object ``stats()``
    consumes); plain JSON values pass through; everything else — net
    hierarchies, cone families, numpy arrays — is dropped by key, with
    the keys recorded so a loaded index can report what it lost.
    """
    kept: dict[str, Any] = {}
    dropped: list[str] = []
    for key, value in meta.items():
        if isinstance(value, GNetParameters):
            kept[key] = {_GNET_PARAMS_TAG: dataclasses.asdict(value)}
            continue
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            dropped.append(key)
        else:
            kept[key] = value
    return kept, dropped


def _rehydrate_meta(kept: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in kept.items():
        if isinstance(value, dict) and _GNET_PARAMS_TAG in value:
            out[key] = GNetParameters(**value[_GNET_PARAMS_TAG])
        else:
            out[key] = value
    return out


def save_index(index: "ProximityGraphIndex", path: str | Path) -> Path:
    """Write ``index`` to ``path`` as a single ``.npz`` file.

    Raises :class:`NotImplementedError` for indexes over non-coordinate
    metrics (see the module docstring).  Returns the path written
    (numpy appends ``.npz`` when missing).
    """
    spec = metric_to_spec(index.dataset.metric)
    points = np.asarray(index.dataset.points)
    if points.dtype == object or not np.issubdtype(points.dtype, np.number):
        raise NotImplementedError(
            "cannot save an index whose points are not a numeric coordinate "
            f"array (got dtype {points.dtype})"
        )
    offsets, targets = index.graph.csr()
    meta_kept, meta_dropped = _sanitize_meta(index.built.meta)
    options_kept, _options_dropped = _sanitize_meta(index.built.options)
    header = {
        "format_version": FORMAT_VERSION,
        "n": int(index.dataset.n),
        "builder": index.built.name,
        "epsilon": float(index.built.epsilon),
        "guaranteed": bool(index.built.guaranteed),
        "scale": float(index.scale),
        "seed": int(getattr(index, "seed", 0)),
        "metric": spec,
        "meta": meta_kept,
        "meta_dropped": meta_dropped,
        "options": options_kept,
    }
    path = Path(path)
    np.savez_compressed(
        path,
        offsets=offsets.astype(np.int64, copy=False),
        targets=targets.astype(np.int64, copy=False),
        points=points,
        external_ids=index.id_map.externals.astype(np.int64, copy=False),
        tombstones=index._tombstones.astype(np.uint8, copy=False),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path, cls: type | None = None) -> "ProximityGraphIndex":
    """Load an index saved by :func:`save_index` (format v1 or v2).

    The loaded index answers ``search`` with ids and distances identical
    to the saved one: the CSR arrays are adopted verbatim, the points
    array round-trips losslessly, and the scale and metric constants
    survive JSON exactly (Python floats serialize shortest-round-trip).
    The query rng is re-seeded from the saved build seed, so per-call
    random starts follow the same stream a freshly built index would
    use.  v1 files predate the mutable collection: they load with the
    identity id map and no tombstones.
    """
    if cls is None:
        from repro.core.index import ProximityGraphIndex as cls
    from repro.core.search import IdMap

    with np.load(Path(path), allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        version = header.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported index format version {version!r} "
                f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
            )
        n = int(header["n"])
        graph = ProximityGraph.from_csr(
            n,
            data["offsets"].astype(np.int64),
            data["targets"].astype(np.intp),
            validate=True,
        )
        points = data["points"]
        if version >= 2:
            external_ids = data["external_ids"].astype(np.int64)
            tombstones = data["tombstones"].astype(bool)
        else:
            external_ids = np.arange(n, dtype=np.int64)
            tombstones = np.zeros(n, dtype=bool)
    metric = metric_from_spec(header["metric"])
    dataset = Dataset(metric, points)
    built = BuiltGraph(
        name=header["builder"],
        graph=graph,
        epsilon=float(header["epsilon"]),
        guaranteed=bool(header["guaranteed"]),
        meta=_rehydrate_meta(header["meta"]),
        options=dict(header.get("options") or {}),
    )
    if header["meta_dropped"]:
        built.meta["meta_dropped"] = list(header["meta_dropped"])
    index = cls(
        dataset=dataset,
        built=built,
        scale=float(header["scale"]),
        rng=np.random.default_rng(int(header["seed"])),
        id_map=IdMap(external_ids),
        tombstones=tombstones,
    )
    index.seed = int(header["seed"])
    return index
