"""Index persistence — one ``.npz`` per index, JSON header inside.

A saved :class:`~repro.core.index.ProximityGraphIndex` is a single
compressed ``.npz`` holding the graph's CSR arrays verbatim
(``offsets``/``targets``), the normalized point coordinates, and a JSON
header (builder name, epsilon, guarantee flag, normalization scale,
metric spec, rng seed, and the JSON-safe slice of the builder's
provenance ``meta``).  Loading reconstructs the metric from its spec,
adopts the CSR arrays without per-row copies, and returns an index whose
``search`` answers are *identical* — same ids, same distances — to the
index that was saved.

Format v2 additionally persists the *mutable-collection* state: the
external id map (``external_ids``), the tombstone mask
(``tombstones``), and the recorded builder options (so ``compact()``
can replay the construction after a reload).  v1 files — written before
the index was mutable — still load: they get the identity id map, an
empty tombstone mask, and default builder options.

Format v3 is the **sharded directory** layout of a
:class:`~repro.core.sharded.ShardedIndex`: a ``manifest.json`` naming
the shard files plus routing state (assignment policy, seed, worker
count, next fresh external id), next to one flat per-shard file each —
so the shard format and the flat format share one code path, and older
flat files keep loading through the same :func:`load_index`.  Use
:func:`load_any` when the on-disk kind is not known in advance; it
dispatches on the manifest and returns whichever index type was saved.

Format v4 (this build) adds the **vector store**: the storage spec
(kind, quantizer options, training stats including the drift counter)
joins the JSON header, and the store's arrays — codes, PQ codebooks,
SQ8 scales — are written as ``store_*`` members.  Flat-storage indexes
carry only the spec (no extra arrays).  v1–v3 files still load (as
flat storage); sharded directories keep the v3 manifest and simply
hold v4 shard files inside.

Only **coordinate metrics** (Euclidean, Chebyshev, Minkowski, optionally
wrapped in the normalization :class:`~repro.metrics.base.ScaledMetric`)
have an on-disk form: their state is a handful of floats and the points
array round-trips losslessly through ``.npz``.  Abstract metrics —
:class:`~repro.metrics.counting.CountingMetric` (mutable counter),
:class:`~repro.metrics.tree_metric.TreeMetric` and explicit-matrix
spaces (id-based points) — raise :class:`NotImplementedError` from
``save()`` rather than silently pickling objects whose identity cannot
be restored faithfully.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.builders import BuiltGraph
from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters
from repro.metrics.base import Dataset
from repro.metrics.specs import metric_from_spec, metric_to_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.index import ProximityGraphIndex
    from repro.core.sharded import ShardedIndex

__all__ = [
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
    "metric_to_spec",
    "metric_from_spec",
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_sharded_index",
    "load_any",
]

FORMAT_VERSION = 4
SHARDED_FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 4)
MANIFEST_NAME = "manifest.json"

# Tag for GNetParameters entries in the serialized meta (the one
# provenance object stats() needs back as a real object).
_GNET_PARAMS_TAG = "__gnet_parameters__"


# metric_to_spec / metric_from_spec live in repro.metrics.specs (the
# sharded build/search workers need them without this module); they are
# re-exported here because the saved-header format is their other home.


def _sanitize_meta(meta: dict[str, Any]) -> tuple[dict[str, Any], list[str]]:
    """Split builder provenance into (JSON-safe subset, dropped keys).

    :class:`GNetParameters` is serialized through a tagged dict (it is a
    frozen dataclass of numbers and the one meta object ``stats()``
    consumes); plain JSON values pass through; everything else — net
    hierarchies, cone families, numpy arrays — is dropped by key, with
    the keys recorded so a loaded index can report what it lost.
    """
    kept: dict[str, Any] = {}
    dropped: list[str] = []
    for key, value in meta.items():
        if isinstance(value, GNetParameters):
            kept[key] = {_GNET_PARAMS_TAG: dataclasses.asdict(value)}
            continue
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            dropped.append(key)
        else:
            kept[key] = value
    return kept, dropped


def _rehydrate_meta(kept: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in kept.items():
        if isinstance(value, dict) and _GNET_PARAMS_TAG in value:
            out[key] = GNetParameters(**value[_GNET_PARAMS_TAG])
        else:
            out[key] = value
    return out


def save_index(index: "ProximityGraphIndex", path: str | Path) -> Path:
    """Write ``index`` to ``path`` as a single ``.npz`` file.

    Raises :class:`NotImplementedError` for indexes over non-coordinate
    metrics (see the module docstring).  Returns the path written
    (numpy appends ``.npz`` when missing).
    """
    spec = metric_to_spec(index.dataset.metric)
    points = np.asarray(index.dataset.points)
    if points.dtype == object or not np.issubdtype(points.dtype, np.number):
        raise NotImplementedError(
            "cannot save an index whose points are not a numeric coordinate "
            f"array (got dtype {points.dtype})"
        )
    offsets, targets = index.graph.csr()
    meta_kept, meta_dropped = _sanitize_meta(index.built.meta)
    options_kept, _options_dropped = _sanitize_meta(index.built.options)
    store = index.store
    header = {
        "format_version": FORMAT_VERSION,
        "n": int(index.dataset.n),
        "builder": index.built.name,
        "epsilon": float(index.built.epsilon),
        "guaranteed": bool(index.built.guaranteed),
        "scale": float(index.scale),
        "seed": int(getattr(index, "seed", 0)),
        "metric": spec,
        "meta": meta_kept,
        "meta_dropped": meta_dropped,
        "options": options_kept,
        "storage": store.spec(),
    }
    store_arrays = {
        f"store_{name}": arr for name, arr in store.arrays().items()
    }
    path = Path(path)
    np.savez_compressed(
        path,
        offsets=offsets.astype(np.int64, copy=False),
        targets=targets.astype(np.int64, copy=False),
        points=points,
        external_ids=index.id_map.externals.astype(np.int64, copy=False),
        tombstones=index._tombstones.astype(np.uint8, copy=False),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **store_arrays,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path, cls: type | None = None) -> "ProximityGraphIndex":
    """Load an index saved by :func:`save_index` (format v1, v2 or v4).

    The loaded index answers ``search`` with ids and distances identical
    to the saved one: the CSR arrays are adopted verbatim, the points
    array round-trips losslessly, and the scale and metric constants
    survive JSON exactly (Python floats serialize shortest-round-trip).
    The query rng is re-seeded from the saved build seed, so per-call
    random starts follow the same stream a freshly built index would
    use.  v1 files predate the mutable collection: they load with the
    identity id map and no tombstones.  v1–v3-era files predate the
    storage layer: they load as flat (exact) storage; v4 files restore
    the saved store — codes, codebooks/scales, and training stats
    (including the drift counter) — exactly.
    """
    if cls is None:
        from repro.core.index import ProximityGraphIndex as cls
    from repro.core.search import IdMap
    from repro.storage import store_from_arrays

    path = Path(path)
    if path.is_dir():
        raise ValueError(
            f"{path} is a directory — sharded (format v3) indexes load "
            "via ShardedIndex.load / load_any, not load_index"
        )
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        version = header.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported index format version {version!r} "
                f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
            )
        n = int(header["n"])
        graph = ProximityGraph.from_csr(
            n,
            data["offsets"].astype(np.int64),
            data["targets"].astype(np.intp),
            validate=True,
        )
        points = data["points"]
        if version >= 2:
            external_ids = data["external_ids"].astype(np.int64)
            tombstones = data["tombstones"].astype(bool)
        else:
            external_ids = np.arange(n, dtype=np.int64)
            tombstones = np.zeros(n, dtype=bool)
        store_arrays = {
            name[len("store_"):]: data[name]
            for name in data.files
            if name.startswith("store_")
        }
    metric = metric_from_spec(header["metric"])
    dataset = Dataset(metric, points)
    store = store_from_arrays(
        header.get("storage") or {"kind": "flat"}, store_arrays, metric, points
    )
    built = BuiltGraph(
        name=header["builder"],
        graph=graph,
        epsilon=float(header["epsilon"]),
        guaranteed=bool(header["guaranteed"]),
        meta=_rehydrate_meta(header["meta"]),
        options=dict(header.get("options") or {}),
    )
    if header["meta_dropped"]:
        built.meta["meta_dropped"] = list(header["meta_dropped"])
    index = cls(
        dataset=dataset,
        built=built,
        scale=float(header["scale"]),
        rng=np.random.default_rng(int(header["seed"])),
        id_map=IdMap(external_ids),
        tombstones=tombstones,
        store=store,
    )
    index.seed = int(header["seed"])
    return index


# ----------------------------------------------------------------------
# Format v3: the sharded manifest directory
# ----------------------------------------------------------------------


def _shard_filename(j: int) -> str:
    return f"shard-{j:03d}.npz"


def save_sharded_index(index: "ShardedIndex", path: str | Path) -> Path:
    """Write a :class:`ShardedIndex` as a manifest directory.

    ``path`` becomes a directory holding ``manifest.json`` plus one
    flat-format per-shard ``.npz`` (written by :func:`save_index`, so
    everything a flat file preserves — CSR graph, points, id map,
    tombstones, metric spec, builder options, vector store — is
    preserved per shard).
    The manifest records the fan-out state that lives *above* the
    shards: assignment policy, build seed, worker count, and the next
    fresh external id (so id stability survives delete-then-reload).
    """
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{path} exists and is not a directory; a sharded index "
            "saves as a manifest directory"
        )
    path.mkdir(parents=True, exist_ok=True)
    shard_files = []
    for j, shard in enumerate(index.shards):
        save_index(shard, path / _shard_filename(j))
        shard_files.append(_shard_filename(j))
    # Re-saving into a directory that held a wider index must not leave
    # stale shard files behind: the directory's shard-*.npz set always
    # matches the manifest exactly.
    for stale in path.glob("shard-*.npz"):
        if stale.name not in shard_files:
            stale.unlink()
    manifest = {
        "format_version": SHARDED_FORMAT_VERSION,
        "kind": "sharded-index",
        "shards": len(index.shards),
        "shard_files": shard_files,
        "assignment": index.assignment,
        "seed": int(index.seed),
        "workers": int(index.workers),
        "search_chunk": int(index.search_chunk),
        "next_id": int(index._next),
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return path


def load_sharded_index(path: str | Path, cls: type | None = None) -> "ShardedIndex":
    """Load a directory written by :func:`save_sharded_index`.

    Errors are diagnosed precisely: a missing manifest, corrupt
    manifest JSON, a wrong format version, a shard-count mismatch, and
    missing shard files each raise ``ValueError`` naming the problem —
    a partially copied index directory must never load quietly.
    """
    if cls is None:
        from repro.core.sharded import ShardedIndex as cls

    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest_path.exists():
        raise ValueError(
            f"{path} is not a sharded index: no {MANIFEST_NAME} found"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"corrupt sharded-index manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != "sharded-index":
        raise ValueError(
            f"{manifest_path} is not a sharded-index manifest "
            "(missing kind: 'sharded-index')"
        )
    version = manifest.get("format_version")
    if version != SHARDED_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded format version {version!r} "
            f"(this build reads version {SHARDED_FORMAT_VERSION})"
        )
    root = manifest_path.parent
    shard_files = manifest.get("shard_files")
    declared = manifest.get("shards")
    if not shard_files or declared != len(shard_files):
        raise ValueError(
            f"corrupt sharded-index manifest {manifest_path}: declares "
            f"{declared!r} shards but lists {len(shard_files or [])} files"
        )
    shards = []
    for name in shard_files:
        shard_path = root / name
        if not shard_path.exists():
            raise ValueError(
                f"sharded index at {root} is incomplete: missing shard "
                f"file {name} (declared in {MANIFEST_NAME})"
            )
        shards.append(load_index(shard_path))
    return cls(
        shards,
        seed=int(manifest.get("seed", 0)),
        workers=int(manifest.get("workers", 1)),
        assignment=manifest.get("assignment", "random"),
        next_id=manifest.get("next_id"),
        search_chunk=int(manifest.get("search_chunk", 4096)),
    )


def load_any(path: str | Path) -> "ProximityGraphIndex | ShardedIndex":
    """Load whichever index kind lives at ``path``.

    Dispatches on shape: a directory (or a ``manifest.json``) loads as
    a :class:`ShardedIndex`; a single file as a flat
    :class:`ProximityGraphIndex`.  The one loader every CLI entry point
    uses, so saved indexes of either kind are interchangeable from the
    shell.
    """
    path = Path(path)
    if path.is_dir() or path.name == MANIFEST_NAME:
        return load_sharded_index(path)
    return load_index(path)
