"""The unified search surface: parameters, results, and stable ids.

``ProximityGraphIndex.search(queries, k, params)`` is the one front door
for every query shape the library answers — single query or batch,
greedy or beam, budgeted or not, filtered or not.  This module holds the
three value types that API is built from:

* :class:`SearchParams` — every knob of a search call in one immutable
  bundle: engine mode, beam width, distance-evaluation budget, explicit
  start vertices or a reproducibility seed, and an ``allowed_ids``
  filter restricting which points may be *returned* (routing still
  traverses the full graph, which is what keeps filtered search
  navigable);
* :class:`SearchResult` — dense ``(m, k)`` id/distance arrays (external
  ids, original distance units) plus per-query cost stats, with ``-1`` /
  ``inf`` padding where a filter left fewer than ``k`` admissible
  points;
* :class:`IdMap` — the external↔internal translation that makes ids
  *stable* under mutation: callers hold external ids that survive
  ``add``/``delete``/``compact``/``save``/``load`` while the graph keeps
  working in dense internal indices ``0..n-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["SearchParams", "SearchResult", "IdMap"]


@dataclass(frozen=True)
class SearchParams:
    """Knobs of one :meth:`~repro.core.index.ProximityGraphIndex.search` call.

    Attributes
    ----------
    mode:
        ``"auto"`` (default) picks the paper's greedy routine for plain
        ``k=1`` searches and beam search otherwise (``k > 1``, an
        explicit ``beam_width``, or an active filter/tombstone mask).
        ``"greedy"`` / ``"beam"`` force the engine.
    beam_width:
        Beam pool size (HNSW's ``ef``); defaults to ``max(2 * k, 16)``
        in beam mode.  Ignored by greedy.
    budget:
        Cap on distance evaluations per query — the paper's
        ``query(p_start, q, Q)`` cutoff.  Honored by *both* engines.
    starts:
        One internal start vertex per query (advanced; any start is
        valid — Section 1.1).  Overrides ``seed``.
    seed:
        Seed for drawing default start vertices.  ``None`` falls back to
        the index's build seed, so repeated identical calls return
        identical results — no shared-generator call-order dependence.
    allowed_ids:
        External ids that may be returned (a filter / allow-list).
        Routing still traverses the whole graph; disallowed vertices are
        only barred from the result set.  Unknown ids are ignored (a
        filter is a restriction, never an expansion).  Tombstoned points
        are always excluded, with or without a filter.
    rerank_factor:
        Over-fetch multiplier of the two-stage (compressed traversal →
        exact rerank) pipeline: the traversal collects ``k *
        rerank_factor`` candidates and a single exact-distance pass over
        them returns the top ``k``.  ``None`` (default) resolves to the
        index's storage default — 1 for flat storage (no second stage;
        results bit-identical to the pre-storage pipeline), 2 for SQ8,
        4 for PQ.  ``rerank_factor=1`` keeps the candidate set of the
        plain traversal and only replaces its approximate distances
        with exact ones.
    backend:
        Traversal engine: ``"auto"`` (default) runs the best *warmed*
        :mod:`repro.accel` compiled backend and otherwise the pinned
        numpy engines — nothing changes until ``repro.accel.warm()``
        has been called in the process.  ``"numpy"`` always runs the
        pinned engines.  ``"numba"`` / ``"cffi"`` / ``"python"`` force
        a specific accel backend (warming it on demand) and raise
        ``AccelUnavailableError`` when it cannot run here.  Results are
        bit-identical across backends; the sharded fan-out resolves
        ``"auto"`` in the parent and ships the concrete name to its
        workers, which compile once per process.
    """

    mode: str = "auto"
    beam_width: int | None = None
    budget: int | None = None
    starts: Sequence[int] | None = None
    seed: int | None = None
    allowed_ids: Any = None
    rerank_factor: int | None = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "greedy", "beam"):
            raise ValueError(
                f"unknown search mode {self.mode!r}; use 'auto', 'greedy' or 'beam'"
            )
        if self.backend not in ("auto", "numpy", "numba", "cffi", "python"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use 'auto', 'numpy', "
                "'numba', 'cffi' or 'python'"
            )
        if self.beam_width is not None and self.beam_width < 1:
            raise ValueError("beam_width must be at least 1")
        if self.budget is not None and self.budget < 1:
            raise ValueError("budget must be at least 1")
        if self.rerank_factor is not None and self.rerank_factor < 1:
            raise ValueError("rerank_factor must be at least 1")


@dataclass
class SearchResult:
    """Outcome of one :meth:`~repro.core.index.ProximityGraphIndex.search`.

    ``ids`` and ``distances`` are dense ``(m, k)`` arrays — row ``i``
    holds query ``i``'s neighbors ascending by distance, as *external*
    ids in *original* (pre-normalization) distance units.  Slots beyond
    what the search found (filter exhausted, ``k > `` admissible points)
    hold ``-1`` / ``inf``.  ``evals`` counts distance evaluations per
    query (the paper's query-time measure); ``hops`` is the greedy hop
    count per query (``None`` for beam searches, which have no single
    walk).  ``single`` records whether the call passed one bare query,
    enabling the scalar conveniences below.
    """

    ids: np.ndarray
    distances: np.ndarray
    evals: np.ndarray
    hops: np.ndarray | None = None
    single: bool = field(default=False, repr=False)
    # Sharded fan-out only: the (m, n_shards) per-shard breakdown of
    # ``evals`` (its row sum).  Flat searches leave it None.
    shard_evals: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def m(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])

    def top1(self) -> tuple[int, float]:
        """``(id, distance)`` of the best hit of a single-query search."""
        if self.m != 1:
            raise ValueError("top1() needs a single-query result")
        return int(self.ids[0, 0]), float(self.distances[0, 0])

    def pairs(self, i: int = 0) -> list[tuple[int, float]]:
        """Query ``i``'s hits as ``(id, distance)`` pairs, padding dropped."""
        row_ids, row_d = self.ids[i], self.distances[i]
        keep = row_ids >= 0
        return [(int(v), float(d)) for v, d in zip(row_ids[keep], row_d[keep])]


class IdMap:
    """Bidirectional external id ↔ internal index map.

    Internal indices are the dense ``0..n-1`` vertex labels graphs and
    engines work in; external ids are whatever the caller handed to
    ``build``/``add`` (defaulting to the insertion counter) and are
    *stable*: they never change meaning across ``add``, ``delete``,
    ``compact``, or a ``save``/``load`` round trip.
    """

    def __init__(
        self,
        externals: Sequence[int] | None = None,
        *,
        validated: bool = False,
    ) -> None:
        ext = (
            np.asarray(externals, dtype=np.int64)
            if externals is not None
            else np.empty(0, dtype=np.int64)
        )
        # validated=True also transfers ownership: the caller (the v5
        # loader) hands over a freshly-read private array, and _ext is
        # only ever rebound (never written in place), so adopting it is
        # safe and keeps the attach path copy-free.
        self._ext = ext if validated else ext.copy()
        if self._ext.ndim != 1:
            raise ValueError("external ids must be a flat sequence")
        if len(self._ext) and self._ext.min() < 0:
            # -1 is the not-found sentinel in SearchResult rows; negative
            # ids would be indistinguishable from padding.
            raise ValueError("external ids must be non-negative")
        if not validated and len(self._ext):
            uniq, counts = np.unique(self._ext, return_counts=True)
            if uniq.size != self._ext.size:
                raise ValueError(
                    f"duplicate external id {int(uniq[counts > 1][0])}"
                )
        # The external -> internal dict is built lazily on first lookup:
        # construction stays O(n) vectorized, which keeps the v5 mmap
        # attach path (``validated=True`` — uniqueness was enforced when
        # the file was written; ``repro index info --validate`` re-checks
        # on demand) free of any per-element Python loop.
        self._reverse: dict[int, int] | None = None
        self._next = int(self._ext.max()) + 1 if len(self._ext) else 0

    @property
    def _int(self) -> dict[int, int]:
        if self._reverse is None:
            self._reverse = {
                int(e): i for i, e in enumerate(self._ext.tolist())
            }
        return self._reverse

    @classmethod
    def identity(cls, n: int) -> "IdMap":
        """The default map of a fresh build: external id ``i`` ↔ index ``i``."""
        return cls(np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ext)

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._int

    @property
    def externals(self) -> np.ndarray:
        """External id of every internal index, as a read-only view."""
        view = self._ext.view()
        view.flags.writeable = False
        return view

    def is_identity(self) -> bool:
        return bool(np.array_equal(self._ext, np.arange(len(self._ext))))

    # ------------------------------------------------------------------

    def to_internal(self, external_ids: Any) -> np.ndarray:
        """Map external ids to internal indices; ``KeyError`` on unknowns."""
        arr = np.atleast_1d(np.asarray(external_ids, dtype=np.int64))
        try:
            return np.fromiter(
                (self._int[int(e)] for e in arr), dtype=np.intp, count=len(arr)
            )
        except KeyError as exc:
            raise KeyError(f"unknown external id {exc.args[0]}") from None

    def to_internal_known(self, external_ids: Any) -> np.ndarray:
        """Map external ids to internal indices, silently dropping unknowns
        (the filter-mask path: a filter restricts, it never errors)."""
        arr = np.atleast_1d(np.asarray(external_ids, dtype=np.int64))
        return np.fromiter(
            (self._int[e] for e in arr.tolist() if e in self._int),
            dtype=np.intp,
        )

    def to_external(self, internal: Any) -> np.ndarray:
        """Map internal indices to external ids; ``-1`` passes through as
        the not-found sentinel."""
        arr = np.asarray(internal, dtype=np.int64)
        out = np.where(arr >= 0, self._ext[np.clip(arr, 0, None)], -1)
        return out.astype(np.int64, copy=False)

    # ------------------------------------------------------------------

    def check_assignable(self, count: int, external_ids: Any = None) -> np.ndarray:
        """Validate a prospective :meth:`assign` without mutating anything.

        Returns the ids that would be assigned.  Mutating callers (the
        index facade's ``add``) validate *before* touching the graph or
        dataset, so an id clash can never leave them half-grown.
        """
        if external_ids is None:
            return np.arange(self._next, self._next + count, dtype=np.int64)
        new = np.asarray(external_ids, dtype=np.int64)
        if new.shape != (count,):
            raise ValueError(f"need exactly {count} external ids, got {new.shape}")
        if len(new) and new.min() < 0:
            raise ValueError("external ids must be non-negative")
        if len(np.unique(new)) != count:
            raise ValueError("external ids must be unique")
        clash = [int(e) for e in new.tolist() if e in self._int]
        if clash:
            raise ValueError(f"external ids already in use: {clash[:5]}")
        return new

    def assign(self, count: int, external_ids: Any = None) -> np.ndarray:
        """Append ``count`` new internal indices; returns their external ids.

        With ``external_ids=None`` fresh ids continue from the largest
        ever assigned (deleted ids are *not* recycled — stability means
        an id never silently changes meaning).  Explicit ids must be
        unique, non-negative, and previously unused.
        """
        new = self.check_assignable(count, external_ids)
        base = len(self._ext)
        self._ext = np.concatenate([self._ext, new])
        for i, e in enumerate(new.tolist()):
            self._int[e] = base + i
        self._next = max(self._next, int(new.max()) + 1) if len(new) else self._next
        return new

    def compact(self, keep_internal: np.ndarray) -> "IdMap":
        """The map after dropping every internal index not in
        ``keep_internal`` (survivors are renumbered densely, external ids
        preserved)."""
        kept = self._ext[np.asarray(keep_internal, dtype=np.intp)]
        out = IdMap(kept)
        out._next = self._next  # never recycle a previously assigned id
        return out

    def clone(self) -> "IdMap":
        """An independent copy; :meth:`assign` on one never touches the
        other (the snapshot-isolation hook of ``index.snapshot()``)."""
        out = IdMap.__new__(IdMap)
        out._ext = self._ext.copy()
        out._reverse = (
            None if self._reverse is None else dict(self._reverse)
        )
        out._next = self._next
        return out
