"""``ShardedIndex`` — K flat indexes behind the one front door.

Sharding is the standard route to both faster builds and horizontal
query scaling: partition the collection into K shards, build one
:class:`~repro.core.index.ProximityGraphIndex` per shard (each a
complete, independently navigable proximity graph — so per-shard
guarantees like the monotonic-search-network line compose), and answer
``search()`` by fanning the query batch out to every shard and merging
the per-shard top-k.  A fan-out search evaluates more distances than a
single flat search (each shard walks its own graph) but each walk is
over an ``n/K``-point graph, the walks parallelize across processes,
and recall typically *rises* — K independent beams miss less than one.

Process model
-------------
Builds run in a process pool over a **zero-copy shared-memory arena**:
the parent writes the shard-grouped ``(n, d)`` coordinate array into
one :class:`~repro.metrics.arena.SharedArena` block, and each worker
attaches by name and builds from a row-range *view* — points are never
pickled.  Workers receive only picklable task dicts (metric *specs*,
not metric objects), so every multiprocessing start method works,
including ``spawn``; set ``REPRO_MP_START_METHOD=spawn`` to force it.
Searches fan out either in-process (``workers=1``, the default — the
per-shard engines are already vectorized) or across a persistent pool
through :func:`repro.graphs.engine.shard_search_entry`, chunked to
bound lockstep state.

Shard builds default to the wave-batched construction engine
(:func:`~repro.graphs.engine.bulk_insert`) for the insertion builders —
the sharded build path *is* the chunked parallel engine.  With
``shards=1`` the default reverts to the builder's sequential reference
schedule, and the sharded index is **bit-identical** to the flat one:
same graph, same ids, same distances (equivalence-tested on 3 seeds).

Semantics carried over from the flat index, unchanged:

* **stable external ids** — ``add()`` routes a batch to the least
  loaded shard, ``delete()`` to the owning shard; ids never change
  meaning across mutations or a save/load round trip (format v3, a
  manifest directory of per-shard v2 files);
* **filters and budgets** — ``allowed_ids`` masks and eval budgets
  apply per shard; ``SearchResult.evals`` sums the per-shard counts and
  ``SearchResult.shard_evals`` keeps the breakdown;
* **never-raising empty searches** — an empty batch, an exhausted
  filter, or a fully tombstoned collection returns ``-1``/``inf``
  padded arrays.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.builders import (
    BATCHED_BUILDERS,
    BuiltGraph,
    build,
    validate_builder_options,
)
from repro.core.index import ProximityGraphIndex
from repro.core.search import IdMap, SearchParams, SearchResult
from repro.graphs.base import ProximityGraph
from repro.graphs.engine import (
    preload_shard_cache,
    run_shard_search,
    shard_search_entry,
)
from repro.metrics.arena import ArenaSpec, AttachedArena, SharedArena, attach
from repro.metrics.base import Dataset, MetricSpace
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.specs import metric_from_spec, metric_to_spec
from repro.storage import (
    encode_with_params,
    store_from_arrays,
    store_from_params,
    train_store_params,
    validate_storage_options,
)
from repro.storage.flat import FlatStore

__all__ = [
    "ShardedIndex",
    "partition_points",
    "shard_payload",
    "rehydrate_shard",
]

# Default query-chunk size for fan-out search: bounds each lockstep
# engine call's per-query state without fragmenting the vectorization.
DEFAULT_SEARCH_CHUNK = 4096


def _mp_context() -> Any:
    """The pool start method: the platform default, unless the
    ``REPRO_MP_START_METHOD`` env knob (CI's spawn job) overrides it.

    Returns a ``multiprocessing`` context (or ``None`` for the
    default); typed ``Any`` because the context classes are
    platform-dependent."""
    import multiprocessing

    method = os.environ.get("REPRO_MP_START_METHOD")
    return multiprocessing.get_context(method) if method else None


# Worker-cache tokens: unique per live index within this process so
# pool workers never serve another index's (or a stale) graph.  A
# process-local counter, *not* uuid4 — token values never influence
# results, and the determinism contract bans ambient entropy in
# library code outright so nothing nondeterministic can leak in later.
_TOKEN_COUNTER = itertools.count()


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


def partition_points(
    points: np.ndarray,
    shards: int,
    assignment: str,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Split ``0..n-1`` into ``shards`` member-index arrays.

    ``"random"`` deals a random permutation into near-equal shards —
    the robust default (shards statistically mirror the collection).
    ``"kmeans"`` runs a few Lloyd rounds with capacity-balanced
    assignment, giving geometrically coherent shards (each beam search
    stays in one region) at the cost of a k-means pass; coordinate
    points only.  Every shard comes back sorted ascending.  Random
    shards are sized within one of ``n / shards``; k-means shards are
    only *capped* at ``ceil(n / shards)`` — clustered data can leave
    some shards much smaller — with an explicit rebalance pass
    (:func:`_rebalance_min_size`) enforcing the paper's ``n >= 2``
    floor per shard whenever ``n >= 2 * shards``.
    """
    n = len(points)
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if n < 2 * shards:
        raise ValueError(
            f"{shards} shards over {n} points would leave a shard with "
            "fewer than 2 points (the paper assumes n >= 2 per dataset); "
            "use fewer shards"
        )
    if assignment == "random":
        perm = rng.permutation(n)
        bounds = np.linspace(0, n, shards + 1).astype(np.int64)
        return [np.sort(perm[bounds[j] : bounds[j + 1]]) for j in range(shards)]
    if assignment != "kmeans":
        raise ValueError(
            f"unknown assignment {assignment!r}; use 'random' or 'kmeans'"
        )
    coords = np.asarray(points, dtype=np.float64)
    if coords.ndim != 2:
        raise ValueError("kmeans assignment needs (n, d) coordinate points")
    if shards == 1:
        return [np.arange(n, dtype=np.int64)]
    capacity = int(math.ceil(n / shards))
    centroids = coords[rng.choice(n, size=shards, replace=False)]
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(8):
        # Squared Euclidean point->centroid matrix via the Gram trick.
        d2 = (
            (coords**2).sum(axis=1)[:, None]
            - 2.0 * coords @ centroids.T
            + (centroids**2).sum(axis=1)[None, :]
        )
        # Capacity-balanced greedy: points claim centroids best-first
        # (most-confident points first), falling back to their next
        # preference once a centroid is full.
        prefs = np.argsort(d2, axis=1)
        order = np.argsort(d2[np.arange(n), prefs[:, 0]])
        fill = np.zeros(shards, dtype=np.int64)
        for i in order:
            for c in prefs[i]:
                if fill[c] < capacity:
                    labels[i] = c
                    fill[c] += 1
                    break
        _rebalance_min_size(coords, labels, shards, min_size=2)
        new_centroids = np.stack(
            [coords[labels == j].mean(axis=0) for j in range(shards)]
        )
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return [np.flatnonzero(labels == j).astype(np.int64) for j in range(shards)]


def _rebalance_min_size(
    coords: np.ndarray, labels: np.ndarray, shards: int, min_size: int
) -> None:
    """Top up shards below ``min_size`` (in place) from the largest
    shard, moving its member closest to the deficient shard's mean —
    capacity-greedy assignment can leave a cluster nearly empty when
    ``n`` is small relative to ``shards**2``."""
    counts = np.bincount(labels, minlength=shards)
    while counts.min() < min_size:
        needy = int(counts.argmin())
        donor = int(counts.argmax())
        donors = np.flatnonzero(labels == donor)
        if counts[needy]:
            center = coords[labels == needy].mean(axis=0)
        else:
            center = coords[donors].mean(axis=0)
        move = donors[
            int(np.argmin(((coords[donors] - center) ** 2).sum(axis=1)))
        ]
        labels[move] = needy
        counts[donor] -= 1
        counts[needy] += 1


# ----------------------------------------------------------------------
# The shard wire form (worker tasks in both directions)
# ----------------------------------------------------------------------


class _AttachmentSet:
    """Several arena attachments behind one ``close()`` — a rehydrated
    shard may hold both a points view and a codes view."""

    def __init__(self, parts: Sequence[AttachedArena | None]) -> None:
        self._parts = [p for p in parts if p is not None]

    def close(self) -> None:
        for part in self._parts:
            part.close()


def shard_payload(
    shard: ProximityGraphIndex,
    arena_spec: ArenaSpec | None = None,
    span: tuple[int, int] | None = None,
    code_arena_spec: ArenaSpec | None = None,
    code_span: tuple[int, int] | None = None,
) -> dict:
    """The picklable wire form of one shard for a search worker.

    CSR arrays and mutable-collection state travel by value (small);
    the points travel by *reference* — an arena spec plus row span —
    when the shard's dataset is still arena-backed, or inline otherwise
    (after a mutation replaced the shard's point array).  A quantized
    shard additionally ships its storage: the spec and training arrays
    (codebooks/scales — small) inline, and the code matrix either by
    codes-arena reference (``code_arena_spec`` + ``code_span``) or
    inline.
    """
    offsets, targets = shard.graph.csr()
    payload: dict[str, Any] = {
        "n": int(shard.n),
        "offsets": offsets,
        "targets": targets,
        "metric": metric_to_spec(shard.dataset.metric),
        "scale": float(shard.scale),
        "seed": int(shard.seed),
        "builder": shard.built.name,
        "epsilon": float(shard.built.epsilon),
        "guaranteed": bool(shard.built.guaranteed),
        "external_ids": np.asarray(shard.id_map.externals),
        "tombstones": shard._tombstones,
    }
    if arena_spec is not None:
        if span is None:
            raise ValueError("an arena-backed payload needs its row span")
        payload["arena"] = arena_spec
        payload["span"] = (int(span[0]), int(span[1]))
    else:
        payload["points"] = np.asarray(shard.dataset.points)
    store = getattr(shard, "store", None)
    if store is not None and store.is_quantized:
        entry: dict[str, Any] = {
            "spec": store.spec(),
            "aux": store.param_arrays(),
        }
        if code_arena_spec is not None:
            if code_span is None:
                raise ValueError("an arena-backed code payload needs its span")
            entry["codes_arena"] = code_arena_spec
            entry["codes_span"] = (int(code_span[0]), int(code_span[1]))
        elif store.codes is not None:
            entry["codes"] = np.asarray(store.codes)
        # A code-free traversal store (flat dtype="float32") ships by
        # spec alone — the worker re-derives its traversal copy.
        payload["storage"] = entry
    return payload


def rehydrate_shard(
    payload: dict,
) -> tuple[ProximityGraphIndex, _AttachmentSet | None]:
    """Rebuild a queryable shard index from its wire form.

    Returns ``(index, attachment)`` where ``attachment`` is the arena
    handle (or handle set) to close after use (``None`` for fully
    inline payloads).  Graph CSR arrays are adopted verbatim, so the
    rehydrated shard answers ``search`` identically to the parent's.
    """
    metric = metric_from_spec(payload["metric"])
    point_att = None
    if "arena" in payload:
        # Ownership transfers to the caller via the returned
        # _AttachmentSet; callers close it after use.
        point_att = attach(payload["arena"])  # repro: ignore[arena-hygiene]
        lo, hi = payload["span"]
        points = point_att.view(lo, hi)
    else:
        points = payload["points"]
    n = int(payload["n"])
    graph = ProximityGraph.from_csr(
        n,
        np.asarray(payload["offsets"], dtype=np.int64),
        np.asarray(payload["targets"], dtype=np.intp),
        validate=False,
    )
    built = BuiltGraph(
        name=payload["builder"],
        graph=graph,
        epsilon=float(payload["epsilon"]),
        guaranteed=bool(payload["guaranteed"]),
    )
    code_att = None
    store = None
    storage = payload.get("storage")
    if storage is not None:
        arrays = dict(storage["aux"])
        if "codes_arena" in storage:
            # Same ownership transfer as point_att above: released by
            # the caller through the returned _AttachmentSet.
            code_att = attach(storage["codes_arena"])  # repro: ignore[arena-hygiene]
            lo, hi = storage["codes_span"]
            arrays["codes"] = code_att.view(lo, hi)
        elif "codes" in storage:
            arrays["codes"] = storage["codes"]
        store = store_from_arrays(storage["spec"], arrays, metric, points)
    index = ProximityGraphIndex(
        dataset=Dataset(metric, points),
        built=built,
        scale=float(payload["scale"]),
        rng=np.random.default_rng(int(payload["seed"])),
        seed=int(payload["seed"]),
        id_map=IdMap(payload["external_ids"]),
        tombstones=payload["tombstones"],
        store=store,
    )
    if point_att is None and code_att is None:
        return index, None
    return index, _AttachmentSet([point_att, code_att])


def _shard_build_entry(task: dict) -> dict:
    """Process-pool entry point: build one shard's graph from its arena
    view.  Returns the graph's CSR arrays plus JSON-safe provenance (the
    same trimming persistence applies — net hierarchies and other
    non-serializable meta stay behind; the parent records what dropped).
    """
    from repro.core.persistence import _sanitize_meta
    from repro.metrics.scaling import normalize_min_distance

    attachment = attach(task["arena"])
    try:
        lo, hi = task["span"]
        metric = metric_from_spec(task["metric"])
        dataset = Dataset(metric, attachment.view(lo, hi))
        scale = 1.0
        if task["normalize"]:
            dataset, scale = normalize_min_distance(dataset)
        built = build(
            task["method"],
            dataset,
            task["epsilon"],
            np.random.default_rng(task["seed"]),
            **task["options"],
        )
        offsets, targets = built.graph.csr()
        meta_kept, meta_dropped = _sanitize_meta(built.meta)
        return {
            "shard": task["shard"],
            "offsets": np.asarray(offsets, dtype=np.int64),
            "targets": np.asarray(targets, dtype=np.int64),
            "scale": float(scale),
            "guaranteed": bool(built.guaranteed),
            "meta": meta_kept,
            "meta_dropped": meta_dropped,
            "options": built.options,
        }
    finally:
        attachment.close()


# ----------------------------------------------------------------------
# The sharded front door
# ----------------------------------------------------------------------


class ShardedIndex:
    """K flat proximity-graph indexes serving one :meth:`search` surface.

    Use :meth:`build` rather than the constructor.  ``shards`` holds the
    per-shard :class:`ProximityGraphIndex` objects (each with the
    *global* external ids of its members), and the index routes every
    front-door call — implementing the same
    :class:`~repro.core.interface.SearchableIndex` protocol as the flat
    index, so callers never care which they hold.
    """

    def __init__(
        self,
        shards: Sequence[ProximityGraphIndex],
        seed: int = 0,
        workers: int = 1,
        assignment: str = "random",
        arena: SharedArena | None = None,
        arena_spans: Sequence[tuple[int, int]] | None = None,
        next_id: int | None = None,
        search_chunk: int = DEFAULT_SEARCH_CHUNK,
    ) -> None:
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        self.shards = list(shards)
        self.seed = int(seed)
        self.workers = int(workers)
        self.assignment = assignment
        self.search_chunk = int(search_chunk)
        self._arena = arena
        self._arena_spans = (
            [tuple(s) for s in arena_spans] if arena_spans is not None else None
        )
        if arena is not None and (
            self._arena_spans is None or len(self._arena_spans) != len(self.shards)
        ):
            raise ValueError("need one arena span per shard")
        # Quantized storage: one codes arena shared by every fan-out
        # worker (filled by set_storage when the points arena exists).
        self._code_arena: SharedArena | None = None
        self._code_spans: list[tuple[int, int]] | None = None
        # External id -> shard routing table, assembled from the shards'
        # own id maps (tombstoned ids stay routed until compacted away).
        self._owner: dict[int, int] = {}
        for j, shard in enumerate(self.shards):
            for e in np.asarray(shard.id_map.externals).tolist():
                if e in self._owner:
                    raise ValueError(f"external id {e} appears in two shards")
                self._owner[e] = j
        top = max(self._owner) + 1 if self._owner else 0
        self._next = max(int(next_id) if next_id is not None else 0, top)
        # Worker-cache token: unique per live index in this process, so
        # a pool worker's preloaded shard cache can never alias another
        # index's graph (generation bumps handle staleness *within* an
        # index's lifetime).
        self._token = f"sharded-{next(_TOKEN_COUNTER)}"
        self._generation = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = -1
        self._closed = False

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: Any,
        epsilon: float = 0.5,
        method: str = "gnet",
        metric: MetricSpace | None = None,
        normalize: bool = True,
        shards: int = 2,
        workers: int = 1,
        assignment: str = "random",
        seed: int = 0,
        ids: Sequence[int] | None = None,
        batch_size: Any = "auto",
        backend: str | None = None,
        search_chunk: int = DEFAULT_SEARCH_CHUNK,
        storage: str = "flat",
        storage_options: dict[str, Any] | None = None,
        **options: Any,
    ) -> "ShardedIndex":
        """Partition ``points`` into ``shards`` and build every shard.

        ``workers > 1`` builds shards in a process pool over a shared
        -memory arena (zero-copy points; coordinate metrics only, since
        workers receive metric *specs*).  ``batch_size="auto"`` enables
        the wave-batched construction engine per shard for the
        insertion builders when ``shards > 1`` (pass ``None`` for the
        sequential reference schedule, or an explicit wave size);
        with ``shards=1`` the default stays sequential so the single
        shard is bit-identical to the flat
        ``ProximityGraphIndex.build`` with the same arguments.

        Shard ``j`` builds with seed ``seed + j``; external ids
        (``ids``, defaulting to ``0..n-1``) are global and stable.

        ``storage`` selects the vector store (``"flat"``/``"sq8"``/
        ``"pq"``).  Quantizer training runs **once** over the whole
        collection — every shard shares the same codebooks / scales —
        and with a pooled build the per-shard code matrices live in a
        second :class:`~repro.metrics.arena.SharedArena`, so fan-out
        search workers attach to the compressed shards zero-copy.

        ``backend`` selects the accel backend for the insertion
        builders' construction inner loops.  With a pooled build the
        parent resolves ``"auto"`` to its concrete warmed backend
        before shipping tasks — pool workers are fresh processes where
        nothing is ever warmed, so ``"auto"`` there would silently mean
        numpy — and each worker warms that backend once on demand.
        """
        # Fail fast on an unknown builder or misspelled build option —
        # BEFORE partitioning and the (potentially multi-process,
        # minutes-long) graph build; a typo must never surface as a
        # worker-process TypeError.
        validate_builder_options(method, options)
        if metric is None:
            points = np.asarray(points, dtype=np.float64)
            metric = EuclideanMetric()
        # Fail fast on a bad quantizer config — BEFORE the (potentially
        # multi-process, minutes-long) graph build, mirroring the
        # metric_to_spec fail-fast below.
        arr = np.asarray(points)
        validate_storage_options(
            storage, storage_options,
            dim=int(arr.shape[1]) if arr.ndim == 2 else None,
        )
        n = len(points)
        rng = np.random.default_rng(seed)
        members = partition_points(points, shards, assignment, rng)
        global_ids = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(n, dtype=np.int64)
        )
        if global_ids.shape != (n,):
            raise ValueError(f"need exactly {n} external ids, got {global_ids.shape}")
        if batch_size == "auto":
            batch_size = None
            if shards > 1 and method in BATCHED_BUILDERS:
                per_shard = int(math.ceil(n / shards))
                batch_size = max(32, min(1024, per_shard // 8))
        if batch_size is not None:
            options["batch_size"] = int(batch_size)
        if backend is not None:
            if method not in BATCHED_BUILDERS:
                raise ValueError(
                    f"builder {method!r} has no accelerated construction path; "
                    f"backend applies to {sorted(BATCHED_BUILDERS)}"
                )
            options["backend"] = backend

        if workers > 1:
            metric_to_spec(metric)  # fail fast: workers need a spec form
            if options.get("backend") == "auto":
                # Resolve "auto" here, in the parent: a concrete name is
                # shipped only when the workload has a compiled
                # construction path (an explicit backend raises where
                # "auto" falls back, so unsupported workloads keep
                # "auto" and its silent numpy fallback in the workers).
                from repro import accel

                concrete = accel.get_backend()
                if concrete != "numpy" and accel.construction_supported(
                    Dataset(metric, arr)
                ):
                    options["backend"] = concrete
            index = cls._build_pooled(
                points, epsilon, method, metric, normalize, members,
                global_ids, workers, assignment, seed, options, search_chunk,
            )
            if storage != "flat" or storage_options:
                index.set_storage(storage, seed=seed, **(storage_options or {}))
            return index

        shard_indexes = [
            ProximityGraphIndex.build(
                points[mem],
                epsilon=epsilon,
                method=method,
                metric=None if isinstance(metric, EuclideanMetric) else metric,
                normalize=normalize,
                seed=seed + j,
                ids=global_ids[mem],
                **options,
            )
            for j, mem in enumerate(members)
        ]
        index = cls(
            shard_indexes, seed=seed, workers=workers, assignment=assignment,
            search_chunk=search_chunk,
        )
        if storage != "flat" or storage_options:
            index.set_storage(storage, seed=seed, **(storage_options or {}))
        return index

    @classmethod
    def _build_pooled(
        cls,
        points: np.ndarray,
        epsilon: float,
        method: str,
        metric: MetricSpace,
        normalize: bool,
        members: list[np.ndarray],
        global_ids: np.ndarray,
        workers: int,
        assignment: str,
        seed: int,
        options: dict,
        search_chunk: int,
    ) -> "ShardedIndex":
        """Build every shard in a process pool over one shared arena."""
        grouped = np.ascontiguousarray(
            np.asarray(points)[np.concatenate(members)]
        )
        spans: list[tuple[int, int]] = []
        lo = 0
        for mem in members:
            spans.append((lo, lo + len(mem)))
            lo += len(mem)
        # Deliberately *not* closed on success: the arena is adopted by
        # the returned ShardedIndex (shards keep zero-copy views into
        # it) and released by its close(); the except-BaseException
        # below closes it on every build failure.
        arena = SharedArena.create(grouped)  # repro: ignore[arena-hygiene]
        spec = metric_to_spec(metric)
        try:
            tasks = [
                {
                    "shard": j,
                    "arena": arena.spec,
                    "span": spans[j],
                    "metric": spec,
                    "normalize": normalize,
                    "method": method,
                    "epsilon": float(epsilon),
                    "seed": seed + j,
                    "options": options,
                }
                for j in range(len(members))
            ]
            with ProcessPoolExecutor(
                max_workers=min(workers, len(members)), mp_context=_mp_context()
            ) as pool:
                results = list(pool.map(_shard_build_entry, tasks))
        except BaseException:
            arena.close()
            raise
        from repro.core.persistence import _rehydrate_meta
        from repro.metrics.base import ScaledMetric

        shard_indexes = []
        for j, (mem, res) in enumerate(zip(members, results)):
            graph = ProximityGraph.from_csr(
                len(mem),
                res["offsets"],
                res["targets"].astype(np.intp),
                validate=False,
            )
            meta = _rehydrate_meta(res["meta"])
            if res["meta_dropped"]:
                meta["meta_dropped"] = list(res["meta_dropped"])
            built = BuiltGraph(
                name=method,
                graph=graph,
                epsilon=float(epsilon),
                guaranteed=bool(res["guaranteed"]),
                meta=meta,
                options=dict(res["options"]),
            )
            shard_metric = (
                ScaledMetric(metric, res["scale"]) if res["scale"] != 1.0 else metric
            )
            shard_indexes.append(
                ProximityGraphIndex(
                    dataset=Dataset(shard_metric, arena.view(*spans[j])),
                    built=built,
                    scale=float(res["scale"]),
                    rng=np.random.default_rng(seed + j),
                    seed=seed + j,
                    id_map=IdMap(global_ids[mem]),
                )
            )
        return cls(
            shard_indexes, seed=seed, workers=workers, assignment=assignment,
            arena=arena, arena_spans=spans, search_chunk=search_chunk,
        )

    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n(self) -> int:
        """Total vertex count across shards, including tombstones."""
        return sum(s.n for s in self.shards)

    @property
    def active_count(self) -> int:
        return sum(s.active_count for s in self.shards)

    @property
    def tombstone_count(self) -> int:
        return sum(s.tombstone_count for s in self.shards)

    @property
    def epsilon(self) -> float:
        return self.shards[0].epsilon

    # ------------------------------------------------------------------
    # Search: fan out, merge top-k
    # ------------------------------------------------------------------

    def validate_queries(self, Q: Any) -> None:
        """Same front-door check as the flat index (dimension match,
        finite values); see :meth:`ProximityGraphIndex.validate_queries`."""
        self.shards[0].validate_queries(Q)

    def _shard_key(self, j: int) -> tuple:
        return (self._token, self._generation, j)

    def _payload_for(self, j: int) -> dict:
        """The shard's wire form — by arena reference while its dataset
        (and, when quantized, its code block) is still arena-backed,
        inline after a mutation replaced it."""
        arena_ok = self._arena is not None and self._shard_arena_backed(j)
        codes_ok = self._shard_codes_arena_backed(j)
        return shard_payload(
            self.shards[j],
            arena_spec=self._arena.spec if arena_ok else None,
            span=self._arena_spans[j] if arena_ok else None,
            code_arena_spec=self._code_arena.spec if codes_ok else None,
            code_span=self._code_spans[j] if codes_ok else None,
        )

    def _shard_arena_backed(self, j: int) -> bool:
        """A shard stays arena-backed until a mutation replaces its
        point array (add/compact build fresh arrays, never arena rows)."""
        if self._arena is None or self._arena_spans is None:
            return False
        pts = np.asarray(self.shards[j].dataset.points)
        return pts.base is not None and (
            pts.base is self._arena.array
            or pts.base is getattr(self._arena.array, "base", None)
        )

    def _shard_codes_arena_backed(self, j: int) -> bool:
        """Same test for the codes arena: a post-build add() re-encodes
        the shard's codes into a fresh array, detaching it."""
        if self._code_arena is None or self._code_spans is None:
            return False
        codes = self.shards[j].store.codes
        if codes is None:
            return False
        return codes.base is not None and (
            codes.base is self._code_arena.array
            or codes.base is getattr(self._code_arena.array, "base", None)
        )

    # ------------------------------------------------------------------
    # Storage: codebooks trained once, shared by every shard
    # ------------------------------------------------------------------

    def set_storage(
        self, kind: str, seed: int | None = None, **options: Any
    ) -> "ShardedIndex":
        """Re-encode every shard under storage ``kind``, training once.

        Quantizer training (PQ codebooks, SQ8 scales) runs over the
        concatenated collection so all shards share one training state
        — a fan-out search therefore measures every candidate against
        the same geometry, and cross-shard merge order is consistent.
        While the build's points arena is still live, the per-shard
        code matrices are written into one shared codes arena so search
        workers fan out over the compressed shards zero-copy.
        """
        seed = self.seed if seed is None else seed
        pts0 = np.asarray(self.shards[0].dataset.points)
        validate_storage_options(
            kind, options, dim=int(pts0.shape[1]) if pts0.ndim == 2 else None
        )
        self._close_code_arena()
        if kind == "flat":
            for shard in self.shards:
                shard.store = FlatStore(
                    shard.dataset.metric, shard.dataset.points, **options
                )
            self._bump_generation()
            return self
        arena_ok = all(self._shard_arena_backed(j) for j in range(self.n_shards))
        if arena_ok:
            # Shard datasets are contiguous rows of the grouped points
            # arena — train straight off it (no full-collection copy)
            # and encode it once: the code blocks land at the very same
            # spans.
            params = train_store_params(
                kind, self._arena.array, seed=seed, **options
            )
            codes_full = encode_with_params(kind, params, self._arena.array)
            self._code_arena = SharedArena.create(codes_full)
            self._code_spans = list(self._arena_spans)
            code_views = [
                self._code_arena.view(lo, hi) for lo, hi in self._code_spans
            ]
            total = len(self._arena.array)
        else:
            shard_pts = [
                np.asarray(s.dataset.points, dtype=np.float64)
                for s in self.shards
            ]
            params = train_store_params(
                kind, np.concatenate(shard_pts), seed=seed, **options
            )
            code_views = [encode_with_params(kind, params, pts) for pts in shard_pts]
            total = sum(len(pts) for pts in shard_pts)
        for shard, codes in zip(self.shards, code_views):
            shard.store = store_from_params(
                kind, shard.dataset.metric, shard.dataset.points, params,
                codes=codes, options=options, trained_on=total,
            )
        self._bump_generation()
        return self

    def _close_code_arena(self) -> None:
        """Detach every still-arena-backed shard store (copying its code
        block) before the codes arena unlinks."""
        if self._code_arena is None:
            return
        for j, shard in enumerate(self.shards):
            if self._shard_codes_arena_backed(j):
                shard.store._codes = np.array(shard.store.codes, copy=True)
        self._code_arena.close()
        self._code_arena = None
        self._code_spans = None

    def search(
        self,
        queries: Any,
        k: int = 1,
        params: SearchParams | None = None,
    ) -> SearchResult:
        """Fan a query batch out to every shard and merge the top-k.

        Same surface as the flat :meth:`ProximityGraphIndex.search`:
        single query or batch, greedy (``k=1``) or beam, budgets and
        ``allowed_ids`` filters (both applied *per shard*), ``-1`` /
        ``inf`` padding where fewer than ``k`` admissible points exist.
        Merged rows order by ``(distance, external id)``; ``evals`` sums
        the per-shard counts, with the breakdown in
        ``SearchResult.shard_evals``.  ``params.starts`` index shard
        vertices and are therefore only accepted with a single shard.
        """
        if self._closed:
            raise RuntimeError("index is closed")
        if k < 1:
            raise ValueError("k must be at least 1")
        if params is None:
            params = SearchParams()
        K = self.n_shards
        if params.starts is not None and K > 1:
            raise ValueError(
                "explicit start vertices are shard-local internal indices; "
                "they are only meaningful with shards=1"
            )
        if K == 1:
            result = self.shards[0].search(queries, k=k, params=params)
            result.shard_evals = result.evals[:, None].copy()
            return result

        # Resolve mode="auto" HERE, not per shard: shards disagree about
        # their tombstone state, and a fan-out where one shard runs
        # greedy (hops) while another runs beam (no hops) cannot merge.
        # The rule mirrors the flat index's, with "any tombstone
        # anywhere" standing in for the per-index mask check.
        if params.mode == "auto":
            use_greedy = (
                k == 1
                and params.beam_width is None
                and params.allowed_ids is None
                and self.tombstone_count == 0
                and not self.shards[0].store.is_quantized
            )
            params = dataclasses.replace(
                params, mode="greedy" if use_greedy else "beam"
            )

        # Resolve backend="auto" HERE too: worker processes start with
        # no warmed accel backend, so the parent's resolution (the best
        # backend warmed in *this* process, else "numpy") is pickled
        # into the task dicts as a concrete name — each worker then
        # warms it once per process, reusing the on-disk kernel caches.
        if params.backend == "auto":
            from repro import accel

            params = dataclasses.replace(params, backend=accel.get_backend())

        Q, single = self.shards[0]._normalize_queries(queries)
        # Validate HERE, before the fan-out: a malformed query must be a
        # front-door ValueError, never a worker-process crash.
        self.shards[0].validate_queries(Q)
        m = len(Q)
        if self.workers > 1 and m > 0:
            tasks = [
                {
                    "key": self._shard_key(j),
                    "queries": Q,
                    "k": k,
                    "params": params,
                    "chunk": self.search_chunk,
                }
                for j in range(K)
            ]
            try:
                parts = list(self._ensure_pool().map(shard_search_entry, tasks))
            except BrokenProcessPool:
                # A worker died (OOM kill, hard crash).  The executor is
                # permanently broken; discard it and retry once on a
                # fresh pool so a transient death doesn't disable
                # parallel search for the index's whole life.
                self._discard_pool()
                parts = list(self._ensure_pool().map(shard_search_entry, tasks))
        else:
            parts = [
                run_shard_search(
                    self.shards[j], Q, k, params, chunk=self.search_chunk
                )
                for j in range(K)
            ]
        greedy = all(p["hops"] is not None for p in parts)
        return self._merge(parts, m, k, single, greedy=greedy)

    def _merge(
        self, parts: list[dict], m: int, k: int, single: bool, greedy: bool
    ) -> SearchResult:
        K = len(parts)
        all_ids = np.concatenate([p["ids"] for p in parts], axis=1)
        all_d = np.concatenate([p["distances"] for p in parts], axis=1)
        shard_evals = np.stack([p["evals"] for p in parts], axis=1)
        # Row-wise order by (distance, external id); the -1 padding
        # sorts last via its inf distance and a max-int id key.
        pad_key = np.where(all_ids < 0, np.iinfo(np.int64).max, all_ids)
        order = np.lexsort((pad_key, all_d), axis=1)[:, :k]
        rows = np.arange(m)[:, None]
        ids = all_ids[rows, order] if m else all_ids[:, :k]
        dists = all_d[rows, order] if m else all_d[:, :k]
        hops = None
        if greedy and m:
            # Greedy is k=1: the winning shard is the merged column's
            # shard of origin; report that walk's hop count.
            winner = order[:, 0] // parts[0]["ids"].shape[1]
            all_hops = np.stack([p["hops"] for p in parts], axis=1)
            hops = all_hops[np.arange(m), winner]
        elif greedy:
            hops = np.zeros(0, dtype=np.int64)
        return SearchResult(
            ids=ids,
            distances=dists,
            evals=shard_evals.sum(axis=1),
            hops=hops,
            single=single,
            shard_evals=shard_evals,
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent fan-out pool for the *current* generation.

        Workers preload every shard via the pool initializer (one
        payload transfer per worker per generation), so per-call tasks
        carry only the cache key and the queries.  A mutation bumps the
        generation; the next search tears the stale pool down and
        builds a fresh one over the mutated shards.
        """
        if self._pool is not None and self._pool_generation != self._generation:
            self._discard_pool()
        if self._pool is None:
            K = self.n_shards
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, K),
                mp_context=_mp_context(),
                initializer=preload_shard_cache,
                initargs=(
                    [self._shard_key(j) for j in range(K)],
                    [self._payload_for(j) for j in range(K)],
                ),
            )
            self._pool_generation = self._generation
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Mutation: routed adds/deletes, per-shard compaction
    # ------------------------------------------------------------------

    def _bump_generation(self) -> None:
        self._generation += 1

    def add(
        self,
        points: Any,
        ids: Sequence[int] | None = None,
        mode: str = "auto",
        batch_size: int = 64,
    ) -> np.ndarray:
        """Insert new points; returns their external ids.

        The whole batch routes to the **least-loaded** shard (fewest
        active points; ties to the lowest shard number), which keeps
        shard sizes balanced under streaming ingestion while preserving
        the flat index's ``add`` semantics inside the shard — including
        the ``mode`` knob (``"repair"`` / ``"dynamic"`` / ``"auto"``)
        and its guarantee bookkeeping.  Fresh ids are global: unique
        across every shard.
        """
        new_pts, _single = self.shards[0]._normalize_queries(points)
        count = len(new_pts)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if ids is not None:
            new_ids = np.asarray(ids, dtype=np.int64)
            if new_ids.shape != (count,):
                raise ValueError(
                    f"need exactly {count} external ids, got {new_ids.shape}"
                )
            if len(np.unique(new_ids)) != count:
                raise ValueError("external ids must be unique")
            clash = [int(e) for e in new_ids.tolist() if e in self._owner]
            if clash:
                raise ValueError(f"external ids already in use: {clash[:5]}")
        else:
            new_ids = np.arange(self._next, self._next + count, dtype=np.int64)
        target = min(
            range(self.n_shards), key=lambda j: (self.shards[j].active_count, j)
        )
        out = self.shards[target].add(
            new_pts, ids=new_ids, mode=mode, batch_size=batch_size
        )
        for e in out.tolist():
            self._owner[int(e)] = target
        self._next = max(self._next, int(out.max()) + 1)
        self._bump_generation()
        return out

    def delete(self, ids: Any) -> int:
        """Tombstone points by external id, each in its owning shard;
        returns how many were newly deleted.  Unknown ids raise
        ``KeyError`` *before* anything mutates."""
        arr = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        groups: dict[int, list[int]] = {}
        for e in arr.tolist():
            if int(e) not in self._owner:
                raise KeyError(f"unknown external id {int(e)}")
            groups.setdefault(self._owner[int(e)], []).append(int(e))
        removed = sum(
            self.shards[j].delete(members) for j, members in groups.items()
        )
        if removed:
            self._bump_generation()
        return removed

    def compact(self, seed: int | None = None) -> "ShardedIndex":
        """Rebuild every shard that carries tombstones, dropping them.

        External ids are preserved; a shard compacted below 2 survivors
        raises (like the flat index) with the shard named, leaving the
        other shards untouched.  With quantized storage the quantizer
        retrains **shared**, like the build: one training pass over the
        surviving collection, the same codebooks/scales in every shard
        — per-shard retraining would leave the fan-out measuring
        candidates against diverging geometries.
        """
        store0 = self.shards[0].store
        storage_kind, storage_options = store0.kind, dict(store0.options)
        quantized = store0.is_quantized
        if not any(s.tombstone_count for s in self.shards):
            return self
        if quantized:
            # Drop to flat stores for the compaction itself, so the flat
            # index's per-shard retrain is a cheap array rebind instead
            # of K wasted local quantizer trainings; the shared training
            # pass below is the only real one.
            for shard in self.shards:
                shard.store = FlatStore(
                    shard.dataset.metric, shard.dataset.points
                )
        try:
            for j, shard in enumerate(self.shards):
                if not shard.tombstone_count:
                    continue
                try:
                    shard.compact(seed=seed)
                except ValueError as exc:
                    raise ValueError(f"shard {j}: {exc}") from exc
        finally:
            if quantized:
                # One shared training pass over the survivors (or, on a
                # failed compact, over the untouched collection — the
                # quantized state must be restored either way).
                self.set_storage(
                    storage_kind,
                    seed=self.seed if seed is None else seed,
                    **storage_options,
                )
        survivors = set()
        for shard in self.shards:
            survivors.update(np.asarray(shard.id_map.externals).tolist())
        self._owner = {e: j for e, j in self._owner.items() if e in survivors}
        self._bump_generation()
        return self

    def snapshot(self) -> "ShardedIndex":
        """A mutation-isolated copy that owns its own (arena-free) memory.

        Each shard is snapshotted like the flat index (shared immutable
        arrays, private mutation containers) — but any shard whose
        points or codes are still *views into this index's shared-memory
        arenas* gets them copied into private arrays first: the original
        index unlinks its arenas on :meth:`close` (or garbage
        collection), which would invalidate every view a longer-lived
        snapshot still holds.  The copy therefore starts arena-free and
        with no worker pool; fan-out search lazily spawns its own pool
        and ships the (now inline) shard payloads, exactly like any
        post-mutation shard.
        """
        shards = []
        for j, shard in enumerate(self.shards):
            snap = shard.snapshot()
            if self._shard_arena_backed(j):
                pts = np.array(np.asarray(snap.dataset.points), copy=True)
                snap.dataset = Dataset(snap.dataset.metric, pts)
                if snap.store.kind == "flat":
                    # Rebind onto the private copy (refresh preserves a
                    # float32 store's dtype); quantized stores keep
                    # their codes and never touch the arena points.
                    snap.store = snap.store.refresh(snap.dataset, 0)
            snap.store.detach()
            shards.append(snap)
        return ShardedIndex(
            shards,
            seed=self.seed,
            workers=self.workers,
            assignment=self.assignment,
            arena=None,
            next_id=self._next,
            search_chunk=self.search_chunk,
        )

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate structural summary plus the per-shard breakdown."""
        per_shard = []
        for j, shard in enumerate(self.shards):
            s = shard.stats()
            per_shard.append(
                {
                    "shard": j,
                    "n": s["n"],
                    "edges": s["edges"],
                    "active": s["active"],
                    "tombstones": s["tombstones"],
                }
            )
        out = {
            "kind": "sharded",
            "shards": self.n_shards,
            "assignment": self.assignment,
            "workers": self.workers,
            "builder": self.shards[0].built.name,
            "epsilon": self.epsilon,
            "guaranteed": all(s.built.guaranteed for s in self.shards),
            "n": self.n,
            "edges": sum(p["edges"] for p in per_shard),
            "active": self.active_count,
            "tombstones": self.tombstone_count,
            "per_shard": per_shard,
        }
        storage = dict(self.shards[0].store.summary())
        storage["n"] = int(self.n)
        storage["drift"] = int(sum(s.store.drift for s in self.shards))
        out["storage"] = storage
        from repro import accel

        out["accel"] = accel.backend_status()
        return out

    def save(
        self, path: Any, format: str = "npz", compress: bool = True
    ) -> Path:
        """Persist as a format-v3 manifest directory (one ``.npz`` — or,
        with ``format="disk"``, one v5 directory — per shard); see
        :func:`repro.core.persistence.save_sharded_index`.
        """
        from repro.core.persistence import save_sharded_index

        return save_sharded_index(self, path, format=format, compress=compress)

    @classmethod
    def load(cls, path: Any, mmap: bool | None = None) -> "ShardedIndex":
        """Load a directory written by :meth:`save`.

        ``format="disk"`` shards lazily mmap-attach by default; pass
        ``mmap=False`` to read them eagerly into RAM.
        """
        from repro.core.persistence import load_sharded_index

        return load_sharded_index(path, cls, mmap=mmap)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the search pool and release the shared arena.

        After closing, in-process state (the shards) remains usable
        only for introspection; call it when the index's serving life
        ends.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._discard_pool()
        self._close_code_arena()
        if self._arena is not None:
            # Detach every shard dataset from the arena before the
            # backing block unlinks (copies only still-arena-backed
            # shards, typically after the serving phase is over).
            for j, shard in enumerate(self.shards):
                if self._shard_arena_backed(j):
                    shard.dataset = Dataset(
                        shard.dataset.metric,
                        np.array(shard.dataset.points, copy=True),
                    )
                    # A flat store references the same rows; rebind it
                    # to the copied array before the block unlinks.
                    shard.store = shard.store.refresh(shard.dataset, 0)
            self._arena.close()
            self._arena = None
        self._arena_spans = None

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
