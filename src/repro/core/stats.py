"""Measurement helpers shared by benches, examples, and tests.

The paper's cost model is explicit: *space* is the edge count, *query
time* is the number of distance evaluations of greedy, *construction
time* is wall time of the builder.  :func:`measure_queries` runs greedy
over a query batch and reports exactly those quantities plus solution
quality against the exact (linear-scan) nearest neighbor.

Two fast paths keep replayed measurements cheap:

* ``engine="batch"`` (the default) routes the whole query batch through
  the lockstep engine of :mod:`repro.graphs.engine`, which returns
  bit-identical :class:`~repro.graphs.greedy.GreedyResult` objects with
  far less Python overhead;
* :func:`compute_ground_truth` evaluates all exact NNs in one
  cross-distance matrix and its output can be passed back in as
  ``ground_truth`` whenever the same query batch is replayed across
  builders (every benchmark re-uses one batch per workload).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.engine import greedy_batch
from repro.graphs.greedy import greedy
from repro.metrics.base import Dataset

__all__ = [
    "QueryStats",
    "compute_ground_truth",
    "compute_ground_truth_k",
    "measure_queries",
    "recall_at_k",
    "storage_breakdown",
    "timed",
]

# Chunk bound for the ground-truth cross-distance matrix (elements).
_GT_CHUNK_ELEMENTS = 16_000_000


@dataclass
class QueryStats:
    """Aggregated greedy-search statistics over a query batch."""

    num_queries: int
    mean_distance_evals: float
    max_distance_evals: int
    mean_hops: float
    max_hops: int
    mean_approximation: float
    max_approximation: float
    recall_at_1: float
    epsilon_satisfied_fraction: float
    per_query: list[dict] = field(default_factory=list, repr=False)

    def table_row(self) -> dict:
        return {
            "queries": self.num_queries,
            "evals_mean": round(self.mean_distance_evals, 1),
            "evals_max": self.max_distance_evals,
            "hops_mean": round(self.mean_hops, 2),
            "hops_max": self.max_hops,
            "approx_mean": round(self.mean_approximation, 4),
            "approx_max": round(self.max_approximation, 4),
            "recall@1": round(self.recall_at_1, 4),
        }


def compute_ground_truth(
    dataset: Dataset, queries: Sequence[Any]
) -> tuple[np.ndarray, np.ndarray]:
    """Exact NN ``(ids, distances)`` of every query by linear scan.

    Uses the metric's :meth:`~repro.metrics.base.MetricSpace.cross_distances`
    (one BLAS GEMM for Euclidean data) in query chunks.  The returned
    pair can be passed to :func:`measure_queries` as ``ground_truth`` so
    replaying the same batch across many builders pays for the scan only
    once.
    """
    m = len(queries)
    ids = np.empty(m, dtype=np.intp)
    dists = np.empty(m, dtype=np.float64)
    step = max(1, _GT_CHUNK_ELEMENTS // max(dataset.n, 1))
    arr = queries if isinstance(queries, np.ndarray) else np.asarray(queries)
    for lo in range(0, m, step):
        hi = min(lo + step, m)
        mat = dataset.metric.cross_distances(arr[lo:hi], dataset.points)
        for r in range(hi - lo):
            row = mat[r]
            # The Gram expansion behind the fast Euclidean path loses
            # ~sqrt(eps) absolute precision to cancellation near zero, so
            # re-evaluate every candidate within the error band with the
            # exact one-to-many kernel; the result is then bit-identical
            # to Dataset.nearest_neighbor's full linear scan.
            band = row.min() + 1e-6 * (1.0 + float(np.abs(row).max()))
            cand = np.flatnonzero(row <= band)
            exact = dataset.distances_to_query(arr[lo + r], cand)
            j = int(np.argmin(exact))
            ids[lo + r] = cand[j]
            dists[lo + r] = float(exact[j])
    return ids, dists


def compute_ground_truth_k(
    dataset: Dataset, queries: Sequence[Any], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` NN ``(ids, distances)`` of every query, ``(m, k)``.

    The recall@k oracle for the regression suite and the build bench.
    Uses the chunked cross-distance path of :func:`compute_ground_truth`
    with a row-wise partial sort; the tiny cancellation noise of the
    Euclidean Gram expansion (~1e-8 absolute) can only permute ids at
    exact distance ties, which recall@k treats as equivalent anyway.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, dataset.n)
    m = len(queries)
    ids = np.empty((m, k), dtype=np.intp)
    dists = np.empty((m, k), dtype=np.float64)
    step = max(1, _GT_CHUNK_ELEMENTS // max(dataset.n, 1))
    arr = queries if isinstance(queries, np.ndarray) else np.asarray(queries)
    for lo in range(0, m, step):
        hi = min(lo + step, m)
        mat = dataset.metric.cross_distances(arr[lo:hi], dataset.points)
        part = np.argpartition(mat, k - 1, axis=1)[:, :k]
        rows = np.arange(hi - lo)[:, None]
        order = np.argsort(mat[rows, part], axis=1, kind="stable")
        ids[lo:hi] = np.take_along_axis(part, order, axis=1)
        dists[lo:hi] = mat[rows, ids[lo:hi]]
    return ids, dists


def recall_at_k(
    index: Any,
    queries: Any,
    ground_truth: np.ndarray,
    k: int,
    params: Any = None,
) -> float:
    """Recall@k of an index front door against an exact oracle.

    ``index`` is anything with the :class:`~repro.core.interface.
    SearchableIndex` surface (flat or sharded); ``ground_truth`` is the
    ``(m, k)`` id matrix of :func:`compute_ground_truth_k`.  The one
    recall definition every gate shares: hits are the per-query set
    intersection of returned and exact ids, averaged over ``m * k``
    (``-1`` padding can never hit — ground-truth ids are non-negative).
    Assumes the index's external ids are the dataset row indices (the
    default identity mapping every bench workload uses).
    """
    from repro.core.search import SearchParams

    if params is None:
        params = SearchParams(beam_width=max(4 * k, 32), seed=0)
    result = index.search(queries, k=k, params=params)
    hits = sum(
        len(set(ground_truth[i].tolist()) & set(result.ids[i].tolist()))
        for i in range(result.m)
    )
    return hits / (max(result.m, 1) * k)


def storage_breakdown(index: Any) -> dict:
    """Bytes-per-vector / total-memory breakdown of an index's storage.

    Works for both front-door kinds (flat
    :class:`~repro.core.index.ProximityGraphIndex` and
    :class:`~repro.core.sharded.ShardedIndex` — shards aggregate) and is
    what the ``repro index info`` CLI subcommand and ``bench-storage``
    print.  Fields:

    * ``traversal_bytes_per_vector`` / ``traversal_bytes`` — what graph
      traversal touches per candidate (codes for quantized stores, the
      raw rows for flat);
    * ``aux_bytes`` — fixed quantizer state (codebooks, scales);
    * ``exact_bytes`` — the raw vector array (kept by quantized indexes
      for the exact rerank stage; *the* vector storage for flat);
    * ``flat_bytes_per_vector`` — the raw cost per vector, so
      ``compression = flat / traversal`` reads directly.
    """
    shards = getattr(index, "shards", None)
    if shards is not None:
        parts = [storage_breakdown(s) for s in shards]
        total_n = sum(p["n"] for p in parts)
        traversal = sum(p["traversal_bytes"] for p in parts)
        out = {
            "kind": parts[0]["kind"],
            "quantized": parts[0]["quantized"],
            "n": total_n,
            "traversal_bytes_per_vector": (
                round(traversal / total_n, 2) if total_n else 0.0
            ),
            "traversal_bytes": traversal,
            # Training state (codebooks/scales) is trained once and
            # shared across shards, so it counts once — matching
            # ShardedIndex.stats()["storage"].
            "aux_bytes": parts[0]["aux_bytes"],
            "exact_bytes": sum(p["exact_bytes"] for p in parts),
            "flat_bytes_per_vector": parts[0]["flat_bytes_per_vector"],
            "drift": sum(p["drift"] for p in parts),
        }
    else:
        store = index.store
        pts = np.asarray(index.dataset.points)
        flat_bytes = 0 if pts.dtype == object else int(pts.nbytes)
        n = int(store.n)
        bpv = float(store.traversal_bytes_per_vector())
        out = {
            "kind": store.kind,
            "quantized": bool(store.is_quantized),
            "n": n,
            "traversal_bytes_per_vector": round(bpv, 2),
            "traversal_bytes": int(round(bpv * n)),
            "aux_bytes": int(store.aux_bytes()),
            "exact_bytes": flat_bytes,
            "flat_bytes_per_vector": (
                round(flat_bytes / n, 2) if n else 0.0
            ),
            "drift": int(store.drift),
        }
    out["total_bytes"] = out["traversal_bytes"] + out["aux_bytes"] + (
        out["exact_bytes"] if out["quantized"] else 0
    )
    out["compression"] = (
        round(out["flat_bytes_per_vector"] / out["traversal_bytes_per_vector"], 2)
        if out["traversal_bytes_per_vector"]
        else 1.0
    )
    return out


def measure_queries(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Sequence[Any],
    epsilon: float,
    starts: Sequence[int] | None = None,
    budget: int | None = None,
    rng: np.random.Generator | None = None,
    keep_per_query: bool = False,
    ground_truth: tuple[np.ndarray, np.ndarray] | None = None,
    engine: str = "batch",
    seed: int | None = None,
    backend: str | None = None,
) -> QueryStats:
    """Run greedy for each query and aggregate cost/quality.

    ``starts`` supplies one start vertex per query; by default they are
    drawn uniformly (the paper allows *any* start, and the flexibility of
    choosing ``p_start`` is called out as a strength of the paradigm)
    from ``rng`` or, failing that, a fresh generator seeded with
    ``seed`` — so repeated calls with the same arguments aggregate the
    same searches.  The approximation ratio compares greedy's answer to
    the exact NN from a linear scan; queries whose NN distance is 0
    count as satisfied only on exact hits.  ``ground_truth`` accepts a
    precomputed ``(nn_ids, nn_dists)`` pair (see
    :func:`compute_ground_truth`); ``engine`` selects the lockstep batch
    engine (default) or the scalar per-query loop — their results are
    bit-identical.  An empty query batch aggregates to all-zero stats
    instead of tripping numpy's empty reductions.  ``backend`` threads
    through to the batch engine (see ``SearchParams.backend``; ``None``
    means ``"auto"``) — compiled backends return the same statistics
    bit for bit.
    """
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown engine {engine!r}; use 'batch' or 'scalar'")
    m = len(queries)
    if m == 0:
        return QueryStats(
            num_queries=0,
            mean_distance_evals=0.0,
            max_distance_evals=0,
            mean_hops=0.0,
            max_hops=0,
            mean_approximation=0.0,
            max_approximation=0.0,
            recall_at_1=0.0,
            epsilon_satisfied_fraction=0.0,
        )
    if starts is None:
        gen = rng if rng is not None else np.random.default_rng(seed or 0)
        starts = gen.integers(graph.n, size=m)

    if engine == "batch":
        results = greedy_batch(
            graph, dataset, starts, queries, budget=budget,
            backend="auto" if backend is None else backend,
        )
    else:
        results = [
            greedy(graph, dataset, int(start), q, budget=budget)
            for q, start in zip(queries, starts)
        ]

    evals, hops, ratios, hits, ok = [], [], [], [], []
    per_query: list[dict] = []
    for pos, (q, start, result) in enumerate(zip(queries, starts, results)):
        if ground_truth is not None:
            nn_id, nn_dist = int(ground_truth[0][pos]), float(ground_truth[1][pos])
        else:
            nn_id, nn_dist = dataset.nearest_neighbor(q)
        if nn_dist == 0.0:
            ratio = 1.0 if result.distance == 0.0 else float("inf")
        else:
            ratio = result.distance / nn_dist
        evals.append(result.distance_evals)
        hops.append(len(result.hops))
        ratios.append(ratio)
        hits.append(result.distance <= nn_dist * (1.0 + 1e-12))
        ok.append(ratio <= 1.0 + epsilon + 1e-9)
        if keep_per_query:
            per_query.append(
                {
                    "start": int(start),
                    "evals": result.distance_evals,
                    "hops": len(result.hops),
                    "ratio": ratio,
                    "returned": result.point,
                    "nn": nn_id,
                }
            )
    return QueryStats(
        num_queries=m,
        mean_distance_evals=float(np.mean(evals)),
        max_distance_evals=int(np.max(evals)),
        mean_hops=float(np.mean(hops)),
        max_hops=int(np.max(hops)),
        mean_approximation=float(np.mean(ratios)),
        max_approximation=float(np.max(ratios)),
        recall_at_1=float(np.mean(hits)),
        epsilon_satisfied_fraction=float(np.mean(ok)),
        per_query=per_query,
    )


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0
