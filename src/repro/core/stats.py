"""Measurement helpers shared by benches, examples, and tests.

The paper's cost model is explicit: *space* is the edge count, *query
time* is the number of distance evaluations of greedy, *construction
time* is wall time of the builder.  :func:`measure_queries` runs greedy
over a query batch and reports exactly those quantities plus solution
quality against the exact (linear-scan) nearest neighbor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import greedy
from repro.metrics.base import Dataset

__all__ = ["QueryStats", "measure_queries", "timed"]


@dataclass
class QueryStats:
    """Aggregated greedy-search statistics over a query batch."""

    num_queries: int
    mean_distance_evals: float
    max_distance_evals: int
    mean_hops: float
    max_hops: int
    mean_approximation: float
    max_approximation: float
    recall_at_1: float
    epsilon_satisfied_fraction: float
    per_query: list[dict] = field(default_factory=list, repr=False)

    def table_row(self) -> dict:
        return {
            "queries": self.num_queries,
            "evals_mean": round(self.mean_distance_evals, 1),
            "evals_max": self.max_distance_evals,
            "hops_mean": round(self.mean_hops, 2),
            "hops_max": self.max_hops,
            "approx_mean": round(self.mean_approximation, 4),
            "approx_max": round(self.max_approximation, 4),
            "recall@1": round(self.recall_at_1, 4),
        }


def measure_queries(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Sequence[Any],
    epsilon: float,
    starts: Sequence[int] | None = None,
    budget: int | None = None,
    rng: np.random.Generator | None = None,
    keep_per_query: bool = False,
) -> QueryStats:
    """Run greedy for each query and aggregate cost/quality.

    ``starts`` supplies one start vertex per query; by default they are
    drawn uniformly (the paper allows *any* start, and the flexibility of
    choosing ``p_start`` is called out as a strength of the paradigm).
    The approximation ratio compares greedy's answer to the exact NN from
    a linear scan; queries whose NN distance is 0 count as satisfied only
    on exact hits.
    """
    m = len(queries)
    if starts is None:
        gen = rng or np.random.default_rng(0)
        starts = gen.integers(graph.n, size=m)

    evals, hops, ratios, hits, ok = [], [], [], [], []
    per_query: list[dict] = []
    for q, start in zip(queries, starts):
        result = greedy(graph, dataset, int(start), q, budget=budget)
        nn_id, nn_dist = dataset.nearest_neighbor(q)
        if nn_dist == 0.0:
            ratio = 1.0 if result.distance == 0.0 else float("inf")
        else:
            ratio = result.distance / nn_dist
        evals.append(result.distance_evals)
        hops.append(len(result.hops))
        ratios.append(ratio)
        hits.append(result.distance <= nn_dist * (1.0 + 1e-12))
        ok.append(ratio <= 1.0 + epsilon + 1e-9)
        if keep_per_query:
            per_query.append(
                {
                    "start": int(start),
                    "evals": result.distance_evals,
                    "hops": len(result.hops),
                    "ratio": ratio,
                    "returned": result.point,
                    "nn": nn_id,
                }
            )
    return QueryStats(
        num_queries=m,
        mean_distance_evals=float(np.mean(evals)),
        max_distance_evals=int(np.max(evals)),
        mean_hops=float(np.mean(hops)),
        max_hops=int(np.max(hops)),
        mean_approximation=float(np.mean(ratios)),
        max_approximation=float(np.max(ratios)),
        recall_at_1=float(np.mean(hits)),
        epsilon_satisfied_fraction=float(np.mean(ok)),
        per_query=per_query,
    )


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0
