"""Proximity graphs: the container, the greedy routing procedure, the
navigability oracle (Fact 2.1), and the paper's three constructions
(G_net of Theorem 1.1, theta-graphs of Section 5.1, and the merged
Euclidean graph of Theorem 1.3)."""

from repro.graphs.base import ProximityGraph
from repro.graphs.cones import ConeFamily, build_cone_family
from repro.graphs.dynamic import DynamicGNet
from repro.graphs.engine import (
    beam_search_batch,
    bulk_insert,
    construction_beam_batch,
    greedy_batch,
    snapshot_graph,
)
from repro.graphs.gnet import (
    GNetBuildResult,
    GNetParameters,
    build_gnet,
    gnet_parameters,
)
from repro.graphs.greedy import GreedyResult, beam_search, greedy, query
from repro.graphs.merged import MergedBuildResult, build_merged_graph, jackpot_rate
from repro.graphs.navigability import (
    NavigabilityViolation,
    assert_navigable,
    check_navigability_for_query,
    find_violations,
    greedy_matches_navigability,
)
from repro.graphs.theta import ThetaBuildResult, build_theta_graph, theta_for_epsilon
from repro.graphs.validate import (
    GreedyFailure,
    corrupt_graph,
    exhaustive_greedy_check,
    validate_proximity_graph,
)

__all__ = [
    "ConeFamily",
    "DynamicGNet",
    "GNetBuildResult",
    "GNetParameters",
    "GreedyFailure",
    "GreedyResult",
    "MergedBuildResult",
    "NavigabilityViolation",
    "ProximityGraph",
    "ThetaBuildResult",
    "assert_navigable",
    "beam_search",
    "beam_search_batch",
    "build_cone_family",
    "bulk_insert",
    "construction_beam_batch",
    "snapshot_graph",
    "build_gnet",
    "build_merged_graph",
    "build_theta_graph",
    "check_navigability_for_query",
    "corrupt_graph",
    "exhaustive_greedy_check",
    "find_violations",
    "gnet_parameters",
    "greedy",
    "greedy_batch",
    "greedy_matches_navigability",
    "jackpot_rate",
    "query",
    "validate_proximity_graph",
    "theta_for_epsilon",
]
