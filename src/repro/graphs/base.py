"""Directed proximity-graph container, CSR-native.

A proximity graph in the paper is a simple directed graph whose vertices
correspond one-to-one to the data points of ``P`` (Section 1.1).  The
container has two physical states:

* **mutable** — one sorted ``numpy`` id array per vertex, the buffer
  builders append into while constructing;
* **frozen** — flat CSR storage (``offsets``/``targets``), the canonical
  form every finished graph lives in.  Frozen adjacency is what the
  batch query engine (:mod:`repro.graphs.engine`) gathers from, and it
  is byte-compatible with the on-disk ``.npz`` format.

``freeze()`` moves a graph into CSR in place; any mutating call on a
frozen graph transparently thaws it back into the per-vertex buffer, so
the public API (``out_neighbors``/``add_edges``/``set_out_neighbors``/
``merge``/``save``/``load``) behaves identically in both states.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = ["ProximityGraph"]


class ProximityGraph:
    """Out-adjacency of a simple directed graph on vertices ``0..n-1``.

    Self-loops are rejected (they can never help ``greedy``: a self-loop
    target is never strictly closer to the query) and parallel edges are
    collapsed.  Per-vertex adjacency is always sorted by id, which fixes
    greedy's smallest-id tie-breaking and makes membership tests binary
    searches.
    """

    def __init__(self, n: int, out_neighbors: Iterable[np.ndarray] | None = None):
        if n < 1:
            raise ValueError("graph needs at least one vertex")
        self.n = int(n)
        self._offsets: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        if out_neighbors is None:
            self._adj: list[np.ndarray] | None = [
                np.empty(0, dtype=np.intp) for _ in range(self.n)
            ]
        else:
            self._adj = [self._clean(u, nbrs) for u, nbrs in enumerate(out_neighbors)]
            if len(self._adj) != self.n:
                raise ValueError("out_neighbors length must equal n")

    def _clean(self, u: int, nbrs) -> np.ndarray:
        arr = np.unique(np.asarray(nbrs, dtype=np.intp))
        if len(arr) and (arr.min() < 0 or arr.max() >= self.n):
            raise ValueError(f"vertex {u}: neighbor id out of range")
        return arr[arr != u]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(cls, n: int, edges: Iterable[tuple[int, int]]) -> "ProximityGraph":
        """Build from ``(u, v)`` pairs (duplicates and self-loops dropped)."""
        buckets: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            buckets[int(u)].append(int(v))
        return cls(n, [np.array(b, dtype=np.intp) for b in buckets])

    @classmethod
    def from_sets(cls, n: int, sets: list[set[int]]) -> "ProximityGraph":
        return cls(n, [np.fromiter(s, dtype=np.intp, count=len(s)) for s in sets])

    @classmethod
    def from_csr(
        cls, n: int, offsets: np.ndarray, targets: np.ndarray, validate: bool = True
    ) -> "ProximityGraph":
        """Adopt CSR arrays directly (no per-row copies) as a frozen graph.

        ``offsets`` must be the ``(n+1,)`` row-pointer array and
        ``targets`` the flat neighbor ids; each row must already be
        strictly increasing with no self-loops (the container invariant).
        """
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.intp)
        if validate:
            if offsets.shape != (n + 1,) or offsets[0] != 0:
                raise ValueError("offsets must be (n+1,) starting at 0")
            if offsets[-1] != len(targets) or (np.diff(offsets) < 0).any():
                raise ValueError("offsets must be non-decreasing and span targets")
            if len(targets):
                if targets.min() < 0 or targets.max() >= n:
                    raise ValueError("neighbor id out of range")
                rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(offsets))
                if (targets == rows).any():
                    raise ValueError("self-loop in CSR targets")
                same_row = rows[1:] == rows[:-1]
                if (np.diff(targets)[same_row] <= 0).any():
                    raise ValueError("CSR rows must be strictly increasing")
        graph = cls.__new__(cls)
        graph.n = int(n)
        graph._adj = None
        graph._offsets = offsets
        graph._targets = targets
        return graph

    # ------------------------------------------------------------------
    # Physical state: mutable buffer <-> frozen CSR
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """``True`` when adjacency lives in flat CSR storage."""
        return self._adj is None

    def _build_csr(self) -> tuple[np.ndarray, np.ndarray]:
        assert self._adj is not None
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum([len(a) for a in self._adj], out=offsets[1:])
        targets = (
            np.concatenate(self._adj).astype(np.intp, copy=False)
            if offsets[-1]
            else np.empty(0, dtype=np.intp)
        )
        return offsets, targets

    def freeze(self) -> "ProximityGraph":
        """Compact the per-vertex buffers into CSR, in place.

        Idempotent; returns ``self`` so builders can ``return
        graph.freeze()``.
        """
        if self._adj is not None:
            self._offsets, self._targets = self._build_csr()
            self._adj = None
        return self

    def thaw(self) -> "ProximityGraph":
        """Re-expand CSR into per-vertex buffers, in place (idempotent)."""
        if self._adj is None:
            assert self._offsets is not None and self._targets is not None
            self._adj = [
                self._targets[self._offsets[u] : self._offsets[u + 1]].copy()
                for u in range(self.n)
            ]
            self._offsets = self._targets = None
        return self

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(offsets, targets)``, freezing in place if needed.

        The arrays are the live storage — callers must treat them as
        read-only.
        """
        self.freeze()
        assert self._offsets is not None and self._targets is not None
        return self._offsets, self._targets

    # ------------------------------------------------------------------
    # Adjacency access and mutation
    # ------------------------------------------------------------------

    def out_neighbors(self, u: int) -> np.ndarray:
        if self._adj is None:
            return self._targets[self._offsets[u] : self._offsets[u + 1]]
        return self._adj[u]

    def set_out_neighbors(self, u: int, nbrs) -> None:
        self.thaw()
        self._adj[u] = self._clean(u, nbrs)

    def add_edges(self, u: int, nbrs) -> None:
        self.thaw()
        self._adj[u] = self._clean(
            u, np.concatenate([self._adj[u], np.asarray(nbrs, dtype=np.intp)])
        )

    def has_edge(self, u: int, v: int) -> bool:
        # Adjacency is always sorted, so membership is a binary search.
        nbrs = self.out_neighbors(int(u))
        i = int(np.searchsorted(nbrs, int(v)))
        return i < len(nbrs) and int(nbrs[i]) == int(v)

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n):
            for v in self.out_neighbors(u):
                yield u, int(v)

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        if self._adj is None:
            return int(self._offsets[-1])
        return int(sum(len(a) for a in self._adj))

    def out_degrees(self) -> np.ndarray:
        if self._adj is None:
            return np.diff(self._offsets).astype(np.intp)
        return np.array([len(a) for a in self._adj], dtype=np.intp)

    def max_out_degree(self) -> int:
        return int(self.out_degrees().max())

    def mean_out_degree(self) -> float:
        return float(self.out_degrees().mean())

    def min_out_degree(self) -> int:
        return int(self.out_degrees().min())

    # ------------------------------------------------------------------

    def merge(self, other: "ProximityGraph") -> "ProximityGraph":
        """Edge-union with another graph on the same vertex set — the
        merging operation of Section 5.2 (out-edge set of each point is
        the union of those in the two graphs)."""
        if other.n != self.n:
            raise ValueError("cannot merge graphs with different vertex counts")
        merged = []
        for u in range(self.n):
            a, b = self.out_neighbors(u), other.out_neighbors(u)
            merged.append(np.union1d(a, b) if len(b) else a)
        return ProximityGraph(self.n, merged)

    def subgraph_of_sources(self, sources: np.ndarray) -> "ProximityGraph":
        """Keep only out-edges of the given source vertices (all vertices
        remain) — the vertex-sampling step of Section 5."""
        keep = np.zeros(self.n, dtype=bool)
        keep[np.asarray(sources, dtype=np.intp)] = True
        pruned = [
            self.out_neighbors(u) if keep[u] else np.empty(0, dtype=np.intp)
            for u in range(self.n)
        ]
        return ProximityGraph(self.n, pruned)

    def copy(self) -> "ProximityGraph":
        if self._adj is None:
            return ProximityGraph.from_csr(
                self.n, self._offsets.copy(), self._targets.copy(), validate=False
            )
        return ProximityGraph(self.n, [a.copy() for a in self._adj])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProximityGraph):
            return NotImplemented
        if self.n != other.n:
            return False
        if self.frozen and other.frozen:
            # Sorted-unique rows make CSR canonical: two array compares.
            return np.array_equal(self._offsets, other._offsets) and np.array_equal(
                self._targets, other._targets
            )
        return all(
            np.array_equal(self.out_neighbors(u), other.out_neighbors(u))
            for u in range(self.n)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "frozen" if self.frozen else "mutable"
        return f"ProximityGraph(n={self.n}, edges={self.num_edges}, {state})"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize to ``.npz`` (the CSR offsets + targets verbatim)."""
        if self._adj is None:
            offsets, targets = self._offsets, self._targets
        else:
            offsets, targets = self._build_csr()
        np.savez_compressed(
            Path(path), n=np.int64(self.n), offsets=offsets, targets=targets
        )

    @classmethod
    def load(cls, path: str | Path) -> "ProximityGraph":
        """Load a saved graph; the result is frozen (CSR-native)."""
        data = np.load(Path(path))
        n = int(data["n"])
        offsets = data["offsets"].astype(np.int64)
        targets = data["targets"].astype(np.intp)
        try:
            return cls.from_csr(n, offsets, targets, validate=True)
        except ValueError:
            # Hand-crafted files may hold unsorted rows; fall back to the
            # cleaning constructor and freeze the result.
            adj = [targets[offsets[u] : offsets[u + 1]] for u in range(n)]
            return cls(n, adj).freeze()

    def degree_histogram(self) -> dict[int, int]:
        values, counts = np.unique(self.out_degrees(), return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def summary(self) -> dict:
        """Small JSON-friendly stats block used by benches and examples."""
        deg = self.out_degrees()
        return {
            "n": self.n,
            "edges": self.num_edges,
            "min_out_degree": int(deg.min()),
            "mean_out_degree": float(deg.mean()),
            "max_out_degree": int(deg.max()),
        }

    def summary_json(self) -> str:
        return json.dumps(self.summary(), indent=2)
