"""Directed proximity-graph container.

A proximity graph in the paper is a simple directed graph whose vertices
correspond one-to-one to the data points of ``P`` (Section 1.1).  The
container stores out-adjacency as one sorted ``numpy`` id array per
vertex, which is what the greedy search consumes (one batched distance
evaluation per hop).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = ["ProximityGraph"]


class ProximityGraph:
    """Out-adjacency of a simple directed graph on vertices ``0..n-1``.

    Self-loops are rejected (they can never help ``greedy``: a self-loop
    target is never strictly closer to the query) and parallel edges are
    collapsed.
    """

    def __init__(self, n: int, out_neighbors: Iterable[np.ndarray] | None = None):
        if n < 1:
            raise ValueError("graph needs at least one vertex")
        self.n = int(n)
        if out_neighbors is None:
            self._adj: list[np.ndarray] = [
                np.empty(0, dtype=np.intp) for _ in range(self.n)
            ]
        else:
            self._adj = [self._clean(u, nbrs) for u, nbrs in enumerate(out_neighbors)]
            if len(self._adj) != self.n:
                raise ValueError("out_neighbors length must equal n")

    def _clean(self, u: int, nbrs) -> np.ndarray:
        arr = np.unique(np.asarray(nbrs, dtype=np.intp))
        if len(arr) and (arr.min() < 0 or arr.max() >= self.n):
            raise ValueError(f"vertex {u}: neighbor id out of range")
        return arr[arr != u]

    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(cls, n: int, edges: Iterable[tuple[int, int]]) -> "ProximityGraph":
        """Build from ``(u, v)`` pairs (duplicates and self-loops dropped)."""
        buckets: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            buckets[int(u)].append(int(v))
        return cls(n, [np.array(b, dtype=np.intp) for b in buckets])

    @classmethod
    def from_sets(cls, n: int, sets: list[set[int]]) -> "ProximityGraph":
        return cls(n, [np.fromiter(s, dtype=np.intp, count=len(s)) for s in sets])

    # ------------------------------------------------------------------

    def out_neighbors(self, u: int) -> np.ndarray:
        return self._adj[u]

    def set_out_neighbors(self, u: int, nbrs) -> None:
        self._adj[u] = self._clean(u, nbrs)

    def add_edges(self, u: int, nbrs) -> None:
        self._adj[u] = self._clean(
            u, np.concatenate([self._adj[u], np.asarray(nbrs, dtype=np.intp)])
        )

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(int(v), self._adj[int(u)]).item())

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n):
            for v in self._adj[u]:
                yield u, int(v)

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(sum(len(a) for a in self._adj))

    def out_degrees(self) -> np.ndarray:
        return np.array([len(a) for a in self._adj], dtype=np.intp)

    def max_out_degree(self) -> int:
        return int(self.out_degrees().max())

    def mean_out_degree(self) -> float:
        return float(self.out_degrees().mean())

    def min_out_degree(self) -> int:
        return int(self.out_degrees().min())

    # ------------------------------------------------------------------

    def merge(self, other: "ProximityGraph") -> "ProximityGraph":
        """Edge-union with another graph on the same vertex set — the
        merging operation of Section 5.2 (out-edge set of each point is
        the union of those in the two graphs)."""
        if other.n != self.n:
            raise ValueError("cannot merge graphs with different vertex counts")
        merged = [
            np.union1d(self._adj[u], other._adj[u]) if len(other._adj[u]) else self._adj[u]
            for u in range(self.n)
        ]
        return ProximityGraph(self.n, merged)

    def subgraph_of_sources(self, sources: np.ndarray) -> "ProximityGraph":
        """Keep only out-edges of the given source vertices (all vertices
        remain) — the vertex-sampling step of Section 5."""
        keep = np.zeros(self.n, dtype=bool)
        keep[np.asarray(sources, dtype=np.intp)] = True
        pruned = [
            self._adj[u] if keep[u] else np.empty(0, dtype=np.intp)
            for u in range(self.n)
        ]
        return ProximityGraph(self.n, pruned)

    def copy(self) -> "ProximityGraph":
        return ProximityGraph(self.n, [a.copy() for a in self._adj])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProximityGraph):
            return NotImplemented
        return self.n == other.n and all(
            np.array_equal(a, b) for a, b in zip(self._adj, other._adj)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProximityGraph(n={self.n}, edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize to ``.npz`` (CSR-style offsets + targets)."""
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        for u in range(self.n):
            offsets[u + 1] = offsets[u] + len(self._adj[u])
        targets = (
            np.concatenate(self._adj)
            if self.num_edges
            else np.empty(0, dtype=np.intp)
        )
        np.savez_compressed(
            Path(path), n=np.int64(self.n), offsets=offsets, targets=targets
        )

    @classmethod
    def load(cls, path: str | Path) -> "ProximityGraph":
        data = np.load(Path(path))
        n = int(data["n"])
        offsets, targets = data["offsets"], data["targets"]
        adj = [
            targets[offsets[u] : offsets[u + 1]].astype(np.intp) for u in range(n)
        ]
        return cls(n, adj)

    def degree_histogram(self) -> dict[int, int]:
        values, counts = np.unique(self.out_degrees(), return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def summary(self) -> dict:
        """Small JSON-friendly stats block used by benches and examples."""
        deg = self.out_degrees()
        return {
            "n": self.n,
            "edges": self.num_edges,
            "min_out_degree": int(deg.min()),
            "mean_out_degree": float(deg.mean()),
            "max_out_degree": int(deg.max()),
        }

    def summary_json(self) -> str:
        return json.dumps(self.summary(), indent=2)
