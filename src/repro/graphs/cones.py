"""Cone families covering ``R^d`` with bounded angular diameter.

Section 5.1 invokes Yao's construction [28]: a set ``C`` of
``O((1/theta)^(d-1))`` cones, each with apex at the origin and angular
diameter at most ``theta``, whose union is ``R^d``; each cone carries a
*designated ray*.  The proof of Lemma 5.1 uses exactly three properties:

1. the cones cover ``R^d``;
2. each cone's angular diameter is at most ``theta``;
3. the designated ray lies inside its cone.

We therefore substitute *circular* cones about a family of axis
directions whose spherical covering radius is ``theta / 2`` (every unit
vector is within angle ``theta/2`` of some axis); the designated ray of a
cone is its axis.  Angular diameter is then at most ``theta`` and all
three properties hold — see DESIGN.md §5.

Constructions:

* ``d = 1`` — two rays (half-lines), covering trivially;
* ``d = 2`` — ``k = ceil(2*pi/theta)`` exact sectors, tight;
* ``d >= 3`` — axes through a grid on the faces of the cube ``[-1,1]^d``.
  A direction exits the cube inside some grid cell; the cell is a convex
  flat polytope, and the set of directions within a given angle of the
  cell-center axis is a convex cone, so checking the cell's *corners*
  certifies the whole cell.  The grid is refined until every corner
  passes — a deterministic covering certificate.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

__all__ = ["ConeFamily", "build_cone_family"]


class ConeFamily:
    """Circular cones ``{x : angle(x, axis_j) <= half_angle}``.

    ``axes`` is a ``(k, d)`` array of unit vectors; ``half_angle`` is in
    radians.  The angular diameter of each cone is ``2 * half_angle``.
    """

    def __init__(self, axes: np.ndarray, half_angle: float):
        axes = np.asarray(axes, dtype=np.float64)
        if axes.ndim != 2:
            raise ValueError("axes must be a (k, d) array")
        norms = np.linalg.norm(axes, axis=1)
        if not np.allclose(norms, 1.0):
            raise ValueError("axes must be unit vectors")
        if not 0 < half_angle < math.pi:
            raise ValueError("half angle must be in (0, pi)")
        self.axes = axes
        self.half_angle = float(half_angle)
        self._cos_half = math.cos(self.half_angle)

    @property
    def num_cones(self) -> int:
        return len(self.axes)

    @property
    def dim(self) -> int:
        return self.axes.shape[1]

    @property
    def angular_diameter(self) -> float:
        return 2.0 * self.half_angle

    # ------------------------------------------------------------------

    def membership(self, vectors: np.ndarray) -> np.ndarray:
        """Boolean ``(m, k)`` matrix: row ``i`` marks the cones containing
        direction ``vectors[i]`` (zero vectors belong to every cone —
        they sit at the apex)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        safe = np.where(norms > 0, norms, 1.0)
        units = vectors / safe
        dots = units @ self.axes.T
        inside = dots >= self._cos_half - 1e-12
        inside[(norms == 0).ravel(), :] = True
        return inside

    def covers(self, vectors: np.ndarray) -> bool:
        """True iff every given direction lies in at least one cone."""
        return bool(self.membership(vectors).any(axis=1).all())

    def projections(self, vectors: np.ndarray) -> np.ndarray:
        """``(m, k)`` matrix of projections of each vector onto each
        cone's designated ray (its axis) — the nearest-point-on-ray
        ordering key of Section 5.1."""
        return np.atleast_2d(np.asarray(vectors, dtype=np.float64)) @ self.axes.T


def build_cone_family(theta: float, dim: int) -> ConeFamily:
    """A cone family with angular diameter at most ``theta`` covering
    ``R^dim``, with ``O((1/theta)^(dim-1))`` cones."""
    if not 0 < theta < math.pi:
        raise ValueError("theta must be in (0, pi)")
    if dim < 1:
        raise ValueError("dimension must be at least 1")
    if dim == 1:
        return ConeFamily(np.array([[1.0], [-1.0]]), half_angle=min(theta / 2, 1.0))
    if dim == 2:
        k = max(3, math.ceil(2.0 * math.pi / theta))
        angles = (np.arange(k) + 0.5) * (2.0 * math.pi / k)
        axes = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        return ConeFamily(axes, half_angle=math.pi / k)
    return _cube_grid_cones(theta, dim)


def _cube_grid_cones(theta: float, dim: int) -> ConeFamily:
    """Axes through grid-cell centers on the faces of ``[-1, 1]^dim``,
    refined until the corner certificate guarantees covering radius
    ``theta / 2``."""
    half = theta / 2.0
    cells_per_side = max(1, math.ceil(2.0 * math.sqrt(dim - 1) / half))
    while True:
        axes, ok = _try_grid(cells_per_side, dim, half)
        if ok:
            return ConeFamily(axes, half_angle=half)
        cells_per_side *= 2


def _try_grid(m: int, dim: int, half: float) -> tuple[np.ndarray, bool]:
    """Build face-grid axes with ``m`` cells per side and certify that
    every cell corner is within ``half`` of its cell-center direction."""
    step = 2.0 / m
    centers_1d = -1.0 + step * (np.arange(m) + 0.5)
    face_centers = np.array(
        list(itertools.product(centers_1d, repeat=dim - 1)), dtype=np.float64
    )
    corner_offsets = np.array(
        list(itertools.product((-step / 2.0, step / 2.0), repeat=dim - 1)),
        dtype=np.float64,
    )
    cos_half = math.cos(half)

    axes: list[np.ndarray] = []
    for axis_dim in range(dim):
        for sign in (-1.0, 1.0):
            # Points on the face {x[axis_dim] = sign}.
            block = np.empty((len(face_centers), dim))
            other = [k for k in range(dim) if k != axis_dim]
            block[:, axis_dim] = sign
            block[:, other] = face_centers
            units = block / np.linalg.norm(block, axis=1, keepdims=True)
            axes.append(units)

            # Certificate: every corner of every cell within `half`.
            for off in corner_offsets:
                corner = block.copy()
                corner[:, other] = face_centers + off[None, :]
                corner_units = corner / np.linalg.norm(corner, axis=1, keepdims=True)
                dots = np.einsum("ij,ij->i", units, corner_units)
                if (dots < cos_half).any():
                    return np.empty((0, dim)), False
    return np.concatenate(axes, axis=0), True
