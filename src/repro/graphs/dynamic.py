"""Incremental G_net — online insertion, an extension beyond the paper.

The Theorem 1.1 construction is static.  Nothing about its *proof*,
however, requires the nets to be built offline: navigability (Lemma 2.2)
only needs each ``Y_i`` to be a 2^i-net of the current point set and
every point to link to all net points within ``phi * 2^i``.  Both
properties can be maintained under insertions:

* **net membership** — a new point ``p`` joins ``Y_i`` iff its distance
  to the current ``Y_i`` is at least ``2^i`` (preserving separation;
  covering then holds with radius ``2^i`` because either ``p`` joined or
  a witness within ``2^i`` blocked it);  note the memberships are no
  longer nested prefixes of one ordering — they don't need to be;
* **edges** — ``p`` gains out-edges to all ``y in Y_i`` within
  ``phi * 2^i`` (a range query per level), and every existing point
  ``q`` within ``phi * 2^i`` of ``p`` gains an edge to ``p`` for each
  level where ``p`` joined ``Y_i`` (the *reverse* range query).

Cost per insertion: ``O(h)`` range queries, each output-sensitive via a
per-level hash grid — ``(1/eps)^lambda * polylog`` amortized on
bounded-doubling inputs, matching the static build's per-point cost.

Limitations (documented, by design):

* the height ``h`` and minimum inter-point distance are fixed at
  creation from a declared coordinate ``domain`` (points outside it are
  rejected), mirroring the paper's normalization convention;
* deletions are not supported (the paper's lower bounds say nothing
  about deletions; a tombstone scheme as in the cover tree would work
  but is orthogonal).

Coordinate (``R^d``-style) metrics only — the per-level grids need
coordinates.  For abstract metrics use the static builder.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters, gnet_parameters
from repro.metrics.base import Dataset, MetricSpace

__all__ = ["DynamicGNet"]


class _LevelGrid:
    """Minimal hash grid over a growing id->coordinate map (one per net
    level; cell width = the level's edge radius)."""

    def __init__(self, cell_size: float):
        self.cell_size = float(cell_size)
        self.cells: dict[tuple[int, ...], list[int]] = {}

    def _cell_of(self, x: np.ndarray) -> tuple[int, ...]:
        return tuple(np.floor(x / self.cell_size).astype(int))

    def add(self, point_id: int, x: np.ndarray) -> None:
        self.cells.setdefault(self._cell_of(x), []).append(point_id)

    def candidates(self, x: np.ndarray, radius: float) -> list[int]:
        lo = np.floor((x - radius) / self.cell_size).astype(int)
        hi = np.floor((x + radius) / self.cell_size).astype(int)
        out: list[int] = []
        ranges = [range(int(a), int(b) + 1) for a, b in zip(lo, hi)]
        # Iterate the cell box; for radius <= cell_size this is 3^d cells.
        for cell in itertools.product(*ranges):
            out.extend(self.cells.get(cell, ()))
        return out


class DynamicGNet:
    """A (1+eps)-PG maintained under point insertions.

    The per-level grids equate coordinate radii with metric radii, so the
    metric must be a plain (unscaled) coordinate metric and the inserted
    coordinates must already live in normalized units — scale the
    *points* (not the metric) so their minimum inter-point distance is
    ``min_distance``, e.g. ``points * factor`` with the factor from
    :func:`repro.metrics.scaling.normalize_min_distance`.

    Parameters
    ----------
    metric:
        A coordinate metric (``L2``, ``L_inf``, ``Lp``), unscaled.
    epsilon:
        Approximation target; fixes ``phi`` as in the static build.
    domain_diameter:
        Upper bound on the diameter of everything that will ever be
        inserted (after your own scaling).  Fixes ``h``.
    min_distance:
        Lower bound on inter-point distances (the paper's normalized
        value is 2).  Insertions closer than this to an existing point
        are rejected.
    capacity:
        Optional pre-allocation hint for the coordinate store.
    """

    def __init__(
        self,
        metric: MetricSpace,
        epsilon: float,
        domain_diameter: float,
        dim: int,
        min_distance: float = 2.0,
        capacity: int = 1024,
    ):
        if min_distance <= 0:
            raise ValueError("min_distance must be positive")
        if domain_diameter < min_distance:
            raise ValueError("domain diameter below the minimum distance")
        self.metric = metric
        self.min_distance = float(min_distance)
        self._domain_radius = float(domain_diameter) / 2.0
        self.params: GNetParameters = gnet_parameters(
            epsilon, max(domain_diameter, 2.0)
        )
        self.dim = int(dim)
        self._coords = np.empty((max(capacity, 4), self.dim), dtype=np.float64)
        self.n = 0
        self._out: list[set[int]] = []
        # Per level: member ids of Y_i, a grid at the *separation* scale
        # (for the >= 2^i check) and a grid at the *edge radius* scale.
        h = self.params.height
        self._members: list[list[int]] = [[] for _ in range(h + 1)]
        self._sep_grids = [_LevelGrid(float(2**i)) for i in range(h + 1)]
        self._edge_grids = [
            _LevelGrid(self.params.level_radius(i)) for i in range(h + 1)
        ]
        # One grid over all points for reverse edge queries, per level.
        self._all_grids = [
            _LevelGrid(self.params.level_radius(i)) for i in range(h + 1)
        ]

    # ------------------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        metric: MetricSpace,
        coords: np.ndarray,
        epsilon: float,
        min_distance: float = 2.0,
        diameter_headroom: float = 4.0,
    ) -> "DynamicGNet":
        """Adopt an existing (already normalized) point set into a dynamic
        net — the upgrade path a static ``gnet`` index takes on its first
        ``add()``.

        ``coords`` must already live in normalized units (minimum
        inter-point distance ``>= min_distance``); every point is
        re-inserted in id order, so internal ids ``0..n-1`` are
        preserved.  The resulting net hierarchy generally differs from
        the static build's (memberships depend on insertion order) but
        maintains exactly the Theorem 1.1 invariants, so the (1+eps)
        guarantee carries over.  ``diameter_headroom`` multiplies the
        estimated current diameter to fix the domain budget — the room
        future insertions may occupy (``h`` grows only logarithmically
        in it).
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or len(coords) < 1:
            raise ValueError("need an (n, d) coordinate array with n >= 1")
        if diameter_headroom < 1.0:
            raise ValueError("diameter_headroom must be at least 1")
        # Section 2.4 remark: 2 * max-distance-from-any-point is within
        # [diam, 2*diam]; headroom then reserves growth room on top.
        d_max_hat = 2.0 * float(metric.distances(coords[0], coords).max())
        domain = max(diameter_headroom * max(d_max_hat, min_distance), 2.0)
        net = cls(
            metric,
            epsilon,
            domain_diameter=domain,
            dim=coords.shape[1],
            min_distance=min_distance,
            capacity=2 * len(coords),
        )
        net.insert_many(coords)
        return net

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    @property
    def coords(self) -> np.ndarray:
        return self._coords[: self.n]

    def graph(self) -> ProximityGraph:
        """Snapshot of the current graph."""
        return ProximityGraph.from_sets(max(self.n, 1), [set(s) for s in self._out])

    def dataset(self) -> Dataset:
        """Snapshot dataset over the current points."""
        return Dataset(self.metric, self.coords.copy())

    # ------------------------------------------------------------------

    def _dists(self, x: np.ndarray, ids: list[int]) -> np.ndarray:
        if not ids:
            return np.empty(0)
        return self.metric.distances(x, self._coords[np.array(ids, dtype=np.intp)])

    def rejection_reason(self, point: np.ndarray) -> str | None:
        """Why :meth:`insert` would refuse ``point`` — or ``None`` if it
        is insertable.  Lets batch callers (the index facade's ``add``)
        pre-validate a whole batch before mutating anything, keeping the
        batch atomic."""
        x = np.asarray(point, dtype=np.float64)
        if x.shape != (self.dim,):
            return f"expected a ({self.dim},) point"
        if self.n > 0:
            # Distance sanity: nearest existing point must be >= min_distance.
            near = self._all_grids[0].candidates(x, self.min_distance)
            d = self._dists(x, near)
            if len(d) and float(d.min()) < self.min_distance:
                return "insertion violates the declared minimum inter-point distance"
            # Diameter budget: h was sized from domain_diameter, and the
            # Lemma 2.2 argument needs h >= log2(diam).  Enforce the
            # (conservative) radius-around-the-first-point test, which by
            # the triangle inequality caps the diameter at the budget.
            if self.metric.distance(x, self._coords[0]) > self._domain_radius:
                return (
                    "insertion exceeds the declared domain diameter; "
                    "rebuild with a larger domain_diameter"
                )
        return None

    def insert(self, point: np.ndarray, prevalidated: bool = False) -> int:
        """Insert a point; returns its id.

        Raises ``ValueError`` if the point violates the declared minimum
        distance or falls outside the declared diameter budget (both
        checks are exact, via level-0 / top-level range queries).
        Callers that already ran :meth:`rejection_reason` over their
        whole batch (the facade's atomic ``add``) pass
        ``prevalidated=True`` to skip re-checking.
        """
        x = np.asarray(point, dtype=np.float64)
        if not prevalidated:
            reason = self.rejection_reason(x)
            if reason is not None:
                raise ValueError(reason)
        pid = self.n

        if self.n == len(self._coords):
            grown = np.empty((2 * len(self._coords), self.dim))
            grown[: self.n] = self._coords[: self.n]
            self._coords = grown
        self._coords[pid] = x
        self.n += 1
        self._out.append(set())

        new_edges_in = 0
        for i in range(self.params.height + 1):
            radius = self.params.level_radius(i)
            sep = float(2**i)

            # Does p join Y_i?  Yes iff no current member within 2^i.
            member_hits = self._sep_grids[i].candidates(x, sep)
            d = self._dists(x, member_hits)
            joins = not (len(d) and float(d.min()) < sep)
            if joins:
                self._members[i].append(pid)
                self._sep_grids[i].add(pid, x)
                self._edge_grids[i].add(pid, x)
                # Reverse edges: every existing point within radius links
                # to the new net member.
                others = self._all_grids[i].candidates(x, radius)
                od = self._dists(x, others)
                for q, dq in zip(others, od):
                    if dq <= radius and q != pid:
                        if pid not in self._out[q]:
                            self._out[q].add(pid)
                            new_edges_in += 1

            # Forward edges of p at this level.
            cand = self._edge_grids[i].candidates(x, radius)
            cd = self._dists(x, cand)
            for y, dy in zip(cand, cd):
                if dy <= radius and y != pid:
                    self._out[pid].add(int(y))

            self._all_grids[i].add(pid, x)
        return pid

    def insert_many(
        self, points: np.ndarray, prevalidated: bool = False
    ) -> list[int]:
        return [
            self.insert(p, prevalidated=prevalidated)
            for p in np.asarray(points, dtype=np.float64)
        ]

    # ------------------------------------------------------------------

    def level_members(self, i: int) -> np.ndarray:
        """Current ``Y_i`` (for inspection/tests)."""
        return np.array(self._members[i], dtype=np.intp)

    def check_net_invariants(self) -> None:
        """Assert every level is a 2^i-net of the current points
        (quadratic; test support)."""
        from repro.nets.rnet import verify_rnet

        ds = self.dataset()
        for i in range(self.params.height + 1):
            members = self.level_members(i)
            verify_rnet(ds, members, float(2**i))

    def query(self, q: np.ndarray, p_start: int | None = None):
        """Greedy (1+eps)-ANN over the current snapshot."""
        from repro.graphs.greedy import greedy

        if self.n == 0:
            raise ValueError("empty index")
        start = 0 if p_start is None else int(p_start)
        result = greedy(self.graph(), self.dataset(), start, np.asarray(q, float))
        return result.point, result.distance
