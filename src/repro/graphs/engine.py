"""Vectorized batch query engine — many searches in lockstep.

The scalar :func:`repro.graphs.greedy.greedy` loop issues one small
distance batch per hop per query; at production query rates the Python
per-hop overhead dominates the arithmetic.  This engine runs a whole
query batch in lockstep instead: per hop it gathers every active query's
neighbor slice straight from the graph's CSR storage, issues **one**
segmented :meth:`~repro.metrics.base.MetricSpace.distances_many` call
for all (query, neighbor) pairs, and advances every active query at
once with segmented reductions.

Semantics are *bit-identical* to the scalar procedures: the same
distance kernels evaluate the same operands in the same per-segment
order, eval budgets are charged per query exactly as the paper's
``query(p_start, q, Q)`` does, and ties still break toward the smallest
vertex id (first index of the per-segment minimum).  ``greedy_batch``
therefore returns the very :class:`GreedyResult` objects the scalar loop
would have produced — the throughput win is pure overhead removal, not
an accounting change.
"""

from __future__ import annotations

import dataclasses
import heapq
from itertools import chain
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import GreedyResult
from repro.metrics.base import Dataset
from repro.storage.base import FlatQueryView

__all__ = [
    "greedy_batch",
    "beam_search_batch",
    "construction_beam_batch",
    "WaveInserter",
    "bulk_insert",
    "snapshot_graph",
    "robust_prune",
    "locate_wave_pools",
    "prune_and_link",
    "RepairInserter",
    "chunk_spans",
    "shard_search_entry",
    "preload_shard_cache",
    "reset_shard_worker_cache",
]


def _as_query_array(queries: Any) -> np.ndarray:
    """Hold the query batch in one fancy-indexable array.

    Coordinate queries become an ``(m, d)`` float array, id queries a 1-D
    int array; anything heterogeneous falls back to an object array,
    which the default (per-segment) metric path handles.
    """
    if isinstance(queries, np.ndarray):
        return queries
    try:
        return np.asarray(queries)
    except ValueError:  # ragged input
        arr = np.empty(len(queries), dtype=object)
        arr[:] = list(queries)
        return arr


def _distance_view(dataset: Dataset, Q: np.ndarray, store: Any):
    """The per-batch distance oracle this search traverses against.

    ``store=None`` (the default everywhere) builds the exact
    :class:`~repro.storage.base.FlatQueryView` over the dataset's metric
    and points — the very calls the engines made before the storage
    layer existed, so results stay bit-identical.  A quantized
    :class:`~repro.storage.base.VectorStore` binds its approximate
    per-batch state here instead (PQ computes its ADC lookup tables
    once, in this call).
    """
    if store is None:
        return FlatQueryView(dataset.metric, dataset.points, Q)
    return store.bind(Q)


def greedy_batch(
    graph: ProximityGraph,
    dataset: Dataset,
    starts: Sequence[int],
    queries: Any,
    budget: int | None = None,
    allowed: np.ndarray | None = None,
    store: Any = None,
    backend: str | None = None,
) -> list[GreedyResult]:
    """Run ``greedy(starts[i], queries[i])`` for all ``i`` in lockstep.

    Returns one :class:`GreedyResult` per query, bit-identical (point,
    distance, hops, distance_evals, self_terminated) to calling the
    scalar :func:`~repro.graphs.greedy.greedy` per query with the same
    ``budget``.

    ``allowed`` (a boolean mask over the vertex set) restricts which
    vertices may be *returned*: the walk itself is unchanged — greedy
    still hops through every vertex, which preserves navigability — but
    the reported ``(point, distance)`` is the closest *allowed* vertex
    among all vertices the walk evaluated.  A query that never evaluated
    an allowed vertex reports ``(-1, inf)``.  With ``allowed=None`` the
    masked bookkeeping is skipped entirely and results stay bit-identical
    to the scalar routine.

    ``store`` selects the :class:`~repro.storage.base.VectorStore` to
    traverse against (approximate distances over codes); ``None`` walks
    the exact flat path.

    ``backend`` selects the traversal engine: ``None``/``"numpy"`` is
    this pinned lockstep code; ``"auto"`` and explicit accel backend
    names dispatch whole batches to :mod:`repro.accel` compiled kernels
    (``"auto"`` silently stays here when no backend is warmed or the
    workload has no compiled kernel).
    """
    m = len(queries)
    starts = np.asarray(starts, dtype=np.intp)
    if len(starts) != m:
        raise ValueError("need exactly one start vertex per query")
    if m and (starts.min() < 0 or starts.max() >= graph.n):
        bad = starts[(starts < 0) | (starts >= graph.n)][0]
        raise ValueError(f"start vertex {int(bad)} out of range")
    if allowed is not None:
        allowed = np.asarray(allowed, dtype=bool)
        if allowed.shape != (graph.n,):
            raise ValueError("allowed mask must cover every vertex")
    if backend is not None and backend != "numpy":
        from repro import accel

        resolved = accel.resolve_backend(backend)
        if resolved != "numpy":
            try:
                return accel.run_greedy(
                    resolved, graph, dataset, starts, queries,
                    budget=budget, allowed=allowed, store=store,
                )
            except accel.UnsupportedWorkloadError:
                if backend != "auto":
                    raise
    offsets, targets = graph.csr()
    Q = _as_query_array(queries)
    view = _distance_view(dataset, Q, store)

    # The initial distance of each query is the same scalar evaluation
    # the sequential loop performs (one per query, once).
    p_cur = starts.copy()
    d_cur = np.array(
        [view.scalar(i, int(starts[i])) for i in range(m)],
        dtype=np.float64,
    )
    evals = np.ones(m, dtype=np.int64)
    hops: list[list[int]] = [[int(s)] for s in starts]
    results: list[GreedyResult | None] = [None] * m
    active = np.arange(m, dtype=np.intp)

    # Best *allowed* vertex evaluated so far, per query (filter path).
    if allowed is not None:
        best_p = np.where(allowed[starts], p_cur, -1)
        best_d = np.where(allowed[starts], d_cur, np.inf)

    def finalize(idx: np.ndarray, self_terminated: np.ndarray | bool) -> None:
        flags = (
            np.broadcast_to(self_terminated, len(idx))
            if np.isscalar(self_terminated)
            else self_terminated
        )
        if allowed is None:
            for i, flag in zip(idx, flags):
                results[i] = GreedyResult(
                    int(p_cur[i]), float(d_cur[i]), hops[i], int(evals[i]), bool(flag)
                )
        else:
            for i, flag in zip(idx, flags):
                results[i] = GreedyResult(
                    int(best_p[i]), float(best_d[i]), hops[i], int(evals[i]), bool(flag)
                )

    while len(active):
        # 1. Budget exhausted before the hop (the paper's query() cutoff).
        if budget is not None:
            exhausted = evals[active] >= budget
            if exhausted.any():
                finalize(active[exhausted], False)
                active = active[~exhausted]
                if not len(active):
                    break

        # 2. Local optimum by emptiness: no out-neighbors to examine.
        p_act = p_cur[active]
        deg = (offsets[p_act + 1] - offsets[p_act]).astype(np.int64)
        empty = deg == 0
        if empty.any():
            finalize(active[empty], True)
            active, p_act, deg = active[~empty], p_act[~empty], deg[~empty]
            if not len(active):
                break

        # 3. Truncate each neighbor slice to the remaining budget.
        if budget is not None:
            take = np.minimum(deg, budget - evals[active])
            truncated = take < deg
        else:
            take = deg
            truncated = np.zeros(len(active), dtype=bool)

        # 4. Gather all neighbor slices flat and evaluate them in ONE
        #    segmented distance call.
        seg_stop = np.cumsum(take)
        seg_start = seg_stop - take
        total = int(seg_stop[-1])
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_start, take)
            + np.repeat(offsets[p_act], take)
        )
        cand = targets[flat]
        dists = view.segmented(active, cand, take)
        evals[active] += take

        # 4b. Filter bookkeeping: fold this hop's *allowed* candidates
        #     into each query's best-allowed record (routing unaffected).
        if allowed is not None:
            adm = allowed[cand]
            if adm.any():
                masked = np.where(adm, dists, np.inf)
                amins = np.minimum.reduceat(masked, seg_start)
                a_is_min = masked == np.repeat(amins, take)
                a_first = np.minimum.reduceat(
                    np.where(a_is_min, np.arange(total, dtype=np.int64), total),
                    seg_start,
                )
                better = amins < best_d[active]
                upd = active[better]
                best_d[upd] = amins[better]
                best_p[upd] = cand[a_first[better]]

        # 5. Per-segment first minimum (greedy's smallest-id tie-break).
        mins = np.minimum.reduceat(dists, seg_start)
        is_min = dists == np.repeat(mins, take)
        first = np.minimum.reduceat(
            np.where(is_min, np.arange(total, dtype=np.int64), total), seg_start
        )

        # 6. Queries whose best neighbor does not improve stop here; with
        #    a truncated slice the optimum cannot be certified.
        improved = mins < d_cur[active]
        if (~improved).any():
            finalize(active[~improved], ~truncated[~improved])

        # 7. Advance the rest.
        adv = active[improved]
        new_p = cand[first[improved]]
        p_cur[adv] = new_p
        d_cur[adv] = mins[improved]
        for i, p in zip(adv, new_p):
            hops[i].append(int(p))
        active = adv

    return results  # type: ignore[return-value]


class _BeamState:
    """Per-query beam bookkeeping for the lockstep rounds.

    Visited tracking lives outside the state, in the batch-shared
    ``(m, n)`` bitmap — the same idiom :func:`construction_beam_batch`
    uses — so the gather step is one vectorized row mask instead of a
    per-neighbor Python ``set`` probe.
    """

    __slots__ = ("candidates", "pool", "evals", "done")

    def __init__(self, start: int, d0: float, admissible: bool = True):
        self.candidates: list[tuple[float, int]] = [(d0, start)]
        self.pool: list[tuple[float, int]] = [(-d0, start)] if admissible else []
        self.evals = 1
        self.done = False


def beam_search_batch(
    graph: ProximityGraph,
    dataset: Dataset,
    starts: Sequence[int],
    queries: Any,
    beam_width: int,
    k: int = 1,
    budget: int | None = None,
    allowed: np.ndarray | None = None,
    store: Any = None,
    backend: str | None = None,
) -> list[tuple[list[tuple[int, float]], int]]:
    """Lockstep best-first beam search over a query batch.

    Per round every live query pops its best candidate and contributes
    its unvisited out-neighbors to one shared segmented distance call;
    heap updates then replay the scalar :func:`beam_search` logic per
    query, so results and eval counts match the scalar routine exactly.

    ``allowed`` (a boolean mask over the vertex set) restricts which
    vertices may enter the *result pool*: disallowed vertices are still
    traversed — they enter the candidate heap under the usual beam
    bound, keeping the search connected through filtered-out regions —
    but never count toward the ``beam_width`` best.  With a filter a
    query may return fewer than ``k`` pairs (even zero when nothing
    admissible was reached).  ``allowed=None`` takes the exact unmasked
    code path.

    ``store`` selects the :class:`~repro.storage.base.VectorStore` to
    traverse against (approximate distances over codes; the two-stage
    search pipeline reranks the returned pool exactly); ``None`` walks
    the exact flat path.

    ``backend`` selects the traversal engine: ``None``/``"numpy"`` is
    this pinned lockstep code; ``"auto"`` and explicit accel backend
    names dispatch whole batches to :mod:`repro.accel` compiled kernels
    (``"auto"`` silently stays here when no backend is warmed or the
    workload has no compiled kernel).

    Visited tracking is a dense ``(m, n)`` bitmap shared with the
    construction engine's idiom — memory is ``O(m * n)`` bits, sized
    for driver-chunked query batches, not unbounded ones.
    """
    if beam_width < 1:
        raise ValueError("beam width must be at least 1")
    m = len(queries)
    starts = np.asarray(starts, dtype=np.intp)
    if len(starts) != m:
        raise ValueError("need exactly one start vertex per query")
    if allowed is not None:
        allowed = np.asarray(allowed, dtype=bool)
        if allowed.shape != (graph.n,):
            raise ValueError("allowed mask must cover every vertex")
    graph.freeze()
    if backend is not None and backend != "numpy":
        from repro import accel

        resolved = accel.resolve_backend(backend)
        if resolved != "numpy":
            try:
                return accel.run_beam(
                    resolved, graph, dataset, starts, queries,
                    beam_width=beam_width, k=k, budget=budget,
                    allowed=allowed, store=store,
                )
            except accel.UnsupportedWorkloadError:
                if backend != "auto":
                    raise
    offsets, targets = graph.csr()
    Q = _as_query_array(queries)
    view = _distance_view(dataset, Q, store)

    states = [
        _BeamState(
            int(starts[i]),
            view.scalar(i, int(starts[i])),
            admissible=allowed is None or bool(allowed[starts[i]]),
        )
        for i in range(m)
    ]

    # Batch-shared visited bitmap, generationless: row i is query i's
    # visited set (the construction engine's idiom, satellite-converged
    # here from the former per-query Python set — bit-identical, the
    # gather below preserves CSR slice order).
    visited = np.zeros((m, graph.n), dtype=bool)
    if m:
        visited[np.arange(m), starts] = True

    live = list(range(m))
    while live:
        round_ids: list[int] = []
        round_nbrs: list[np.ndarray] = []
        next_live: list[int] = []
        for i in live:
            st = states[i]
            if not st.candidates:
                st.done = True
                continue
            d, u = heapq.heappop(st.candidates)
            if len(st.pool) >= beam_width and d > -st.pool[0][0]:
                st.done = True
                continue
            row = targets[offsets[u] : offsets[u + 1]]
            nbrs = row[~visited[i, row]]
            if not len(nbrs):
                next_live.append(i)  # pop the next candidate next round
                continue
            if budget is not None and st.evals >= budget:
                st.done = True
                continue
            if budget is not None and st.evals + len(nbrs) > budget:
                nbrs = nbrs[: budget - st.evals]
            round_ids.append(i)
            round_nbrs.append(nbrs)
            next_live.append(i)

        if round_ids:
            lens = np.array([len(a) for a in round_nbrs], dtype=np.int64)
            dists = view.segmented(
                np.array(round_ids, dtype=np.intp),
                np.concatenate(round_nbrs),
                lens,
            )
            pos = 0
            for i, arr in zip(round_ids, round_nbrs):
                st = states[i]
                seg = dists[pos : pos + len(arr)]
                pos += len(arr)
                st.evals += len(arr)
                visited[i, arr] = True
                for v, dv in zip(arr, seg):
                    if len(st.pool) < beam_width or dv < -st.pool[0][0]:
                        heapq.heappush(st.candidates, (float(dv), int(v)))
                        if allowed is None or allowed[v]:
                            heapq.heappush(st.pool, (-float(dv), int(v)))
                            if len(st.pool) > beam_width:
                                heapq.heappop(st.pool)
        live = [i for i in next_live if not states[i].done]

    out: list[tuple[list[tuple[int, float]], int]] = []
    for st in states:
        best = sorted((-d, v) for d, v in st.pool)[: max(k, 1)]
        out.append(([(v, d) for d, v in best], st.evals))
    return out


def construction_beam_batch(
    graph: ProximityGraph,
    dataset: Dataset,
    starts: Sequence[int],
    queries: Any,
    beam_width: int,
    expand_per_round: int = 4,
    store: Any = None,
    backend: str | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Fully vectorized lockstep beam search for *construction* waves.

    :func:`beam_search_batch` preserves the scalar routine's per-query
    heap discipline bit-for-bit, which leaves Python work proportional
    to the number of node expansions.  Candidate location during a
    batched build has no such contract — its quality is gated by recall
    — so this variant keeps every query's beam pool in shared ``(w,
    beam_width)`` arrays and advances all queries with pure array ops:
    per round, every live query expands its ``expand_per_round``
    closest unexpanded pool members, all discovered neighbors are
    deduplicated (within the round by one key sort, across rounds by a
    dense ``(w, n)`` visited bitmap), evaluated in **one** segmented
    :meth:`~repro.metrics.base.Dataset.distances_to_queries` call, and
    merged back into the pools with one stable row-wise argsort.
    Python cost is per *round*, and multi-expansion divides the round
    count by ``expand_per_round`` at the price of a few speculative
    expansions near termination.

    A query finishes when its pool holds no unexpanded member closer
    than its current ``beam_width``-th best — the classic beam
    termination.  Expanding only pool members (rather than every
    evicted heap candidate) matches the published HNSW ``SEARCH-LAYER``
    semantics up to distance ties.

    Memory is ``O(w * n)`` bits for the visited bitmap — sized for
    construction waves (``w = batch_size``), not for unbounded query
    batches.  Returns one ``(ids, distances)`` array pair per query,
    ascending by distance.

    ``backend=None`` / ``"numpy"`` always run this pinned lockstep
    code; ``"auto"`` and explicit accel backend names dispatch the
    whole wave to the compiled construction kernel (``"auto"``
    silently stays here when no backend is warmed or the workload has
    no compiled kernel).
    """
    if beam_width < 1:
        raise ValueError("beam width must be at least 1")
    if expand_per_round < 1:
        raise ValueError("expand_per_round must be at least 1")
    w = len(queries)
    starts = np.asarray(starts, dtype=np.intp)
    if len(starts) != w:
        raise ValueError("need exactly one start vertex per query")
    if w == 0:
        return []
    if backend is not None and backend != "numpy":
        from repro import accel

        resolved = accel.resolve_backend(backend)
        if resolved != "numpy":
            try:
                return accel.run_construction(
                    resolved, graph, dataset, starts, queries,
                    beam_width=beam_width, expand_per_round=expand_per_round,
                    store=store,
                )
            except accel.UnsupportedWorkloadError:
                if backend != "auto":
                    raise
    offsets, targets = graph.csr()
    n = graph.n
    ef = int(beam_width)
    Q = _as_query_array(queries)
    view = _distance_view(dataset, Q, store)

    pool_ids = np.full((w, ef), -1, dtype=np.int64)
    pool_d = np.full((w, ef), np.inf, dtype=np.float64)
    pool_exp = np.zeros((w, ef), dtype=bool)  # slot already expanded?
    pool_ids[:, 0] = starts
    pool_d[:, 0] = view.segmented(
        np.arange(w, dtype=np.intp), starts, np.ones(w, dtype=np.int64)
    )
    visited = np.zeros((w, n), dtype=bool)
    visited[np.arange(w), starts] = True

    live = np.arange(w, dtype=np.intp)
    while len(live):
        ids_l, d_l, exp_l = pool_ids[live], pool_d[live], pool_exp[live]
        # Frontier: each query's expand_per_round closest unexpanded pool
        # members no worse than its current ef-th best; queries with no
        # such member are done.
        elig = ~exp_l & (ids_l >= 0) & (d_l <= d_l[:, ef - 1 :])
        sel = elig & (np.cumsum(elig, axis=1) <= expand_per_round)
        alive = sel.any(axis=1)
        if not alive.any():
            break
        live, sel = live[alive], sel[alive]
        rowpos, colpos = np.nonzero(sel)  # row-major: grouped by query
        pool_exp[live[rowpos], colpos] = True
        f_nodes = pool_ids[live[rowpos], colpos]

        # Gather every frontier node's neighbor slice, flat; qrow maps
        # each flat candidate back to its (global) query row.
        deg = (offsets[f_nodes + 1] - offsets[f_nodes]).astype(np.int64)
        total = int(deg.sum())
        if total == 0:
            continue
        seg_stop = np.cumsum(deg)
        seg_start = seg_stop - deg
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_start, deg)
            + np.repeat(offsets[f_nodes], deg)
        )
        cand = targets[flat]
        qrow = live[rowpos].repeat(deg)

        # Dedup within the round (two frontier nodes of one query may
        # share a neighbor) and against the visited bitmap.  The key
        # sort also groups candidates by query, which the segmented
        # distance call below requires.
        key = qrow.astype(np.int64) * n + cand
        order = np.argsort(key, kind="stable")
        key = key[order]
        first = np.ones(len(key), dtype=bool)
        first[1:] = key[1:] != key[:-1]
        qrow, cand = qrow[order][first], cand[order][first]
        fresh = ~visited[qrow, cand]
        qrow, cand = qrow[fresh], cand[fresh]
        if not len(cand):
            continue
        visited[qrow, cand] = True

        # One segmented distance call for the whole round.
        sub, lens = np.unique(qrow, return_counts=True)
        d_new = view.segmented(sub, cand, lens)

        # Merge new candidates into the pools: pad to (|sub|, max_new),
        # then one stable row-sort keeps each query's ef closest.
        max_new = int(lens.max())
        new_start = np.cumsum(lens) - lens
        col = np.arange(len(cand), dtype=np.int64) - np.repeat(new_start, lens)
        row = np.repeat(np.arange(len(sub), dtype=np.int64), lens)
        pad_ids = np.full((len(sub), max_new), -1, dtype=np.int64)
        pad_d = np.full((len(sub), max_new), np.inf, dtype=np.float64)
        pad_ids[row, col] = cand
        pad_d[row, col] = d_new

        all_ids = np.concatenate([pool_ids[sub], pad_ids], axis=1)
        all_d = np.concatenate([pool_d[sub], pad_d], axis=1)
        all_exp = np.concatenate(
            [pool_exp[sub], np.zeros((len(sub), max_new), dtype=bool)], axis=1
        )
        # Partition down to the ef closest first, then order just those —
        # cheaper than a full stable row sort of the padded merge width.
        if all_d.shape[1] > ef:
            part = np.argpartition(all_d, ef - 1, axis=1)[:, :ef]
            rowm = np.arange(len(sub))[:, None]
            sub_d = all_d[rowm, part]
            keep = np.take_along_axis(part, np.argsort(sub_d, axis=1), axis=1)
        else:
            keep = np.argsort(all_d, axis=1, kind="stable")
            rowm = np.arange(len(sub))[:, None]
        pool_ids[sub] = all_ids[rowm, keep]
        pool_d[sub] = all_d[rowm, keep]
        pool_exp[sub] = all_exp[rowm, keep]

    out: list[tuple[np.ndarray, np.ndarray]] = []
    for i in range(w):
        valid = pool_ids[i] >= 0
        out.append((pool_ids[i][valid], pool_d[i][valid]))
    return out


# ----------------------------------------------------------------------
# Batched construction: the wave driver for insertion-based builders
# ----------------------------------------------------------------------


@runtime_checkable
class WaveInserter(Protocol):
    """What a builder must expose to be driven by :func:`bulk_insert`.

    The contract mirrors the two halves of every insertion-based
    construction (NSW, HNSW, Vamana, ...):

    * :meth:`locate_wave` finds each wave member's candidate pool by
      searching the graph as it stands **before the wave** (the frozen
      prefix).  Implementations vectorize this with
      :func:`construction_beam_batch` over a :func:`snapshot_graph` of
      the current adjacency, which is where the batched build speedup
      comes from.  The pool type is builder-specific and opaque to the
      driver.
    * :meth:`commit` performs one member's neighbor selection and
      linking from its located pool.  Commits run sequentially in wave
      order, so backlink pruning within a wave behaves exactly as in the
      sequential build; only candidate *location* is computed against
      the stale prefix.
    * :meth:`insert_one` is the builder's original sequential insertion.
      The driver uses it for singleton waves, which makes
      ``batch_size=1`` edge-identical to the sequential build by
      construction.
    """

    def insert_one(self, pid: int) -> None:
        """Insert ``pid`` exactly as the sequential builder would."""
        ...

    def locate_wave(self, pids: Sequence[int]) -> list[Any]:
        """Return one candidate pool per wave member, located against the
        frozen prefix graph (the state before any member of this wave)."""
        ...

    def commit(self, pid: int, pool: Any) -> None:
        """Select neighbors for ``pid`` from its pool and link it in."""
        ...


def bulk_insert(
    inserter: WaveInserter,
    order: Iterable[int],
    batch_size: int,
    ramp: bool = True,
    backend: str | None = None,
) -> int:
    """Insert ``order`` into ``inserter`` in waves of up to ``batch_size``.

    Each wave is located in one vectorized pass against the frozen
    prefix graph (every point inserted in previous waves), then
    committed member-by-member in order.  ``batch_size=1`` degenerates
    to the sequential schedule — each singleton wave goes through
    :meth:`WaveInserter.insert_one`, so the resulting edge set is
    bit-identical to the plain sequential build.

    Larger waves trade a bounded amount of candidate staleness (wave
    members cannot appear in each other's candidate pools) for
    vectorized distance evaluation.  With ``ramp=True`` (the default)
    wave sizes additionally never exceed the current prefix size —
    waves grow 1, 1, 2, 4, ... until they reach ``batch_size`` — so no
    point is ever located against a prefix smaller than its own wave.
    Without the ramp, early waves of a from-scratch build search a
    near-empty graph and link poorly (measurably worse recall);
    builders inserting into an already-complete graph (e.g. Vamana's
    second pass) can pass ``ramp=False`` to run full-width immediately.
    Returns the number of waves executed.

    ``backend`` (when not ``None``) is pinned onto the inserter as its
    ``backend`` attribute before any wave runs, so builders that thread
    ``self.backend`` through their ``locate_wave`` / ``commit`` bodies
    pick up the accel seam without a protocol change.

    Two optional hooks extend the protocol for the compiled commit
    path: an inserter exposing ``commit_wave(pids, pools)`` receives
    each multi-member wave whole (instead of per-member ``commit``
    calls) so it can commit the wave in one kernel dispatch, and one
    exposing ``finish_waves()`` is called once after the last wave to
    flush any mirrored adjacency state.  Singleton waves still go
    through ``insert_one``, which keeps ``batch_size=1`` bit-identical
    to the sequential build by construction.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if backend is not None:
        inserter.backend = backend  # type: ignore[attr-defined]
    commit_wave = getattr(inserter, "commit_wave", None)
    order = [int(p) for p in order]
    waves = 0
    pos = 0
    while pos < len(order):
        take = min(batch_size, max(1, pos)) if ramp else batch_size
        wave = order[pos : pos + take]
        pos += len(wave)
        waves += 1
        if len(wave) == 1:
            inserter.insert_one(wave[0])
            continue
        pools = inserter.locate_wave(wave)
        if len(pools) != len(wave):
            raise ValueError(
                f"locate_wave returned {len(pools)} pools for a wave of {len(wave)}"
            )
        if commit_wave is not None:
            commit_wave(wave, pools)
        else:
            for pid, pool in zip(wave, pools):
                inserter.commit(pid, pool)
    finish = getattr(inserter, "finish_waves", None)
    if finish is not None:
        finish()
    return waves


# ----------------------------------------------------------------------
# Shared wave-repair plumbing: locate / prune / link
#
# Every insertion-based construction and every incremental repair does
# the same two things per point: *locate* a candidate pool by beam
# search over the graph as it stands, and *commit* the point by
# RobustPrune + bidirectional linking with overflow re-pruning.  These
# helpers are that plumbing, shared by the Vamana builder and the index
# facade's ``add()`` repair path (via :class:`RepairInserter`).
# ----------------------------------------------------------------------


def robust_prune(
    dataset: Dataset,
    pid: int,
    v_arr: np.ndarray,
    d_arr: np.ndarray,
    alpha: float,
    max_degree: int,
    backend: str | None = None,
) -> list[int]:
    """The RobustPrune of DiskANN [19], array-native and builder-agnostic.

    Keep the closest candidate, discard any candidate ``v`` with
    ``alpha * D(kept, v) <= D(pid, v)``, repeat until ``max_degree``
    neighbors are kept.  Candidates need not be sorted or unique;
    duplicates keep their smallest distance.  All kept-to-candidate
    distances come from one cross-distance matrix (a single BLAS call
    for coordinate metrics), so the greedy scan below only does cheap
    row masking.  ``backend`` follows the engine-wide seam: ``None`` /
    ``"numpy"`` run this pinned code, ``"auto"`` / explicit names
    dispatch to the compiled prune kernel when the workload (raw
    float64 coordinates under a coordinate metric) supports it.
    """
    if backend is not None and backend != "numpy":
        from repro import accel

        resolved = accel.resolve_backend(backend)
        if resolved != "numpy":
            try:
                return accel.run_robust_prune(
                    resolved, dataset, pid, v_arr, d_arr, alpha, max_degree
                )
            except accel.UnsupportedWorkloadError:
                if backend != "auto":
                    raise
    order = np.lexsort((v_arr, d_arr))
    v_s, d_s = v_arr[order], d_arr[order]
    mask = v_s != pid
    v_s, d_s = v_s[mask], d_s[mask]
    if not len(v_s):
        return []
    # First occurrence per id in (d, v) order = its smallest distance.
    _, first = np.unique(v_s, return_index=True)
    if len(first) != len(v_s):
        take = np.sort(first)
        v_s, d_s = v_s[take], d_s[take]
    mat = dataset.metric.pairwise(dataset.points[v_s])
    alive = np.ones(len(v_s), dtype=bool)
    kept: list[int] = []
    pos, P = 0, len(v_s)
    while len(kept) < max_degree:
        while pos < P and not alive[pos]:
            pos += 1
        if pos >= P:
            break
        kept.append(int(v_s[pos]))
        if len(kept) >= max_degree:
            break
        alive &= alpha * mat[pos] > d_s
        pos += 1
    return kept


def locate_wave_pools(
    dataset: Dataset,
    adj: Sequence[Any],
    entry: int,
    pids: Sequence[int],
    beam_width: int,
    backend: str | None = None,
    mirror: "CommitMirror | None" = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Locate one candidate pool per wave member against the frozen
    prefix: snapshot the mutable adjacency once, then run one lockstep
    :func:`construction_beam_batch` from ``entry`` for the whole wave.
    This is the ``locate_wave`` body every RobustPrune-style inserter
    shares.  Returns ``(ids, distances)`` pools ascending by distance.
    When an **active** ``mirror`` holds the adjacency (compiled commit
    path), the CSR prefix is frozen straight off its padded rows —
    row-for-row the same graph the list snapshot would give.
    """
    idx = np.asarray(pids, dtype=np.intp)
    if mirror is not None and mirror.active:
        prefix = mirror.snapshot()
    else:
        prefix = snapshot_graph(len(adj), adj, sort=False)
    return construction_beam_batch(
        prefix,
        dataset,
        [int(entry)] * len(idx),
        dataset.points[idx],
        beam_width=beam_width,
        backend=backend,
    )


def prune_and_link(
    dataset: Dataset,
    adj: list[list[int]],
    pid: int,
    v_arr: np.ndarray,
    d_arr: np.ndarray,
    alpha: float,
    max_degree: int,
    backend: str | None = None,
) -> None:
    """Commit one point from its located pool: RobustPrune its out-edges,
    then add backlinks with overflow re-pruning — the ``commit`` body
    every RobustPrune-style inserter shares.
    """
    adj[pid] = robust_prune(dataset, pid, v_arr, d_arr, alpha, max_degree, backend=backend)
    for v in adj[pid]:
        nbrs = adj[v]
        if pid not in nbrs:
            nbrs.append(pid)
            if len(nbrs) > max_degree:
                arr = np.asarray(nbrs, dtype=np.intp)
                dists = dataset.distances_from_index(v, arr)
                adj[v] = robust_prune(
                    dataset, v, arr, dists, alpha, max_degree, backend=backend
                )


class CommitMirror:
    """Padded int64 mirror of a list-of-lists adjacency for wave commits.

    The compiled commit path (:func:`commit_wave_pools` dispatching to
    ``accel.run_commit_wave``) mutates adjacency rows hundreds of
    thousands of times per build; doing that through Python lists costs
    more than the pruning itself.  Instead the kernel operates on a
    ``(n, cap)`` int64 row store with a ``deg`` length vector — this
    mirror — which stays **authoritative between waves**: wave location
    snapshots CSR straight off it (:meth:`snapshot`) and only
    :meth:`flush` writes the rows back into the list adjacency (at the
    end of a bulk phase, or before any code path that mutates the lists
    directly).  While inactive (``arr is None``) the mirror is inert
    and the list adjacency is authoritative — the numpy path never
    touches it.  ``scratch`` persists the dispatch layer's kernel
    buffers across waves.
    """

    def __init__(self) -> None:
        self.arr: np.ndarray | None = None
        self.deg: np.ndarray | None = None
        self.cap = 0
        self.scratch: dict[str, Any] = {}

    @property
    def active(self) -> bool:
        return self.arr is not None

    def pack(self, adj: Sequence[Sequence[int]], max_degree: int) -> None:
        """Load the list adjacency into the padded store.  ``cap`` leaves
        one slot of headroom over the longest row (and ``max_degree``)
        for the transient pre-prune backlink append."""
        n = len(adj)
        longest = max((len(row) for row in adj), default=0)
        self.cap = max(int(max_degree), longest) + 1
        self.arr = np.zeros((n, self.cap), dtype=np.int64)
        self.deg = np.zeros(n, dtype=np.int64)
        for i, row in enumerate(adj):
            m = len(row)
            if m:
                self.arr[i, :m] = row
                self.deg[i] = m

    def snapshot(self) -> ProximityGraph:
        """CSR freeze of the padded rows — row-for-row identical to
        ``snapshot_graph(n, adj, sort=False)`` over the flushed lists."""
        n = len(self.deg)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self.deg, out=offsets[1:])
        mask = np.arange(self.cap, dtype=np.int64)[None, :] < self.deg[:, None]
        flat = self.arr[mask].astype(np.intp, copy=False)
        return ProximityGraph.from_csr(n, offsets, flat, validate=False)

    def flush(self, adj: list[list[int]]) -> None:
        """Write every row back into the list adjacency and deactivate.

        Deactivating (rather than staying synced) makes staleness
        impossible: any later direct list mutation happens while the
        mirror is inert, and the next wave commit re-packs."""
        if self.arr is None:
            return
        arr, deg = self.arr, self.deg
        self.arr = None
        self.deg = None
        for i in range(len(adj)):
            d = int(deg[i])
            adj[i] = arr[i, :d].tolist() if d else []


def commit_wave_pools(
    dataset: Dataset,
    adj: list[list[int]],
    pids: Sequence[int],
    pools: Sequence[tuple[np.ndarray, np.ndarray]],
    alpha: float,
    max_degree: int,
    backend: str | None = None,
    mirror: CommitMirror | None = None,
    include_own: bool = False,
) -> None:
    """Commit a whole wave of located pools in order — the
    ``commit_wave`` body every RobustPrune-style inserter shares.

    Per member this is exactly :func:`prune_and_link` (prepended, when
    ``include_own`` is set, by Vamana's own-edge concatenation at
    recomputed distances).  With a compiled ``backend`` and a
    ``mirror``, the entire wave — every RobustPrune, backlink append,
    and overflow re-prune — runs in **one** kernel call against the
    mirror's padded rows, which is where the compiled build path's
    throughput comes from: the per-commit Python and FFI overhead of
    dispatching ~6 prunes per insertion otherwise dominates the build.
    ``backend=None``/``"numpy"`` run the pinned per-member loop.
    """
    if backend is not None and backend != "numpy":
        from repro import accel

        resolved = accel.resolve_backend(backend)
        if resolved != "numpy":
            # A caller without a persistent mirror still gets the wave
            # kernel through a transient one, flushed before returning.
            transient = mirror is None
            m = CommitMirror() if transient else mirror
            try:
                accel.run_commit_wave(
                    resolved, dataset, adj, pids, pools, alpha, max_degree,
                    include_own, m,
                )
            except accel.UnsupportedWorkloadError:
                if backend != "auto":
                    raise
            else:
                if transient:
                    m.flush(adj)
                return
    if mirror is not None:
        mirror.flush(adj)
    for pid, pool in zip(pids, pools):
        pid = int(pid)
        v_arr = np.asarray(pool[0], dtype=np.intp)
        d_arr = np.asarray(pool[1], dtype=np.float64)
        if include_own and adj[pid]:
            own = np.asarray(adj[pid], dtype=np.intp)
            own_d = dataset.distances_from_index(pid, own)
            v_arr = np.concatenate([v_arr, own])
            d_arr = np.concatenate([d_arr, own_d])
        prune_and_link(dataset, adj, pid, v_arr, d_arr, alpha, max_degree)


class RepairInserter:
    """:class:`WaveInserter` linking new points into a finished graph.

    Vamana-style incremental repair: each new point's candidate pool is
    located by beam search over the current graph (vectorized per wave
    by :func:`bulk_insert` + :func:`locate_wave_pools`), its out-edges
    chosen by RobustPrune, and backlinks added with overflow re-pruning
    (:func:`prune_and_link`).  Works for any builder's graph — it only
    needs the dataset's distances — which is what lets every index grow,
    at the price of the paper's worst-case guarantee (the facade clears
    ``guaranteed`` on this path; ``gnet`` indexes keep it via the
    dynamic-net path instead).
    """

    def __init__(
        self,
        dataset: Dataset,
        adj: list[list[int]],
        entry: int,
        max_degree: int,
        beam_width: int,
        alpha: float = 1.2,
        backend: str | None = None,
    ):
        self.dataset = dataset
        self._adj = adj
        self.entry = int(entry)
        self.max_degree = int(max_degree)
        self.beam_width = int(beam_width)
        self.alpha = float(alpha)
        self.backend = backend
        self._mirror = CommitMirror()

    # -- WaveInserter protocol -----------------------------------------

    def insert_one(self, pid: int) -> None:
        self.commit(pid, self.locate_wave([pid])[0])

    def locate_wave(self, pids: Sequence[int]) -> list[tuple[np.ndarray, np.ndarray]]:
        return locate_wave_pools(
            self.dataset, self._adj, self.entry, pids, self.beam_width,
            backend=self.backend, mirror=self._mirror,
        )

    def commit(self, pid: int, pool: tuple[np.ndarray, np.ndarray]) -> None:
        # Direct list mutation below — the mirror (if a compiled wave
        # left it active) must be written back first.
        self._mirror.flush(self._adj)
        prune_and_link(
            self.dataset,
            self._adj,
            int(pid),
            np.asarray(pool[0], dtype=np.intp),
            np.asarray(pool[1], dtype=np.float64),
            self.alpha,
            self.max_degree,
            backend=self.backend,
        )

    def commit_wave(
        self,
        pids: Sequence[int],
        pools: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        commit_wave_pools(
            self.dataset, self._adj, pids, pools, self.alpha,
            self.max_degree, backend=self.backend, mirror=self._mirror,
        )

    def finish_waves(self) -> None:
        self._mirror.flush(self._adj)


def snapshot_graph(n: int, rows: Sequence[Any], sort: bool = True) -> ProximityGraph:
    """Freeze a builder's in-progress adjacency into a CSR graph, fast.

    ``rows`` holds one iterable of neighbor ids per vertex (list, set,
    or array — whatever the builder mutates).  Unlike the
    :class:`ProximityGraph` constructor this skips per-row cleaning
    (builders already guarantee no self-loops or duplicates), so a
    snapshot costs ``O(E)`` numpy work rather than ``O(n)``
    Python-level array constructions.  With ``sort=True`` all rows are
    ordered by one ``lexsort``, restoring the container's canonical
    sorted-row invariant (needed for ``has_edge`` and greedy's
    smallest-id tie-break); construction waves pass ``sort=False``
    since a beam's pool is order-insensitive.  The result is a frozen
    graph suitable for the lockstep engines.
    """
    if len(rows) != n:
        raise ValueError("need exactly one adjacency row per vertex")
    lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    total = int(offsets[-1])
    flat = np.fromiter(chain.from_iterable(rows), dtype=np.intp, count=total)
    if sort and total:
        row_ids = np.repeat(np.arange(n, dtype=np.intp), lens)
        flat = flat[np.lexsort((flat, row_ids))]
    return ProximityGraph.from_csr(n, offsets, flat, validate=False)


# ----------------------------------------------------------------------
# Chunked execution + the shard-search worker entry point
# ----------------------------------------------------------------------


def chunk_spans(total: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``[start, stop)`` spans of ``chunk``.

    The lockstep engines hold per-query state for the whole batch (and
    :func:`construction_beam_batch` a dense ``(w, n)`` visited bitmap),
    so unbounded batches mean unbounded peak memory.  Drivers — the
    sharded fan-out, the worker entry point below — run one engine call
    per span instead, bounding state at ``chunk`` queries while keeping
    every call fully vectorized.
    """
    if chunk < 1:
        raise ValueError("chunk size must be at least 1")
    return [(lo, min(lo + chunk, total)) for lo in range(0, total, chunk)]


# Per-process cache of rehydrated shards — (index, arena attachment)
# pairs keyed by the parent's (sharded-index token, generation, shard)
# tuple.  The pool initializer (:func:`preload_shard_cache`) fills it
# once per worker at pool creation, so search tasks ship only queries —
# never points or CSR arrays.  A mutation in the parent bumps the
# generation and recreates the pool, so stale graphs are never reused;
# cached attachments live exactly as long as their worker process
# (attaching never registers with the resource tracker, and process
# exit unmaps).
_SHARD_CACHE: dict[Any, tuple[Any, Any]] = {}


def reset_shard_worker_cache() -> None:
    """Drop every cached shard, closing any arena attachments."""
    for _index, attachment in _SHARD_CACHE.values():
        if attachment is not None:
            attachment.close()
    _SHARD_CACHE.clear()


def preload_shard_cache(keys: Sequence[Any], payloads: Sequence[dict]) -> None:
    """Process-pool *initializer*: rehydrate every shard once per worker.

    Runs in each worker as it starts (under any start method — the
    arguments are plain picklable values), replacing whatever a prior
    pool generation left behind.  After this, :func:`shard_search_entry`
    tasks carry only a cache key and the queries.
    """
    from repro.core.sharded import rehydrate_shard  # circular-import guard

    reset_shard_worker_cache()
    for key, payload in zip(keys, payloads):
        _SHARD_CACHE[key] = rehydrate_shard(payload)


def shard_search_entry(task: dict) -> dict:
    """Process-pool entry point: one shard's slice of a fan-out search.

    ``task`` is a plain picklable dict (spawn-safe by construction):

    * ``key`` — cache token of a shard preloaded by
      :func:`preload_shard_cache` (the fan-out path), or ``None``,
    * ``payload`` — the shard wire form (CSR arrays, metric spec, arena
      span or inline points; see ``repro.core.sharded.shard_payload``)
      for standalone tasks that skipped the preload,
    * ``queries`` / ``k`` / ``params`` — the search call to run,
    * ``chunk`` — optional query-chunk size for bounded lockstep state.

    Returns the result's raw arrays (``ids``/``distances``/``evals``,
    plus ``hops`` for greedy) — external ids, original distance units —
    for the parent to merge.  Start vertices are drawn for the *whole*
    batch before chunking, so answers are identical for every chunk
    size.
    """
    from repro.core.sharded import rehydrate_shard  # circular-import guard

    key = task.get("key")
    cached = _SHARD_CACHE.get(key) if key is not None else None
    if cached is not None:
        return run_shard_search(
            cached[0], task["queries"], task["k"], task["params"],
            task.get("chunk"),
        )
    if "payload" not in task:
        raise RuntimeError(
            f"shard cache miss for key {key!r} and the task carries no "
            "payload — was the pool created without preload_shard_cache?"
        )
    index, attachment = rehydrate_shard(task["payload"])
    try:
        return run_shard_search(
            index, task["queries"], task["k"], task["params"], task.get("chunk")
        )
    finally:
        if attachment is not None:
            attachment.close()


def run_shard_search(
    index: Any,
    queries: Any,
    k: int,
    params: Any,
    chunk: int | None = None,
) -> dict:
    """Run one shard's ``search`` (optionally chunked) to raw arrays.

    Used by the worker entry point above and by the in-process fan-out,
    so both paths execute literally the same code.
    """
    m = len(queries)
    if params.starts is None and chunk is not None and m > chunk:
        # Draw the whole batch's start vertices up front so chunked and
        # unchunked execution answer identically.
        gen = np.random.default_rng(
            index.seed if params.seed is None else params.seed
        )
        params = dataclasses.replace(
            params, starts=gen.integers(index.n, size=m)
        )
    spans = chunk_spans(m, chunk) if chunk is not None and m else [(0, m)]
    parts = []
    for lo, hi in spans:
        sub = params
        if params.starts is not None:
            sub = dataclasses.replace(
                params, starts=np.asarray(params.starts)[lo:hi]
            )
        parts.append(index.search(queries[lo:hi], k=k, params=sub))
    out = {
        "ids": np.concatenate([p.ids for p in parts], axis=0),
        "distances": np.concatenate([p.distances for p in parts], axis=0),
        "evals": np.concatenate([p.evals for p in parts], axis=0),
    }
    if all(p.hops is not None for p in parts):
        out["hops"] = np.concatenate([p.hops for p in parts], axis=0)
    else:
        out["hops"] = None
    return out
