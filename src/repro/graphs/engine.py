"""Vectorized batch query engine — many searches in lockstep.

The scalar :func:`repro.graphs.greedy.greedy` loop issues one small
distance batch per hop per query; at production query rates the Python
per-hop overhead dominates the arithmetic.  This engine runs a whole
query batch in lockstep instead: per hop it gathers every active query's
neighbor slice straight from the graph's CSR storage, issues **one**
segmented :meth:`~repro.metrics.base.MetricSpace.distances_many` call
for all (query, neighbor) pairs, and advances every active query at
once with segmented reductions.

Semantics are *bit-identical* to the scalar procedures: the same
distance kernels evaluate the same operands in the same per-segment
order, eval budgets are charged per query exactly as the paper's
``query(p_start, q, Q)`` does, and ties still break toward the smallest
vertex id (first index of the per-segment minimum).  ``greedy_batch``
therefore returns the very :class:`GreedyResult` objects the scalar loop
would have produced — the throughput win is pure overhead removal, not
an accounting change.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import GreedyResult
from repro.metrics.base import Dataset

__all__ = ["greedy_batch", "beam_search_batch"]


def _as_query_array(queries: Any) -> np.ndarray:
    """Hold the query batch in one fancy-indexable array.

    Coordinate queries become an ``(m, d)`` float array, id queries a 1-D
    int array; anything heterogeneous falls back to an object array,
    which the default (per-segment) metric path handles.
    """
    if isinstance(queries, np.ndarray):
        return queries
    try:
        return np.asarray(queries)
    except ValueError:  # ragged input
        arr = np.empty(len(queries), dtype=object)
        arr[:] = list(queries)
        return arr


def greedy_batch(
    graph: ProximityGraph,
    dataset: Dataset,
    starts: Sequence[int],
    queries: Any,
    budget: int | None = None,
) -> list[GreedyResult]:
    """Run ``greedy(starts[i], queries[i])`` for all ``i`` in lockstep.

    Returns one :class:`GreedyResult` per query, bit-identical (point,
    distance, hops, distance_evals, self_terminated) to calling the
    scalar :func:`~repro.graphs.greedy.greedy` per query with the same
    ``budget``.
    """
    m = len(queries)
    starts = np.asarray(starts, dtype=np.intp)
    if len(starts) != m:
        raise ValueError("need exactly one start vertex per query")
    if m and (starts.min() < 0 or starts.max() >= graph.n):
        bad = starts[(starts < 0) | (starts >= graph.n)][0]
        raise ValueError(f"start vertex {int(bad)} out of range")
    offsets, targets = graph.csr()
    Q = _as_query_array(queries)

    # The initial distance of each query is the same scalar evaluation
    # the sequential loop performs (one per query, once).
    p_cur = starts.copy()
    d_cur = np.array(
        [dataset.distance_to_query(Q[i], int(starts[i])) for i in range(m)],
        dtype=np.float64,
    )
    evals = np.ones(m, dtype=np.int64)
    hops: list[list[int]] = [[int(s)] for s in starts]
    results: list[GreedyResult | None] = [None] * m
    active = np.arange(m, dtype=np.intp)

    def finalize(idx: np.ndarray, self_terminated: np.ndarray | bool) -> None:
        flags = (
            np.broadcast_to(self_terminated, len(idx))
            if np.isscalar(self_terminated)
            else self_terminated
        )
        for i, flag in zip(idx, flags):
            results[i] = GreedyResult(
                int(p_cur[i]), float(d_cur[i]), hops[i], int(evals[i]), bool(flag)
            )

    while len(active):
        # 1. Budget exhausted before the hop (the paper's query() cutoff).
        if budget is not None:
            exhausted = evals[active] >= budget
            if exhausted.any():
                finalize(active[exhausted], False)
                active = active[~exhausted]
                if not len(active):
                    break

        # 2. Local optimum by emptiness: no out-neighbors to examine.
        p_act = p_cur[active]
        deg = (offsets[p_act + 1] - offsets[p_act]).astype(np.int64)
        empty = deg == 0
        if empty.any():
            finalize(active[empty], True)
            active, p_act, deg = active[~empty], p_act[~empty], deg[~empty]
            if not len(active):
                break

        # 3. Truncate each neighbor slice to the remaining budget.
        if budget is not None:
            take = np.minimum(deg, budget - evals[active])
            truncated = take < deg
        else:
            take = deg
            truncated = np.zeros(len(active), dtype=bool)

        # 4. Gather all neighbor slices flat and evaluate them in ONE
        #    segmented distance call.
        seg_stop = np.cumsum(take)
        seg_start = seg_stop - take
        total = int(seg_stop[-1])
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_start, take)
            + np.repeat(offsets[p_act], take)
        )
        cand = targets[flat]
        dists = dataset.distances_to_queries(Q[active], cand, take)
        evals[active] += take

        # 5. Per-segment first minimum (greedy's smallest-id tie-break).
        mins = np.minimum.reduceat(dists, seg_start)
        is_min = dists == np.repeat(mins, take)
        first = np.minimum.reduceat(
            np.where(is_min, np.arange(total, dtype=np.int64), total), seg_start
        )

        # 6. Queries whose best neighbor does not improve stop here; with
        #    a truncated slice the optimum cannot be certified.
        improved = mins < d_cur[active]
        if (~improved).any():
            finalize(active[~improved], ~truncated[~improved])

        # 7. Advance the rest.
        adv = active[improved]
        new_p = cand[first[improved]]
        p_cur[adv] = new_p
        d_cur[adv] = mins[improved]
        for i, p in zip(adv, new_p):
            hops[i].append(int(p))
        active = adv

    return results  # type: ignore[return-value]


class _BeamState:
    """Per-query beam bookkeeping for the lockstep rounds."""

    __slots__ = ("candidates", "pool", "visited", "evals", "done")

    def __init__(self, start: int, d0: float):
        self.candidates: list[tuple[float, int]] = [(d0, start)]
        self.pool: list[tuple[float, int]] = [(-d0, start)]
        self.visited: set[int] = {start}
        self.evals = 1
        self.done = False


def beam_search_batch(
    graph: ProximityGraph,
    dataset: Dataset,
    starts: Sequence[int],
    queries: Any,
    beam_width: int,
    k: int = 1,
    budget: int | None = None,
) -> list[tuple[list[tuple[int, float]], int]]:
    """Lockstep best-first beam search over a query batch.

    Per round every live query pops its best candidate and contributes
    its unvisited out-neighbors to one shared segmented distance call;
    heap updates then replay the scalar :func:`beam_search` logic per
    query, so results and eval counts match the scalar routine exactly.
    """
    if beam_width < 1:
        raise ValueError("beam width must be at least 1")
    m = len(queries)
    starts = np.asarray(starts, dtype=np.intp)
    if len(starts) != m:
        raise ValueError("need exactly one start vertex per query")
    graph.freeze()
    Q = _as_query_array(queries)

    states = [
        _BeamState(int(starts[i]), dataset.distance_to_query(Q[i], int(starts[i])))
        for i in range(m)
    ]

    live = list(range(m))
    while live:
        round_ids: list[int] = []
        round_nbrs: list[np.ndarray] = []
        next_live: list[int] = []
        for i in live:
            st = states[i]
            if not st.candidates:
                st.done = True
                continue
            d, u = heapq.heappop(st.candidates)
            if len(st.pool) >= beam_width and d > -st.pool[0][0]:
                st.done = True
                continue
            nbrs = [
                int(v) for v in graph.out_neighbors(u) if int(v) not in st.visited
            ]
            if not nbrs:
                next_live.append(i)  # pop the next candidate next round
                continue
            if budget is not None and st.evals >= budget:
                st.done = True
                continue
            if budget is not None and st.evals + len(nbrs) > budget:
                nbrs = nbrs[: budget - st.evals]
            round_ids.append(i)
            round_nbrs.append(np.array(nbrs, dtype=np.intp))
            next_live.append(i)

        if round_ids:
            lens = np.array([len(a) for a in round_nbrs], dtype=np.int64)
            dists = dataset.distances_to_queries(
                Q[np.array(round_ids, dtype=np.intp)],
                np.concatenate(round_nbrs),
                lens,
            )
            pos = 0
            for i, arr in zip(round_ids, round_nbrs):
                st = states[i]
                seg = dists[pos : pos + len(arr)]
                pos += len(arr)
                st.evals += len(arr)
                for v, dv in zip(arr, seg):
                    st.visited.add(int(v))
                    if len(st.pool) < beam_width or dv < -st.pool[0][0]:
                        heapq.heappush(st.candidates, (float(dv), int(v)))
                        heapq.heappush(st.pool, (-float(dv), int(v)))
                        if len(st.pool) > beam_width:
                            heapq.heappop(st.pool)
        live = [i for i in next_live if not states[i].done]

    out: list[tuple[list[tuple[int, float]], int]] = []
    for st in states:
        best = sorted((-d, v) for d, v in st.pool)[: max(k, 1)]
        out.append(([(v, d) for d, v in best], st.evals))
    return out
