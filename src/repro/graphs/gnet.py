"""G_net — the fast-construction proximity graph of Theorem 1.1 (Section 2).

Definition (Section 2.1).  After normalizing ``P`` so its smallest
inter-point distance is 2, fix

* ``h   = ceil(log2 diam(P))``                       (equation (1)),
* ``Y_i = a 2^i-net of P`` for ``i in [0, h]``        (equation (2)),
* ``eta = ceil(log2(1 + 2/eps))``                     (equation (3)),
* ``phi = 1 + 2^(eta+1)``                             (equation (4)),

and give every point ``p`` an out-edge to **every** ``y in Y_i`` with
``D(p, y) <= phi * 2^i``, for every level ``i``.

Properties proved in the paper and checked by our tests:

* G_net is (1+eps)-navigable, hence a (1+eps)-PG (Lemma 2.2 + Fact 2.1);
* every out-degree is at least 1 (Proposition 2.1);
* out-degrees are ``O(phi^lambda * log Delta)`` (via Fact 2.3), giving
  ``O((1/eps)^lambda * n log Delta)`` edges;
* greedy reaches a (1+eps)-ANN within ``h`` hops (the log-drop property,
  Lemma 2.2(2)), giving ``O((1/eps)^lambda * log^2 Delta)`` query time.

Three interchangeable build strategies produce the identical edge set:

* ``"vectorized"`` — per level, batched distance rows against ``Y_i``
  (the correctness reference; works for every metric);
* ``"paper"`` — the Section 2.4 loop verbatim: a dynamic ANN structure
  per level, repeated 2-ANN extraction with deletions until the paper's
  ``2 * phi * 2^i`` stopping rule fires, then re-insertion;
* ``"grid"`` — per level, hash-grid range queries (coordinate metrics
  only; the output-sensitive fast path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.anns.base import DynamicANN
from repro.anns.cover_tree import CoverTree
from repro.anns.grid import GridANN
from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset
from repro.nets.hierarchy import NetHierarchy

__all__ = ["GNetParameters", "GNetBuildResult", "gnet_parameters", "build_gnet"]


@dataclass(frozen=True)
class GNetParameters:
    """The derived constants of Section 2.1."""

    epsilon: float
    height: int  # h
    eta: int
    phi: float

    def level_radius(self, i: int) -> float:
        """The edge threshold ``phi * 2^i`` at level ``i``."""
        return self.phi * float(2**i)

    def per_level_degree_bound(self, doubling_dimension: float) -> float:
        """Fact 2.3 bound on out-edges per level: the level-``i``
        out-neighborhood has aspect ratio at most ``2 * phi``, hence at
        most ``(8 * 2 * phi)^lambda`` points."""
        return (16.0 * self.phi) ** doubling_dimension

    def out_degree_bound(self, doubling_dimension: float) -> float:
        """Explicit out-degree bound: per-level bound times ``h + 1``."""
        return (self.height + 1) * self.per_level_degree_bound(doubling_dimension)

    def hop_bound(self) -> int:
        """Lemma 2.2's log-drop gives a (1+eps)-ANN within ``h`` non-ANN
        hops; allow one more for the landing vertex."""
        return self.height + 1

    def query_budget(self, doubling_dimension: float) -> int:
        """A distance-evaluation budget sufficient for the Section 2.3
        argument: (hop bound) * (out-degree bound) + 1 for the start."""
        return int(self.hop_bound() * self.out_degree_bound(doubling_dimension)) + 1


def gnet_parameters(epsilon: float, diameter: float) -> GNetParameters:
    """Compute ``(h, eta, phi)`` from ``eps`` and (an upper bound on) the
    diameter of the normalized input."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    if diameter < 2:
        raise ValueError("normalized diameter must be at least 2")
    height = max(1, math.ceil(math.log2(diameter)))
    eta = math.ceil(math.log2(1.0 + 2.0 / epsilon))
    phi = 1.0 + float(2 ** (eta + 1))
    return GNetParameters(epsilon=epsilon, height=height, eta=eta, phi=phi)


@dataclass
class GNetBuildResult:
    """Output of :func:`build_gnet`: the graph plus build artifacts."""

    graph: ProximityGraph
    params: GNetParameters
    hierarchy: NetHierarchy
    level_sizes: list[int] = field(default_factory=list)
    level_edge_counts: list[int] = field(default_factory=list)


def build_gnet(
    dataset: Dataset,
    epsilon: float,
    method: str = "auto",
    hierarchy: NetHierarchy | None = None,
    diameter: float | None = None,
    ann_factory: Callable[[Dataset, np.ndarray], DynamicANN] | None = None,
) -> GNetBuildResult:
    """Build G_net for a dataset normalized to minimum inter-point
    distance 2 (see :func:`repro.metrics.scaling.normalize_min_distance`).

    Parameters
    ----------
    method:
        ``"vectorized"``, ``"paper"``, ``"grid"``, or ``"auto"`` (grid for
        2-D coordinate arrays, vectorized otherwise).
    diameter:
        Upper bound on ``diam(P)`` within a factor 2 (the Section 2.4
        remark's ``d_max_hat``).  Defaults to twice the eccentricity of
        the hierarchy's start point, which satisfies that contract.
    ann_factory:
        For ``method="paper"``: builds the dynamic ANN structure over a
        net level; defaults to :class:`~repro.anns.cover_tree.CoverTree`.
    """
    if hierarchy is None:
        hierarchy = NetHierarchy(dataset, height=None)
    if diameter is None:
        diameter = 2.0 * hierarchy.max_insertion_distance
    params = gnet_parameters(epsilon, diameter)
    if params.height > hierarchy.height:
        hierarchy = NetHierarchy(dataset, height=params.height)

    if method == "auto":
        points = np.asarray(dataset.points)
        method = (
            "grid"
            if points.ndim == 2 and np.issubdtype(points.dtype, np.floating)
            else "vectorized"
        )

    out_sets: list[set[int]] = [set() for _ in range(dataset.n)]
    level_sizes: list[int] = []
    level_edge_counts: list[int] = []
    for i in range(params.height + 1):
        level_ids = hierarchy.level(i)
        level_sizes.append(len(level_ids))
        radius = params.level_radius(i)
        if method == "vectorized":
            added = _level_edges_vectorized(dataset, level_ids, radius, out_sets)
        elif method == "grid":
            added = _level_edges_grid(dataset, level_ids, radius, out_sets)
        elif method == "paper":
            factory = ann_factory or (
                lambda ds, ids: CoverTree(ds, point_ids=ids)
            )
            added = _level_edges_paper(dataset, level_ids, radius, out_sets, factory)
        else:
            raise ValueError(f"unknown build method {method!r}")
        level_edge_counts.append(added)

    graph = ProximityGraph.from_sets(dataset.n, out_sets)
    return GNetBuildResult(
        graph=graph,
        params=params,
        hierarchy=hierarchy,
        level_sizes=level_sizes,
        level_edge_counts=level_edge_counts,
    )


def _level_edges_vectorized(
    dataset: Dataset,
    level_ids: np.ndarray,
    radius: float,
    out_sets: list[set[int]],
) -> int:
    """Reference path: one batched distance row per point against Y_i."""
    added = 0
    for p in range(dataset.n):
        dists = dataset.distances_from_index(p, level_ids)
        close = level_ids[dists <= radius]
        for y in close:
            y = int(y)
            if y != p and y not in out_sets[p]:
                out_sets[p].add(y)
                added += 1
    return added


def _level_edges_grid(
    dataset: Dataset,
    level_ids: np.ndarray,
    radius: float,
    out_sets: list[set[int]],
) -> int:
    """Fast path for coordinate data: hash-grid range queries.

    The grid cell width equals the query radius, so a range query probes
    at most ``3^d`` cells; by the net's separation each cell holds
    ``O(phi^d)`` points (Fact 2.3), keeping the per-query work
    output-sensitive.
    """
    grid = GridANN(dataset, cell_size=radius, point_ids=level_ids)
    added = 0
    for p in range(dataset.n):
        for y, _dist in grid.range_search(dataset.points[p], radius):
            if y != p and y not in out_sets[p]:
                out_sets[p].add(y)
                added += 1
    return added


def _level_edges_paper(
    dataset: Dataset,
    level_ids: np.ndarray,
    radius: float,
    out_sets: list[set[int]],
    ann_factory: Callable[[Dataset, np.ndarray], DynamicANN],
) -> int:
    """The Section 2.4 retrieval loop, verbatim.

    ``radius`` is ``phi * 2^i``.  For each ``p``: repeatedly take a 2-ANN
    ``y`` of ``p`` from ``T``, record the edge if ``D(p, y) <= radius``,
    delete ``y``, and stop once ``D(p, y) > 2 * radius`` for the first
    time; finally re-insert everything deleted.  Correctness of the stop
    rule is the paper's argument: were some ``y'`` with
    ``D(p, y') <= radius`` still stored, ``y_last`` could not have been a
    2-ANN of ``p`` because ``2 * D(p, y') <= 2 * radius < D(p, y_last)``.
    """
    structure = ann_factory(dataset, level_ids)
    added = 0
    for p in range(dataset.n):
        deleted: list[int] = []
        while len(structure) > 0:
            found = structure.nearest(dataset.points[p])
            if found is None:
                break
            y, dist = found
            structure.delete(y)
            deleted.append(y)
            if dist > 2.0 * radius:
                break
            if dist <= radius and y != p and y not in out_sets[p]:
                out_sets[p].add(y)
                added += 1
        structure.insert_many(deleted)
    return added
