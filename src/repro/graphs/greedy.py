"""The greedy routing procedure of Section 1.1 — verbatim.

``greedy(p_start, q)`` repeatedly hops to the out-neighbor closest to the
query, stopping when no out-neighbor improves.  A graph is a (1+eps)-PG
exactly when this procedure, from *any* start vertex, returns a
(1+eps)-ANN (Definition in Section 1.1; equivalently navigability, Fact
2.1).  ``query(p_start, q, Q)`` is the budgeted variant: run greedy until
self-termination or ``Q`` distance computations, then return the last hop
vertex.

Accounting matches the paper: every distance computation — the initial
``D(p_start, q)`` and one per out-neighbor examined at each hop — counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = ["GreedyResult", "greedy", "query", "beam_search"]


@dataclass
class GreedyResult:
    """Outcome of one greedy run.

    Attributes
    ----------
    point:
        The returned vertex (a data point id).
    distance:
        ``D(point, q)``.
    hops:
        The full hop-vertex sequence (the ``sigma`` of Section 5.2),
        including the start vertex.
    distance_evals:
        Number of distance computations performed — the paper's query
        time measure.
    self_terminated:
        ``True`` when greedy stopped on its own (Line 4 of the
        pseudocode); ``False`` when the budget cut it off.
    """

    point: int
    distance: float
    hops: list[int] = field(default_factory=list)
    distance_evals: int = 0
    self_terminated: bool = True


def greedy(
    graph: ProximityGraph,
    dataset: Dataset,
    p_start: int,
    q: Any,
    budget: int | None = None,
) -> GreedyResult:
    """Run ``greedy(p_start, q)``; optionally stop after ``budget``
    distance computations (the paper's ``query`` wrapper).

    Ties at Line 3 break toward the smallest vertex id, making runs
    deterministic.
    """
    p_cur = int(p_start)
    if not 0 <= p_cur < graph.n:
        raise ValueError(f"start vertex {p_cur} out of range")
    d_cur = dataset.distance_to_query(q, p_cur)
    evals = 1
    hops = [p_cur]

    while True:
        if budget is not None and evals >= budget:
            return GreedyResult(p_cur, d_cur, hops, evals, self_terminated=False)
        nbrs = graph.out_neighbors(p_cur)
        if len(nbrs) == 0:
            return GreedyResult(p_cur, d_cur, hops, evals, self_terminated=True)
        truncated = False
        if budget is not None and evals + len(nbrs) > budget:
            # Charging the whole batch would exceed the budget: the paper's
            # query() stops greedy "once it has computed Q distances".
            nbrs = nbrs[: budget - evals]
            truncated = True
        dists = dataset.distances_to_query(q, nbrs)
        evals += len(nbrs)
        j = int(np.argmin(dists))  # argmin takes the first (smallest id) tie
        if float(dists[j]) >= d_cur:
            # With a truncated batch we cannot certify a local optimum.
            return GreedyResult(
                p_cur, d_cur, hops, evals, self_terminated=not truncated
            )
        p_cur, d_cur = int(nbrs[j]), float(dists[j])
        hops.append(p_cur)


def query(
    graph: ProximityGraph,
    dataset: Dataset,
    p_start: int,
    q: Any,
    budget: int,
) -> GreedyResult:
    """The paper's ``query(p_start, q, Q)``: budgeted greedy."""
    if budget < 1:
        raise ValueError("query budget must be at least 1")
    return greedy(graph, dataset, p_start, q, budget=budget)


def beam_search(
    graph: ProximityGraph,
    dataset: Dataset,
    p_start: int,
    q: Any,
    beam_width: int,
    k: int = 1,
    budget: int | None = None,
) -> tuple[list[tuple[int, float]], int]:
    """Best-first beam search (practical extension; HNSW's ``ef`` search).

    Not part of the paper's model — provided because every system the
    paper cites (HNSW, DiskANN, NSG) routes with a beam in practice, and
    the baseline benches compare against it.  Returns the top-``k``
    ``(id, distance)`` pairs found and the distance-evaluation count.
    """
    import heapq

    if beam_width < 1:
        raise ValueError("beam width must be at least 1")
    start = int(p_start)
    d0 = dataset.distance_to_query(q, start)
    evals = 1
    visited = {start}
    # candidates: min-heap by distance; result pool: max-heap via negation.
    candidates = [(d0, start)]
    pool = [(-d0, start)]
    while candidates:
        d, u = heapq.heappop(candidates)
        if len(pool) >= beam_width and d > -pool[0][0]:
            break
        nbrs = [int(v) for v in graph.out_neighbors(u) if int(v) not in visited]
        if not nbrs:
            continue
        if budget is not None and evals >= budget:
            break
        if budget is not None and evals + len(nbrs) > budget:
            nbrs = nbrs[: budget - evals]
        arr = np.array(nbrs, dtype=np.intp)
        dists = dataset.distances_to_query(q, arr)
        evals += len(arr)
        for v, dv in zip(arr, dists):
            visited.add(int(v))
            if len(pool) < beam_width or dv < -pool[0][0]:
                heapq.heappush(candidates, (float(dv), int(v)))
                heapq.heappush(pool, (-float(dv), int(v)))
                if len(pool) > beam_width:
                    heapq.heappop(pool)
    best = sorted((-d, v) for d, v in pool)[: max(k, 1)]
    return [(v, d) for d, v in best], evals
