"""EXPERIMENTAL: a probe at the paper's closing open question.

The paper ends Section 1.3 with: *"Our lower bounds, however, do not
rule out a (1+ε)-PG of O((1/ε)^λ·n + n log Δ) edges.  Finding a way to
meet this bound or arguing against its possibility would make an
interesting intellectual challenge."*

This module builds the natural candidate with exactly that edge budget —
a *net-tree navigation structure*:

* **spine** (the ``n log Δ`` part): every point links up and down to one
  covering net point per level above its own top level (≤ 2(h+1) edges
  per point);
* **own-scale laterals** (the ``(1/ε)^λ n`` part): every point links to
  all net points of *its own top level* within ``phi * 2^level`` —
  one full G_net level per point instead of all ``h`` of them.

The structure is NOT claimed to be a (1+ε)-PG — that is precisely the
open question.  :func:`probe_open_question` measures where greedy
navigability empirically breaks, giving the question quantitative
texture: how rare are the failures, and at which scales do they occur?
(Spoiler from bench A4: failures exist already on benign inputs, so this
*particular* candidate does not settle the question affirmatively.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetParameters, gnet_parameters
from repro.graphs.navigability import find_violations
from repro.metrics.base import Dataset
from repro.nets.hierarchy import NetHierarchy

__all__ = ["HybridBuildResult", "build_hybrid_candidate", "probe_open_question"]


@dataclass
class HybridBuildResult:
    graph: ProximityGraph
    params: GNetParameters
    hierarchy: NetHierarchy
    top_level: np.ndarray  # each point's highest net level
    spine_edges: int
    lateral_edges: int


def _top_levels(hierarchy: NetHierarchy) -> np.ndarray:
    """Highest level at which each point appears in the (nested) nets."""
    n = len(hierarchy.order)
    top = np.zeros(n, dtype=np.intp)
    for i in range(hierarchy.height + 1):
        for pid in hierarchy.level(i):
            top[pid] = i
    return top


def build_hybrid_candidate(
    dataset: Dataset,
    epsilon: float,
    hierarchy: NetHierarchy | None = None,
    diameter: float | None = None,
) -> HybridBuildResult:
    """Build the spine + own-scale-laterals candidate structure."""
    if hierarchy is None:
        hierarchy = NetHierarchy(dataset)
    if diameter is None:
        diameter = 2.0 * hierarchy.max_insertion_distance
    params = gnet_parameters(epsilon, diameter)
    if params.height > hierarchy.height:
        hierarchy = NetHierarchy(dataset, height=params.height)
    top = _top_levels(hierarchy)

    out: list[set[int]] = [set() for _ in range(dataset.n)]
    spine = 0
    for p in range(dataset.n):
        for i in range(int(top[p]) + 1, params.height + 1):
            level_ids = hierarchy.level(i)
            d = dataset.distances_from_index(p, level_ids)
            anchor = int(level_ids[int(np.argmin(d))])
            if anchor != p and anchor not in out[p]:
                out[p].add(anchor)
                spine += 1
            if p != anchor and p not in out[anchor]:
                out[anchor].add(p)
                spine += 1

    lateral = 0
    for p in range(dataset.n):
        lvl = int(top[p])
        level_ids = hierarchy.level(lvl)
        radius = params.level_radius(lvl)
        d = dataset.distances_from_index(p, level_ids)
        for y in level_ids[d <= radius]:
            y = int(y)
            if y != p and y not in out[p]:
                out[p].add(y)
                lateral += 1

    return HybridBuildResult(
        graph=ProximityGraph.from_sets(dataset.n, out),
        params=params,
        hierarchy=hierarchy,
        top_level=top,
        spine_edges=spine,
        lateral_edges=lateral,
    )


def probe_open_question(
    dataset: Dataset,
    epsilon: float,
    queries,
    gnet_edges: int | None = None,
) -> dict:
    """Build the candidate and report its budget and failure profile.

    Returns a dict with the candidate's edge split, the edge budget the
    open question allows (`(1/eps)^lambda n + n log Delta` with lambda
    instantiated as the coordinate dimension when available), and the
    number of navigability violations on the query sample.
    """
    result = build_hybrid_candidate(dataset, epsilon)
    violations = find_violations(
        result.graph, dataset, queries, epsilon, stop_at=None
    )
    n = dataset.n
    h = result.params.height
    points = np.asarray(dataset.points)
    lam = points.shape[1] if points.ndim == 2 else 2.0
    budget = (1.0 / epsilon) ** lam * n + n * max(h - 1, 1)
    out = {
        "n": n,
        "h": h,
        "edges": result.graph.num_edges,
        "spine_edges": result.spine_edges,
        "lateral_edges": result.lateral_edges,
        "open_question_budget": math.ceil(budget),
        "within_budget": result.graph.num_edges
        <= 64 * budget,  # generous constant, as O(.) allows
        "violations": len(violations),
        "queries": len(queries),
    }
    if gnet_edges is not None:
        out["gnet_edges"] = gnet_edges
        out["vs_gnet"] = round(result.graph.num_edges / gnet_edges, 3)
    return out
