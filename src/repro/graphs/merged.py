"""The merged Euclidean proximity graph of Theorem 1.3 (Section 5).

Recipe (Sections 5.2-5.3):

1. Build ``G_net`` by the Theorem 1.1 construction.
2. Sample each vertex independently with probability ``tau = z / log2(Delta)``
   ("jackpot" vertices); keep only the out-edges of sampled vertices —
   this is ``G'_net`` with ``O((1/eps)^lambda * n)`` expected edges.
3. Build ``G_geo``, an ``(eps/32)``-graph (Lemma 5.1: a (1+eps)-PG with
   ``O((1/eps)^(d-1) * n)`` edges).
4. Merge: each vertex's out-edges are the union of those in ``G'_net``
   and ``G_geo``.

Navigability of the merge is inherited from ``G_geo`` alone; the jackpot
edges restore *speed*: under the jackpot condition (every long greedy
stretch on ``G_geo`` meets a jackpot vertex within ``ceil(ln n * log Delta)``
hops, which holds w.h.p.), greedy on the merge needs only
``O(log Delta)`` jackpot hops (the log-drop property applies at each) and
``O(log n * log^2 Delta)`` non-jackpot hops.

5. To get the size bound w.h.p. rather than in expectation, repeat the
   sampling ``O(log n)`` times and keep the smallest graph (Section 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.gnet import GNetBuildResult, GNetParameters, build_gnet
from repro.graphs.theta import ThetaBuildResult, build_theta_graph, theta_for_epsilon
from repro.metrics.base import Dataset

__all__ = ["MergedBuildResult", "build_merged_graph", "jackpot_rate"]


def jackpot_rate(z: float, aspect_ratio: float) -> float:
    """The sampling probability ``tau = z / log2(Delta)`` of equation (17),
    capped at 1 (small inputs can have ``log2(Delta) <= z``)."""
    if z <= 0:
        raise ValueError("z must be positive")
    if aspect_ratio < 1:
        raise ValueError("aspect ratio is at least 1")
    log_delta = math.log2(max(aspect_ratio, 2.0))
    return min(1.0, z / log_delta)


@dataclass
class MergedBuildResult:
    """Output of :func:`build_merged_graph`.

    ``graph`` is the merge; ``jackpot`` is the boolean vertex-sampling
    mask of the kept run; ``runs_edge_counts`` records every run's edge
    count (the paper keeps the smallest).
    """

    graph: ProximityGraph
    gnet: GNetBuildResult
    geo: ThetaBuildResult
    jackpot: np.ndarray
    tau: float
    runs_edge_counts: list[int]

    @property
    def params(self) -> GNetParameters:
        return self.gnet.params

    def query_budget(self, doubling_dimension: float) -> int:
        """Distance budget matching Section 5.2's analysis:
        ``O(log Delta)`` jackpot hops at G_net degree plus
        ``O(log n * log^2 Delta)`` theta-degree hops."""
        h = self.params.height
        n = self.gnet.graph.n
        jackpot_hops = h + 2
        nonjackpot_hops = (math.ceil(math.log(max(n, 2)) * h) + 1) * (h + 2)
        gnet_degree = self.params.out_degree_bound(doubling_dimension)
        theta_degree = max(self.geo.graph.max_out_degree(), 1)
        return int(jackpot_hops * gnet_degree + nonjackpot_hops * theta_degree) + 1


def build_merged_graph(
    dataset: Dataset,
    epsilon: float,
    rng: np.random.Generator,
    z: float = 3.0,
    runs: int | None = None,
    gnet: GNetBuildResult | None = None,
    geo: ThetaBuildResult | None = None,
    gnet_method: str = "auto",
    theta_method: str = "auto",
    theta: float | None = None,
) -> MergedBuildResult:
    """Build the Theorem 1.3 graph for a Euclidean dataset normalized to
    minimum inter-point distance 2.

    Parameters
    ----------
    z:
        The constant of equation (17); larger drives the failure
        probability of the jackpot condition down as ``1/n^(z-1)``.
    runs:
        Number of independent sampling rounds (smallest graph kept);
        defaults to ``ceil(log2 n)`` per Section 5.3.
    theta:
        Cone angle for ``G_geo``; defaults to Lemma 5.1's ``eps/32``.
    """
    if gnet is None:
        gnet = build_gnet(dataset, epsilon, method=gnet_method)
    if geo is None:
        geo = build_theta_graph(
            dataset, theta if theta is not None else theta_for_epsilon(epsilon),
            method=theta_method,
        )
    n = dataset.n
    aspect_ratio = max(2.0 ** gnet.params.height / 2.0, 2.0)
    tau = jackpot_rate(z, aspect_ratio)
    if runs is None:
        runs = max(1, math.ceil(math.log2(max(n, 2))))

    best_graph: ProximityGraph | None = None
    best_jackpot: np.ndarray | None = None
    runs_edge_counts: list[int] = []
    for _ in range(runs):
        mask = rng.random(n) < tau
        sampled = gnet.graph.subgraph_of_sources(np.flatnonzero(mask))
        candidate = sampled.merge(geo.graph)
        runs_edge_counts.append(candidate.num_edges)
        if best_graph is None or candidate.num_edges < best_graph.num_edges:
            best_graph, best_jackpot = candidate, mask

    assert best_graph is not None and best_jackpot is not None
    return MergedBuildResult(
        graph=best_graph,
        gnet=gnet,
        geo=geo,
        jackpot=best_jackpot,
        tau=tau,
        runs_edge_counts=runs_edge_counts,
    )
