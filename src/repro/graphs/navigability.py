"""(1+eps)-navigability — the local characterization of proximity graphs.

Fact 2.1: ``G`` is a (1+eps)-PG of ``P`` **iff** for every data point
``p`` and every query ``q``, either ``p`` is a (1+eps)-ANN of ``q`` or
some out-neighbor of ``p`` is strictly closer to ``q``.

This turns global correctness of greedy routing into a condition that can
be checked exhaustively per query in ``O(n + |E|)`` batched distance
evaluations, which is the backbone of this library's test strategy: we
*prove* graphs navigable on finite query universes (the lower-bound
instances) and spot-check them on large random query batches elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.metrics.base import Dataset

__all__ = [
    "NavigabilityViolation",
    "check_navigability_for_query",
    "find_violations",
    "assert_navigable",
    "greedy_matches_navigability",
]


@dataclass
class NavigabilityViolation:
    """A witness that ``G`` is not (1+eps)-navigable.

    Vertex ``vertex`` is not a (1+eps)-ANN of ``query`` yet no out-neighbor
    is strictly closer — so ``greedy(vertex, query)`` terminates at a
    non-(1+eps)-ANN and ``G`` is not a (1+eps)-PG (Fact 2.1).
    """

    query: Any
    vertex: int
    vertex_distance: float
    nn_distance: float
    best_out_distance: float

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"vertex {self.vertex} at distance {self.vertex_distance} "
            f"(NN distance {self.nn_distance}) has best out-neighbor at "
            f"{self.best_out_distance} — greedy is stuck"
        )


def check_navigability_for_query(
    graph: ProximityGraph,
    dataset: Dataset,
    q: Any,
    epsilon: float,
    rtol: float = 1e-12,
) -> list[NavigabilityViolation]:
    """All navigability violations of ``graph`` at the single query ``q``."""
    dists = dataset.distances_to_query_all(q)
    nn_dist = float(dists.min())
    threshold = (1.0 + epsilon) * nn_dist * (1.0 + rtol)
    violations: list[NavigabilityViolation] = []
    for p in np.flatnonzero(dists > threshold):
        nbrs = graph.out_neighbors(int(p))
        best = float(dists[nbrs].min()) if len(nbrs) else np.inf
        if best >= float(dists[p]):
            violations.append(
                NavigabilityViolation(
                    query=q,
                    vertex=int(p),
                    vertex_distance=float(dists[p]),
                    nn_distance=nn_dist,
                    best_out_distance=best,
                )
            )
    return violations


def find_violations(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Iterable[Any],
    epsilon: float,
    stop_at: int | None = 1,
) -> list[NavigabilityViolation]:
    """Scan a query collection for navigability violations.

    ``stop_at`` bounds how many violations to collect before returning
    early (``None`` collects all).
    """
    out: list[NavigabilityViolation] = []
    for q in queries:
        out.extend(check_navigability_for_query(graph, dataset, q, epsilon))
        if stop_at is not None and len(out) >= stop_at:
            break
    return out


def assert_navigable(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Sequence[Any],
    epsilon: float,
) -> None:
    """Raise ``AssertionError`` with a witness if any query violates
    (1+eps)-navigability."""
    violations = find_violations(graph, dataset, queries, epsilon, stop_at=1)
    if violations:
        raise AssertionError(f"graph is not (1+{epsilon})-navigable: {violations[0]}")


def greedy_matches_navigability(
    graph: ProximityGraph,
    dataset: Dataset,
    q: Any,
    epsilon: float,
    starts: Sequence[int] | None = None,
) -> bool:
    """Cross-check of Fact 2.1's if-direction: on a navigable graph,
    greedy from every start must return a (1+eps)-ANN of ``q``.

    Used by tests to tie the two definitions together on real runs.
    """
    from repro.graphs.greedy import greedy

    dists = dataset.distances_to_query_all(q)
    threshold = (1.0 + epsilon) * float(dists.min()) * (1.0 + 1e-12)
    if starts is None:
        starts = range(graph.n)
    return all(
        greedy(graph, dataset, int(s), q).distance <= threshold for s in starts
    )
