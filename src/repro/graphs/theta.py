"""Theta-graphs — the "small-but-slow" Euclidean proximity graph G_geo of
Section 5.1.

For a cone family ``C`` (apexes translated to each point ``p``), the
theta-graph has an edge from ``p`` to the *nearest-point-on-ray* of every
non-empty cone ``C_p``: among the points of ``P - {p}`` covered by
``C_p``, the one whose projection onto the cone's designated ray is
closest to ``p``.  Lemma 5.1: an ``(eps/32)``-graph of ``P`` is a
(1+eps)-PG of ``P``.  Out-degree is at most ``|C| = O((1/theta)^(d-1))``,
so the graph has ``O((1/theta)^(d-1) * n)`` edges — no ``log Delta``
factor, the geometric blessing that powers Theorem 1.3.

Two builders with identical output on generic inputs:

* ``"sweep"`` (``d = 2`` only) — the classical ``O(k n log n)`` staircase
  construction [5, 25].  In rotated cone coordinates
  ``a = tan(beta) * u - v``, ``b = tan(beta) * u + v`` (``u`` along the
  axis, ``v`` across, ``beta`` the half-angle), ``p'`` lies in ``C_p``
  iff ``a(p') >= a(p)`` and ``b(p') >= b(p)``; processing points by
  ascending ``u`` and keeping unassigned points as a dominance staircase
  (an antichain: ``a`` ascending, ``b`` descending) finds each point's
  first dominator — exactly its nearest-point-on-ray.
* ``"vectorized"`` (any ``d``) — per point, one matrix product against
  all cone axes; the correctness reference.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.cones import ConeFamily, build_cone_family
from repro.metrics.base import Dataset

__all__ = [
    "ThetaBuildResult",
    "theta_for_epsilon",
    "build_theta_graph",
]


def theta_for_epsilon(epsilon: float) -> float:
    """The cone angle Lemma 5.1 prescribes: ``theta = eps / 32``."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    return epsilon / 32.0


@dataclass
class ThetaBuildResult:
    """Output of :func:`build_theta_graph`."""

    graph: ProximityGraph
    cones: ConeFamily
    theta: float


def build_theta_graph(
    dataset: Dataset,
    theta: float,
    method: str = "auto",
    cones: ConeFamily | None = None,
) -> ThetaBuildResult:
    """Build the theta-graph of a Euclidean dataset.

    ``dataset.points`` must be an ``(n, d)`` float array.  ``method`` is
    ``"sweep"`` (d=2), ``"vectorized"``, or ``"auto"`` (sweep when d=2).
    """
    points = np.asarray(dataset.points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("theta-graphs need (n, d) coordinate data")
    dim = points.shape[1]
    if cones is None:
        cones = build_cone_family(theta, dim)
    if method == "auto":
        method = "sweep" if dim == 2 else "vectorized"
    if method == "sweep":
        if dim != 2:
            raise ValueError("the sweep builder is 2-D only")
        graph = _build_sweep_2d(points, cones)
    elif method == "vectorized":
        graph = _build_vectorized(points, cones)
    else:
        raise ValueError(f"unknown build method {method!r}")
    return ThetaBuildResult(graph=graph, cones=cones, theta=theta)


# ----------------------------------------------------------------------
# Vectorized reference builder (any dimension)
# ----------------------------------------------------------------------


def _build_vectorized(points: np.ndarray, cones: ConeFamily) -> ProximityGraph:
    n = len(points)
    cos_half = math.cos(cones.half_angle)
    axes_t = cones.axes.T  # (d, k)
    out: list[np.ndarray] = []
    for p in range(n):
        diff = points - points[p]
        norms = np.linalg.norm(diff, axis=1)
        proj = diff @ axes_t  # (n, k) projections onto designated rays
        member = proj >= (cos_half * norms)[:, None] - 1e-12
        member[p, :] = False
        member[norms == 0.0, :] = False  # coincident points: treat as absent
        masked = np.where(member, proj, np.inf)
        best = np.argmin(masked, axis=0)  # (k,)
        ok = masked[best, np.arange(cones.num_cones)] < np.inf
        out.append(np.unique(best[ok]).astype(np.intp))
    return ProximityGraph(n, out)


# ----------------------------------------------------------------------
# 2-D staircase sweep builder
# ----------------------------------------------------------------------


def _build_sweep_2d(points: np.ndarray, cones: ConeFamily) -> ProximityGraph:
    n = len(points)
    tan_half = math.tan(cones.half_angle)
    edge_sets: list[set[int]] = [set() for _ in range(n)]
    for axis in cones.axes:
        _sweep_one_cone(points, axis, tan_half, edge_sets)
    return ProximityGraph.from_sets(n, edge_sets)


def _sweep_one_cone(
    points: np.ndarray,
    axis: np.ndarray,
    tan_half: float,
    edge_sets: list[set[int]],
) -> None:
    """Assign, for one cone direction, each point's nearest-point-on-ray.

    The staircase invariant: unassigned processed points form an antichain
    under the dominance order ``(a, b)`` — stored with ``a`` strictly
    ascending and hence ``b`` strictly descending — because any
    comparable pair would have been resolved when the later point was
    processed.
    """
    u = points @ axis
    v = points @ np.array([-axis[1], axis[0]])
    a = tan_half * u - v
    b = tan_half * u + v
    order = np.lexsort((np.arange(len(points)), u))

    stair_a: list[float] = []
    stair_b: list[float] = []
    stair_id: list[int] = []
    for idx in order:
        idx = int(idx)
        # Points dominated by idx: prefix by a (<= a[idx]), then — since b
        # is descending there — the suffix of that prefix with b <= b[idx].
        hi = bisect_right(stair_a, float(a[idx]))
        lo = _first_below(stair_b, float(b[idx]), hi)
        if lo < hi:
            for pid in stair_id[lo:hi]:
                edge_sets[pid].add(idx)
            del stair_a[lo:hi], stair_b[lo:hi], stair_id[lo:hi]
        pos = bisect_left(stair_a, float(a[idx]))
        stair_a.insert(pos, float(a[idx]))
        stair_b.insert(pos, float(b[idx]))
        stair_id.insert(pos, idx)


def _first_below(desc_values: list[float], threshold: float, hi: int) -> int:
    """First index ``< hi`` whose value is ``<= threshold`` in a
    descending list (all later indices also satisfy it)."""
    lo = 0
    while lo < hi:
        mid = (lo + hi) // 2
        if desc_values[mid] <= threshold:
            hi = mid
        else:
            lo = mid + 1
    return lo
