"""End-to-end proximity-graph validation.

:mod:`repro.graphs.navigability` checks Fact 2.1's *local* condition.
This module provides the complementary *behavioral* check — actually run
``greedy`` from every start vertex — and the machinery to certify the
two views against each other.  On finite query universes (the
lower-bound instances) the combination is a complete decision procedure
for "is G a (1+eps)-PG?".

Also here: :func:`corrupt_graph`, a failure-injection helper used by
tests and benches to confirm the validators *detect* broken graphs (a
validator that never fires is worse than none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import greedy
from repro.graphs.navigability import find_violations
from repro.metrics.base import Dataset

__all__ = [
    "GreedyFailure",
    "exhaustive_greedy_check",
    "validate_proximity_graph",
    "corrupt_graph",
]


@dataclass
class GreedyFailure:
    """A (start, query) pair on which greedy returned a non-(1+eps)-ANN."""

    query: Any
    start: int
    returned: int
    returned_distance: float
    nn_distance: float

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"greedy({self.start}, q) -> {self.returned} at "
            f"{self.returned_distance} vs NN {self.nn_distance}"
        )


def exhaustive_greedy_check(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Iterable[Any],
    epsilon: float,
    starts: Sequence[int] | None = None,
    stop_at: int | None = 1,
) -> list[GreedyFailure]:
    """Run the Section 1.1 definition literally: greedy from every start
    (default: all vertices) for every query must return a (1+eps)-ANN.

    Complete but expensive — ``O(|starts| * |queries|)`` greedy runs.
    """
    if starts is None:
        starts = range(graph.n)
    failures: list[GreedyFailure] = []
    for q in queries:
        nn_dist = float(dataset.distances_to_query_all(q).min())
        threshold = (1.0 + epsilon) * nn_dist * (1.0 + 1e-12)
        for s in starts:
            result = greedy(graph, dataset, int(s), q)
            if result.distance > threshold:
                failures.append(
                    GreedyFailure(
                        query=q,
                        start=int(s),
                        returned=result.point,
                        returned_distance=result.distance,
                        nn_distance=nn_dist,
                    )
                )
                if stop_at is not None and len(failures) >= stop_at:
                    return failures
    return failures


def validate_proximity_graph(
    graph: ProximityGraph,
    dataset: Dataset,
    queries: Sequence[Any],
    epsilon: float,
    starts: Sequence[int] | None = None,
) -> dict:
    """Run both views of Fact 2.1 and cross-check them.

    Returns a report dict with the violation/failure counts.  The two
    checks must agree on emptiness: local navigability holds on a query
    iff greedy succeeds from every start (the content of Fact 2.1) —
    a mismatch indicates a bug in this library, and is asserted against.
    """
    local = find_violations(graph, dataset, queries, epsilon, stop_at=None)
    behavioral = exhaustive_greedy_check(
        graph, dataset, queries, epsilon, starts=starts, stop_at=None
    )
    # Fact 2.1, only-if: a local violation at (p, q) means greedy started
    # at p is stuck at a non-ANN, so behavioral failures must appear too
    # (when starts include the stuck vertex — with default starts it does).
    if starts is None:
        local_empty, behavioral_empty = not local, not behavioral
        if local_empty != behavioral_empty:
            raise AssertionError(
                "Fact 2.1 cross-check failed: local and behavioral checks "
                f"disagree (local={len(local)}, behavioral={len(behavioral)})"
            )
    return {
        "queries": len(queries),
        "epsilon": epsilon,
        "local_violations": len(local),
        "greedy_failures": len(behavioral),
        "is_proximity_graph_on_sample": not local and not behavioral,
    }


def corrupt_graph(
    graph: ProximityGraph,
    rng: np.random.Generator,
    drop_fraction: float = 0.5,
    victims: int | None = None,
) -> ProximityGraph:
    """Failure injection: drop a random fraction of out-edges from a few
    random vertices.  Returns a corrupted copy (input untouched)."""
    if not 0 < drop_fraction <= 1:
        raise ValueError("drop_fraction must be in (0, 1]")
    bad = graph.copy()
    if victims is None:
        victims = max(1, graph.n // 10)
    for v in rng.choice(graph.n, size=min(victims, graph.n), replace=False):
        nbrs = bad.out_neighbors(int(v))
        if len(nbrs) == 0:
            continue
        keep = rng.random(len(nbrs)) > drop_fraction
        bad.set_out_neighbors(int(v), nbrs[keep])
    return bad
