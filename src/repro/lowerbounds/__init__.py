"""Hard instances and executable adversaries for the Theorem 1.2 lower
bounds (Sections 3 and 4)."""

from repro.lowerbounds.adversary import (
    AdversaryCertificate,
    attack_block_graph,
    attack_tree_graph,
)
from repro.lowerbounds.block_instance import BlockHardInstance, build_block_instance
from repro.lowerbounds.tree_instance import TreeHardInstance, build_tree_instance

__all__ = [
    "AdversaryCertificate",
    "BlockHardInstance",
    "TreeHardInstance",
    "attack_block_graph",
    "attack_tree_graph",
    "build_block_instance",
    "build_tree_instance",
]
