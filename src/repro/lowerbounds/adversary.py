"""Executable adversary arguments for Theorem 1.2.

The paper's lower bounds are proofs by counterexample: *any* graph below
the edge bound misses a required edge, and a concrete (metric, query,
start-vertex) triple then defeats greedy.  This module runs that script
literally — given a graph, it either

* finds a missing required edge, stages the adversarial query, executes
  greedy, and returns a :class:`AdversaryCertificate` *proving* the graph
  is not a (1+eps)-PG; or
* certifies that every required edge is present, so the graph carries at
  least the theorem's edge count.

Benches and tests use the certificates both ways: the paper's
constructions must survive the attack, and any pruned graph must fall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graphs.base import ProximityGraph
from repro.graphs.greedy import greedy
from repro.lowerbounds.block_instance import BlockHardInstance
from repro.lowerbounds.tree_instance import TreeHardInstance

__all__ = [
    "AdversaryCertificate",
    "attack_tree_graph",
    "attack_block_graph",
]


@dataclass
class AdversaryCertificate:
    """Proof that a graph fails to be a (1+eps)-PG.

    ``greedy(p_start, query)`` returned ``returned_point`` at distance
    ``returned_distance`` while the true NN sits at ``nn_distance``;
    since ``returned_distance > (1 + epsilon) * nn_distance``, Fact 2.1
    is violated.
    """

    missing_edge: tuple[int, int]
    p_start: int
    query: Any
    epsilon: float
    returned_point: int
    returned_distance: float
    nn_distance: float

    @property
    def approximation_achieved(self) -> float:
        if self.nn_distance == 0.0:
            return float("inf")
        return self.returned_distance / self.nn_distance

    def is_valid(self) -> bool:
        """The defining inequality of a failed (1+eps)-ANN."""
        return self.returned_distance > (1.0 + self.epsilon) * self.nn_distance

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"missing edge {self.missing_edge}: greedy from {self.p_start} "
            f"returned point {self.returned_point} at {self.returned_distance} "
            f"vs NN distance {self.nn_distance} "
            f"(needs <= {(1 + self.epsilon) * self.nn_distance})"
        )


def attack_tree_graph(
    graph: ProximityGraph,
    instance: TreeHardInstance,
    epsilon: float = 1.0,
) -> AdversaryCertificate | None:
    """Run the Section 3 adversary against ``graph``.

    Returns a certificate if some ``P1 x P2`` edge is missing (the query
    is the missing edge's ``v2`` itself, whose NN distance is 0, so *no*
    approximation factor can rescue greedy), else ``None``.
    """
    missing = instance.missing_required_edges(graph)
    if not missing:
        return None
    v1, v2 = missing[0]
    q = instance.dataset.points[v2]  # the leaf itself is the query
    result = greedy(graph, instance.dataset, p_start=v1, q=q)
    nn_dist = 0.0  # q = v2 is a data point
    cert = AdversaryCertificate(
        missing_edge=(v1, v2),
        p_start=v1,
        query=q,
        epsilon=epsilon,
        returned_point=result.point,
        returned_distance=result.distance,
        nn_distance=nn_dist,
    )
    return cert if cert.is_valid() else None


def attack_block_graph(
    graph: ProximityGraph,
    instance: BlockHardInstance,
) -> AdversaryCertificate | None:
    """Run the Section 4 adversary (Alice) against ``graph``.

    Alice looks for a missing intra-block edge ``(p1, p2)``, commits
    ``p* = p2`` (legal: the committed metric agrees with everything the
    builder observed), and queries the phantom point.  Returns a
    certificate when greedy from ``p1`` fails, else ``None``.
    """
    missing = instance.missing_required_edges(graph)
    if not missing:
        return None
    p1, p2 = missing[0]
    committed, query_id = instance.committed_dataset(p_star=p2)
    result = greedy(graph, committed, p_start=p1, q=query_id)
    nn_dist = float(instance.side - 1)  # D(q, p*) = s - 1 by construction
    cert = AdversaryCertificate(
        missing_edge=(p1, p2),
        p_start=p1,
        query=query_id,
        epsilon=instance.epsilon,
        returned_point=result.point,
        returned_distance=result.distance,
        nn_distance=nn_dist,
    )
    return cert if cert.is_valid() else None
