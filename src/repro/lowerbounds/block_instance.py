"""The Section 4 hard instance (Figure 2): Omega((1/eps)^lambda * n) edges
are necessary, for ``eps = 1/(2s)``, regardless of query time.

The input ``P`` is ``t`` translated copies ("blocks") of the grid
``(Z_s)^d`` under ``L_inf`` (see
:class:`~repro.metrics.adversarial.BlockAdversarialMetric`).  The metric
space hides one extra non-Euclidean point ``q`` whose distances the
adversary fixes *after* seeing the graph.  Any (1+eps)-PG must contain
**every ordered intra-block pair** as an edge: if ``(p1, p2)`` in block
``M_w`` is missing, Alice sets ``p* = p2`` — making ``p2`` the NN of
``q`` at distance ``s - 1`` while every other point is at distance
``>= s > (s-1)(1+eps)`` — and greedy started at ``p1`` is stuck, because
all of ``p1``'s out-neighbors are at distance ``>= s = D(p1, q)``.

Total: ``s^d * (s^d - 1) * t = Omega(s^d * n)`` edges with ``n = s^d t``.
Note ``eps = 1/(2s)`` gives ``s^d = (1/(2 eps))^d``, and the doubling
dimension is at most ``log2(1 + 2^d)`` (Lemma 4.1), so the bound reads
``Omega((1/eps)^(lambda - o(1)) * n)`` — the ``(1/eps)^lambda`` factor in
Theorem 1.1's size is not an artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.metrics.adversarial import BlockAdversarialMetric
from repro.metrics.base import Dataset

__all__ = ["BlockHardInstance", "build_block_instance"]


@dataclass
class BlockHardInstance:
    """The uncommitted instance; graphs are built on ``dataset`` (which
    exposes only intra-``P`` distances, all equal to ``L_inf``)."""

    metric: BlockAdversarialMetric
    dataset: Dataset
    side: int
    copies: int
    dim: int

    @property
    def n(self) -> int:
        return self.metric.n

    @property
    def epsilon(self) -> float:
        """The ``eps = 1/(2s)`` of Statement (2)."""
        return self.metric.theoretical_epsilon()

    @property
    def required_edge_count(self) -> int:
        block = self.metric.block_size
        return block * (block - 1) * self.copies

    def required_edges(self) -> Iterator[tuple[int, int]]:
        """All ordered intra-block pairs."""
        for b in range(self.copies):
            members = self.metric.block_members(b)
            for p1 in members:
                for p2 in members:
                    if p1 != p2:
                        yield int(p1), int(p2)

    def missing_required_edges(self, graph) -> list[tuple[int, int]]:
        """Required edges absent from ``graph`` (early exit at 16)."""
        missing = []
        for b in range(self.copies):
            members = self.metric.block_members(b)
            member_set = set(map(int, members))
            for p1 in members:
                nbrs = set(map(int, graph.out_neighbors(int(p1))))
                for p2 in member_set - nbrs - {int(p1)}:
                    missing.append((int(p1), p2))
                    if len(missing) >= 16:
                        return missing
        return missing

    def normalized_dataset(self) -> Dataset:
        """The instance rescaled to minimum inter-point distance 2 (the
        grid spacing is 1), as the Section 2 constructions assume.

        Scaling leaves navigability, greedy behavior, and the required
        edge set untouched — it multiplies every distance by the same
        factor — so graphs built on the scaled dataset can be attacked
        through the unscaled adversary unchanged.
        """
        from repro.metrics.base import ScaledMetric

        return Dataset(ScaledMetric(self.metric, 2.0), self.metric.point_ids())

    def committed_dataset(self, p_star: int) -> tuple[Dataset, int]:
        """A fresh dataset under the finalized metric ``D_{p*}``; returns
        it together with the id of the phantom query point ``q``.

        Alice's move: the committed metric agrees with the uncommitted one
        on every intra-``P`` distance, so any graph built from ``dataset``
        is unchanged — only ``q``'s distances become defined.
        """
        committed = BlockAdversarialMetric(
            self.side, self.copies, self.dim, p_star=p_star
        )
        return Dataset(committed, committed.point_ids()), committed.query_id

    def lower_bound_formula(self) -> str:
        return (
            f"s^d (s^d - 1) t = {self.metric.block_size} * "
            f"{self.metric.block_size - 1} * {self.copies} = "
            f"{self.required_edge_count} = Omega(s^d n)"
        )


def build_block_instance(side: int, copies: int, dim: int) -> BlockHardInstance:
    """Build the instance with grid side ``s``, ``t`` blocks, dimension ``d``."""
    metric = BlockAdversarialMetric(side=side, copies=copies, dim=dim)
    dataset = Dataset(metric, metric.point_ids())
    return BlockHardInstance(
        metric=metric, dataset=dataset, side=side, copies=copies, dim=dim
    )
