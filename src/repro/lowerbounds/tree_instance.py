"""The Section 3 hard instance (Figure 1): Omega(n log Delta) edges are
necessary in general metric spaces, for any 2-PG, regardless of query time.

Construction.  Take the complete binary tree with ``2 * Delta`` leaves
(``h = log2(2 * Delta)`` levels) and the ultrametric of
:class:`~repro.metrics.tree_metric.TreeMetric`.  Let ``pi`` be the
leftmost root-to-leaf path, ``u_i`` the level-``i`` node on ``pi``, and
``T_i`` the right subtree of ``u_i``.  The input is

* ``P1`` — all ``n`` leaves under ``u_{log2 n}`` (ids ``0 .. n-1``), and
* ``P2`` — one leaf from each ``T_i`` with ``i in (h/2, h]`` (we take the
  leftmost, id ``2^(i-1)``), giving ``floor(h/2)``-ish points.

Any 2-navigable graph must contain **every** edge of ``P1 x P2``: if
``(v1, v2)`` is missing, then with query ``q = v2`` (whose NN is itself,
at distance 0) every out-neighbor of ``v1`` is at distance ``>= D(v1, q)``
— the LCA case analysis of Section 3 — so greedy is stuck at ``v1``,
which is not a 2-ANN.  Hence at least ``|P1| * |P2| = Omega(n log Delta)``
edges.  The theorem also holds with 2 replaced by any constant ``c > 1``,
which :func:`required_edges` reflects by being approximation-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.metrics.base import Dataset
from repro.metrics.tree_metric import TreeMetric

__all__ = ["TreeHardInstance", "build_tree_instance"]


def _is_power_of_two(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


@dataclass
class TreeHardInstance:
    """The instance plus index bookkeeping.

    ``dataset.points`` holds leaf ids; ``p1`` and ``p2`` are *dataset
    indices* (0-based vertex ids of any graph built on the instance).
    """

    metric: TreeMetric
    dataset: Dataset
    p1: np.ndarray
    p2: np.ndarray
    n_param: int
    delta: int
    height: int

    @property
    def required_edge_count(self) -> int:
        return len(self.p1) * len(self.p2)

    def required_edges(self) -> Iterator[tuple[int, int]]:
        """All ``P1 x P2`` dataset-index pairs (edges every 2-PG needs)."""
        for v1 in self.p1:
            for v2 in self.p2:
                yield int(v1), int(v2)

    def missing_required_edges(self, graph) -> list[tuple[int, int]]:
        """Required edges absent from ``graph`` (early exit at 16)."""
        missing = []
        p2_leaf_rows = np.asarray(self.p2, dtype=np.intp)
        for v1 in self.p1:
            nbrs = set(map(int, graph.out_neighbors(int(v1))))
            for v2 in p2_leaf_rows:
                if int(v2) not in nbrs:
                    missing.append((int(v1), int(v2)))
                    if len(missing) >= 16:
                        return missing
        return missing

    def all_metric_points(self) -> np.ndarray:
        """Every point of ``M`` (all ``2 * Delta`` leaves) — the finite
        query universe for exhaustive navigability checks."""
        return np.arange(self.metric.num_leaves, dtype=np.int64)

    def lower_bound_formula(self) -> str:
        return (
            f"|P1| * |P2| = {len(self.p1)} * {len(self.p2)} = "
            f"{self.required_edge_count} = Omega(n log Delta)"
        )


def build_tree_instance(
    n: int, delta: int, strict: bool = True
) -> TreeHardInstance:
    """Build the hard instance for parameters ``n`` and ``Delta``.

    With ``strict=True`` the paper's preconditions are enforced: ``n`` and
    ``Delta`` powers of two, ``n >= 2``, ``n^2 <= 2*Delta <= 2^n``.  With
    ``strict=False`` only the structural requirements are checked
    (``log2 n <= h/2`` so that ``P1`` and ``P2`` are disjoint), letting
    benches sweep a wider parameter grid.
    """
    if not (_is_power_of_two(n) and _is_power_of_two(delta)):
        raise ValueError("n and Delta must be powers of two")
    if n < 2:
        raise ValueError("n must be at least 2")
    height = int(math.log2(2 * delta))
    if strict and not (n * n <= 2 * delta <= 2**n):
        raise ValueError("the paper requires n^2 <= 2*Delta <= 2^n")
    if int(math.log2(n)) > height // 2:
        raise ValueError("need log2(n) <= h/2 for P1 and P2 to be disjoint")

    metric = TreeMetric(height=height)
    p1_leaves = np.arange(n, dtype=np.int64)  # leaves under u_{log n}
    p2_levels = range(height // 2 + 1, height + 1)
    p2_leaves = np.array([1 << (i - 1) for i in p2_levels], dtype=np.int64)
    points = np.concatenate([p1_leaves, p2_leaves])
    dataset = Dataset(metric, points)
    return TreeHardInstance(
        metric=metric,
        dataset=dataset,
        p1=np.arange(n, dtype=np.intp),
        p2=np.arange(n, n + len(p2_leaves), dtype=np.intp),
        n_param=n,
        delta=delta,
        height=height,
    )
