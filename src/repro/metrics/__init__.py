"""Metric-space substrate: abstract metrics, concrete families, accounting,
normalization, and doubling-dimension tooling.

See :mod:`repro.metrics.base` for the core interfaces.
"""

from repro.metrics.adversarial import AdversaryNotCommittedError, BlockAdversarialMetric
from repro.metrics.arena import ArenaSpec, AttachedArena, SharedArena, attach
from repro.metrics.base import Dataset, ExplicitMatrixMetric, MetricSpace, ScaledMetric
from repro.metrics.counting import CountingMetric
from repro.metrics.doubling import (
    check_packing,
    estimate_doubling_constant,
    greedy_half_radius_cover,
    packing_bound,
)
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric
from repro.metrics.scaling import (
    SpreadEstimate,
    estimate_extremes,
    normalize_min_distance,
    spread_parameters,
)
from repro.metrics.specs import metric_from_spec, metric_to_spec
from repro.metrics.tree_metric import TreeMetric, lca_level

__all__ = [
    "AdversaryNotCommittedError",
    "ArenaSpec",
    "AttachedArena",
    "BlockAdversarialMetric",
    "SharedArena",
    "attach",
    "ChebyshevMetric",
    "CountingMetric",
    "Dataset",
    "EuclideanMetric",
    "ExplicitMatrixMetric",
    "MetricSpace",
    "MinkowskiMetric",
    "ScaledMetric",
    "SpreadEstimate",
    "TreeMetric",
    "check_packing",
    "estimate_doubling_constant",
    "estimate_extremes",
    "greedy_half_radius_cover",
    "lca_level",
    "metric_from_spec",
    "metric_to_spec",
    "normalize_min_distance",
    "packing_bound",
    "spread_parameters",
]
