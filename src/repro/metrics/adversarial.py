"""The adversarial metric family ``D = {D_{p*}}`` of Section 4 (Figure 2).

The hard input ``P`` is a union of ``t`` translated copies ("blocks") of
the integer grid ``M = (Z_s)^d``; block ``i`` is translated by
``w_i = (i * 2s, 0, ..., 0)``.  The metric space adds one extra,
*non-Euclidean* point ``q`` (the adversary's future query) whose distances
depend on a secret choice ``p* in P``:

* ``D_{p*}(p1, p2) = L_inf(p1, p2)``          for ``p1, p2 in P``;
* ``D_{p*}(p, q)  = L_inf(p, w*)``            for ``p`` outside ``p*``'s block;
* ``D_{p*}(p, q)  = s``                        for ``p != p*`` inside the block;
* ``D_{p*}(p*, q) = s - 1``;
* ``D_{p*}(q, q)  = 0``,

where ``w*`` is the translation vector of the block containing ``p*``
(itself a point of that block).  Lemma 4.1 proves every ``D_{p*}`` is a
metric with doubling dimension at most ``log2(1 + 2^d)``.

Crucially, every member of the family agrees on all distances **within**
``P`` — an index-construction algorithm that can only probe points of
``P`` cannot distinguish them, which is what powers the adversary argument
(see :mod:`repro.lowerbounds.adversary`).

Representation: points are integer ids.  Ids ``0..n-1`` are the points of
``P`` (with coordinate rows in :attr:`coords`); the id :attr:`query_id`
(= n) is the phantom point ``q``.  Until the adversary commits to ``p*``
via :meth:`commit`, any distance involving ``q`` raises
:class:`AdversaryNotCommittedError`, modelling the information barrier.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["BlockAdversarialMetric", "AdversaryNotCommittedError"]


class AdversaryNotCommittedError(RuntimeError):
    """Raised when a distance involving the phantom query point ``q`` is
    requested before the adversary has fixed ``p*``.

    The construction algorithm only ever sees distances within ``P``
    (Section 4: "the algorithm can evaluate only the distances between the
    points in P, but not the distance between q and any p in P").
    """


class BlockAdversarialMetric(MetricSpace):
    """One member (or the uncommitted family) of ``D = {D_{p*}}``.

    Parameters
    ----------
    side:
        ``s >= 2``, the grid side length of each block.
    copies:
        ``t >= 1``, the number of translated blocks.
    dim:
        ``d >= 1``, the grid dimensionality.
    p_star:
        Optional id of ``p*``; ``None`` leaves the family uncommitted.
    """

    def __init__(self, side: int, copies: int, dim: int, p_star: int | None = None):
        if side < 2:
            raise ValueError("side s must be >= 2")
        if copies < 1:
            raise ValueError("copies t must be >= 1")
        if dim < 1:
            raise ValueError("dim d must be >= 1")
        self.side = int(side)
        self.copies = int(copies)
        self.dim = int(dim)

        s, t, d = self.side, self.copies, self.dim
        block_size = s**d
        self.block_size = block_size
        self.n = block_size * t
        self.query_id = self.n

        # Coordinates of all points of P, block-major: point id
        # b * block_size + j is grid cell j of block b.
        grid = np.stack(
            np.meshgrid(*([np.arange(s)] * d), indexing="ij"), axis=-1
        ).reshape(-1, d)
        blocks = []
        for b in range(t):
            shifted = grid.copy()
            shifted[:, 0] += b * 2 * s
            blocks.append(shifted)
        self.coords = np.concatenate(blocks, axis=0).astype(np.int64)
        self.block_of = np.repeat(np.arange(t, dtype=np.int64), block_size)

        # Translation vectors w_i (each is the first point of its block).
        self.w_coords = np.zeros((t, d), dtype=np.int64)
        self.w_coords[:, 0] = 2 * s * np.arange(t)

        self.p_star: int | None = None
        if p_star is not None:
            self.commit(p_star)

    # ------------------------------------------------------------------

    def commit(self, p_star: int) -> "BlockAdversarialMetric":
        """Fix the secret ``p*``, finalizing ``D`` to ``D_{p*}``."""
        p_star = int(p_star)
        if not 0 <= p_star < self.n:
            raise ValueError("p_star must be a point id of P")
        self.p_star = p_star
        return self

    @property
    def star_block(self) -> int:
        """Index of ``w*``'s block (requires a committed ``p*``)."""
        if self.p_star is None:
            raise AdversaryNotCommittedError("p* has not been chosen")
        return int(self.block_of[self.p_star])

    def point_ids(self) -> np.ndarray:
        """Ids of the points of ``P`` (excluding the phantom ``q``)."""
        return np.arange(self.n, dtype=np.int64)

    def block_members(self, block: int) -> np.ndarray:
        """Ids of the points in the given block."""
        lo = block * self.block_size
        return np.arange(lo, lo + self.block_size, dtype=np.int64)

    # ------------------------------------------------------------------

    def _linf_rows(self, a_row: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return np.abs(rows - a_row[None, :]).max(axis=1).astype(np.float64)

    def _query_distances(self, ids: np.ndarray) -> np.ndarray:
        """``D_{p*}(q, p)`` for each data id in ``ids``."""
        if self.p_star is None:
            raise AdversaryNotCommittedError(
                "distance to q requested before the adversary committed to p*"
            )
        s = float(self.side)
        w_star = self.w_coords[self.star_block]
        out = self._linf_rows(w_star, self.coords[ids])
        in_star_block = self.block_of[ids] == self.star_block
        out[in_star_block] = s
        out[ids == self.p_star] = s - 1.0
        return out

    def distance(self, a: int, b: int) -> float:
        a, b = int(a), int(b)
        if a == b:
            return 0.0
        if a == self.query_id and b == self.query_id:
            return 0.0
        if a == self.query_id:
            return float(self._query_distances(np.array([b]))[0])
        if b == self.query_id:
            return float(self._query_distances(np.array([a]))[0])
        return float(np.abs(self.coords[a] - self.coords[b]).max())

    def distances(self, a: int, batch: np.ndarray) -> np.ndarray:
        a = int(a)
        batch = np.asarray(batch, dtype=np.int64)
        is_q = batch == self.query_id
        out = np.empty(len(batch), dtype=np.float64)
        if a == self.query_id:
            if is_q.any():
                out[is_q] = 0.0
            rest = ~is_q
            if rest.any():
                out[rest] = self._query_distances(batch[rest])
            return out
        if is_q.any():
            out[is_q] = self._query_distances(np.array([a]))[0]
        rest = ~is_q
        if rest.any():
            out[rest] = self._linf_rows(self.coords[a], self.coords[batch[rest]])
        return out

    # ------------------------------------------------------------------

    def theoretical_epsilon(self) -> float:
        """The ``epsilon = 1/(2s)`` for which Statement (2) applies."""
        return 1.0 / (2 * self.side)

    def doubling_dimension_bound(self) -> float:
        """Lemma 4.1's bound ``log2(1 + 2^d)`` on the doubling dimension."""
        return float(np.log2(1 + 2**self.dim))
