"""Shared-memory point arenas — zero-copy datasets across processes.

The sharded index partitions one ``(n, d)`` coordinate array into K
contiguous row ranges and hands each range to a worker process.  Copying
the rows into every task would serialize the whole collection through
pickle; instead the parent writes the (shard-grouped) array **once**
into a :class:`multiprocessing.shared_memory.SharedMemory` block and
ships only a tiny picklable :class:`ArenaSpec`.  Workers attach to the
block by name and build numpy views — no bytes move, under ``fork`` and
``spawn`` alike.

Lifecycle: exactly one process (the creating parent) *owns* the block
and eventually unlinks it; every attacher only closes its mapping.
:class:`SharedArena` is a context manager on the owning side, and
:func:`attach` returns a handle whose ``close()`` the worker calls when
its task ends (the entry points in :mod:`repro.graphs.engine` and
:mod:`repro.core.sharded` do this in ``finally`` blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = ["ArenaSpec", "SharedArena", "AttachedArena", "attach"]


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to attach: name, shape, dtype string.

    A frozen dataclass of primitives — picklable under every start
    method, and hashable so worker-side caches can key on it.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))


def _as_view(shm: shared_memory.SharedMemory, spec: ArenaSpec) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)


class SharedArena:
    """The owning side of a shared-memory point array.

    Create with :meth:`create` (copies the points in once); pass
    ``arena.spec`` to workers; call :meth:`close` (or use as a context
    manager) when every consumer is done — closing the owner also
    unlinks the block.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec):
        self._shm = shm
        self.spec = spec
        self.array = _as_view(shm, spec)

    @classmethod
    def create(cls, points: np.ndarray) -> "SharedArena":
        points = np.ascontiguousarray(points)
        if points.dtype == object or not np.issubdtype(points.dtype, np.number):
            raise NotImplementedError(
                "shared arenas hold numeric coordinate arrays only "
                f"(got dtype {points.dtype})"
            )
        # Ownership transfers to the returned SharedArena, whose
        # close() unlinks the segment — a finally here would tear down
        # the block on the success path too.
        shm = shared_memory.SharedMemory(  # repro: ignore[arena-hygiene]
            create=True, size=max(points.nbytes, 1)
        )
        try:
            spec = ArenaSpec(shm.name, points.shape, points.dtype.str)
            arena = cls(shm, spec)
            arena.array[...] = points
        except BaseException:
            # The segment would otherwise outlive the failed create —
            # /dev/shm has no garbage collector.
            shm.close()
            shm.unlink()
            raise
        return arena

    def view(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy view of rows ``start:stop`` (the parent-side shard view)."""
        return self.array[start:stop]

    def close(self) -> None:
        """Release the owner's mapping and unlink the block."""
        if self._shm is None:
            return
        self.array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class AttachedArena:
    """A worker-side attachment: the array view plus its ``close()``."""

    def __init__(self, spec: ArenaSpec):
        self._shm = shared_memory.SharedMemory(name=spec.name)
        self.array = _as_view(self._shm, spec)

    def view(self, start: int, stop: int) -> np.ndarray:
        return self.array[start:stop]

    def close(self) -> None:
        if self._shm is None:
            return
        self.array = None
        self._shm.close()
        self._shm = None


def attach(spec: ArenaSpec) -> AttachedArena:
    """Attach to an arena created by another process (never unlinks)."""
    return AttachedArena(spec)
