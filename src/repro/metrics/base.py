"""Metric-space abstractions.

The paper (Section 1.1) works in an abstract metric space ``(M, D)`` where
``D`` satisfies identity of indiscernibles, symmetry, and the triangle
inequality, and is computable in constant time.  Everything downstream —
r-nets, proximity graphs, the greedy search — consumes distances through
the :class:`MetricSpace` interface defined here.

Design notes
------------
* A *point* is whatever representation the concrete metric understands:
  a ``(d,)`` float array for Euclidean metrics, an integer leaf id for the
  tree metric of Section 3, an integer point id for the adversarial family
  of Section 4.  The only contract is that a *batch* of points can be held
  in a numpy array (or an object the metric can index), so that
  :meth:`MetricSpace.distances` can vectorize.
* The paper measures query time as the **number of distance evaluations**
  (Section 1.1: "distance calculation is the bottleneck of greedy").  The
  :class:`~repro.metrics.counting.CountingMetric` wrapper implements that
  accounting; algorithms never count on their own.
* :class:`Dataset` couples a metric with an indexed point collection and
  is the object most algorithms take: graphs store vertex *indices*, and
  the dataset answers index-based and query-point-based distance batches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = [
    "MetricSpace",
    "Dataset",
    "ScaledMetric",
    "ExplicitMatrixMetric",
]


class MetricSpace(ABC):
    """Abstract distance function ``D`` of a metric space ``(M, D)``.

    Subclasses implement :meth:`distance` (scalar) and should override
    :meth:`distances` (one-to-many batch) with a vectorized version —
    the default loops over :meth:`distance`.
    """

    @abstractmethod
    def distance(self, a: Any, b: Any) -> float:
        """Return ``D(a, b)``."""

    def distances(self, a: Any, batch: Any) -> np.ndarray:
        """Return ``[D(a, b) for b in batch]`` as a float64 array.

        ``batch`` is a numpy array of points in the metric's native
        representation (rows for Euclidean points, entries for id-based
        metrics).  Subclasses override this with vectorized code.
        """
        return np.array([self.distance(a, b) for b in batch], dtype=np.float64)

    def distances_many(self, queries: Any, batch: Any, lens: np.ndarray) -> np.ndarray:
        """Segmented many-to-many distances — the batch engine primitive.

        ``queries`` holds one query point per segment, ``batch`` is the
        flat concatenation of all segments' target points, and ``lens``
        gives each segment's length (so ``len(batch) == lens.sum()``).
        Returns the flat float64 array whose segment ``i`` is
        ``[D(queries[i], b) for b in segment_i]``.

        The default delegates each segment to :meth:`distances`, which
        guarantees the per-element results are *bit-identical* to what a
        scalar search loop would compute — the batch engine relies on
        that.  Coordinate metrics override with a single vectorized
        evaluation over the whole flat batch.
        """
        lens = np.asarray(lens, dtype=np.int64)
        out = np.empty(int(lens.sum()), dtype=np.float64)
        pos = 0
        for q, ln in zip(queries, lens):
            ln = int(ln)
            out[pos : pos + ln] = self.distances(q, batch[pos : pos + ln])
            pos += ln
        return out

    def cross_distances(self, queries: Any, batch: Any) -> np.ndarray:
        """Full ``(len(queries), len(batch))`` query-to-point matrix.

        Used by ground-truth computation (exact NN of every query by
        linear scan).  The default runs one :meth:`distances` row per
        query; the Euclidean metric overrides it with a BLAS-backed Gram
        expansion.
        """
        out = np.empty((len(queries), len(batch)), dtype=np.float64)
        for i, q in enumerate(queries):
            out[i, :] = self.distances(q, batch)
        return out

    def pairwise(self, batch: Any) -> np.ndarray:
        """Return the full symmetric distance matrix of ``batch``.

        Intended for tests and small inputs; quadratic in ``len(batch)``.
        """
        m = len(batch)
        out = np.zeros((m, m), dtype=np.float64)
        for i in range(m):
            out[i, :] = self.distances(batch[i], batch)
        return out

    # ------------------------------------------------------------------
    # Axiom checkers (used by tests; exact arithmetic not assumed, so a
    # relative tolerance is accepted for the triangle inequality).
    # ------------------------------------------------------------------

    def check_axioms(self, batch: Sequence[Any], rtol: float = 1e-9) -> None:
        """Raise ``AssertionError`` if the metric axioms fail on ``batch``.

        Checks identity of indiscernibles, symmetry, non-negativity and
        the triangle inequality over all triples of the sample.  Meant for
        test suites; cost is cubic in ``len(batch)``.
        """
        m = len(batch)
        mat = self.pairwise(batch)
        if (mat < 0).any():
            raise AssertionError("negative distance found")
        if not np.allclose(mat, mat.T, rtol=rtol):
            raise AssertionError("distance function is not symmetric")
        for i in range(m):
            if mat[i, i] != 0.0:
                raise AssertionError(f"D(p, p) != 0 at index {i}")
        slack = rtol * (1.0 + mat.max())
        for k in range(m):
            # D(i, j) <= D(i, k) + D(k, j) for all i, j — vectorized per k.
            via_k = mat[:, k][:, None] + mat[k, :][None, :]
            if (mat > via_k + slack).any():
                i, j = np.unravel_index(np.argmax(mat - via_k), mat.shape)
                raise AssertionError(
                    f"triangle inequality violated: D({i},{j})={mat[i, j]} "
                    f"> D({i},{k})+D({k},{j})={via_k[i, j]}"
                )


class Dataset:
    """A finite point set ``P`` from a metric space, indexable by id.

    Graph algorithms operate on vertex indices ``0..n-1``; the dataset
    translates index-level requests into metric evaluations.  ``points``
    must support numpy fancy indexing (``points[idx_array]``), which holds
    for ``(n, d)`` coordinate arrays and for 1-D id arrays alike.
    """

    def __init__(self, metric: MetricSpace, points: Any):
        if len(points) < 2:
            raise ValueError("a dataset needs at least 2 points (paper: n >= 2)")
        self.metric = metric
        self.points = points
        self.n = len(points)

    # -- index-based ---------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """``D(p_i, p_j)`` for data point indices ``i``, ``j``."""
        return self.metric.distance(self.points[i], self.points[j])

    def distances_from_index(self, i: int, idx: np.ndarray) -> np.ndarray:
        """Distances from data point ``i`` to the data points in ``idx``."""
        return self.metric.distances(self.points[i], self.points[idx])

    def distances_from_index_to_all(self, i: int) -> np.ndarray:
        """Distances from data point ``i`` to every data point."""
        return self.metric.distances(self.points[i], self.points)

    # -- query-point-based ----------------------------------------------

    def distance_to_query(self, q: Any, i: int) -> float:
        """``D(q, p_i)`` for an arbitrary query point ``q`` of ``M``."""
        return self.metric.distance(q, self.points[i])

    def distances_to_query(self, q: Any, idx: np.ndarray) -> np.ndarray:
        """Distances from query ``q`` to the data points in ``idx``."""
        return self.metric.distances(q, self.points[idx])

    def distances_to_queries(
        self, queries: Any, idx: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        """Segmented batch: distances from ``queries[i]`` to the data
        points of segment ``i`` of ``idx`` (segment lengths in ``lens``).
        One call serves a whole lockstep hop of the batch engine."""
        return self.metric.distances_many(
            queries, self.points[np.asarray(idx, dtype=np.intp)], lens
        )

    def distances_to_query_all(self, q: Any) -> np.ndarray:
        """Distances from query ``q`` to every data point."""
        return self.metric.distances(q, self.points)

    # -- exact search (oracle; linear scan) -------------------------------

    def nearest_neighbor(self, q: Any) -> tuple[int, float]:
        """Exact NN of ``q`` by linear scan: ``(index, distance)``."""
        dists = self.distances_to_query_all(q)
        i = int(np.argmin(dists))
        return i, float(dists[i])

    def diameter(self) -> float:
        """Exact ``diam(P)`` by full pairwise scan (quadratic; small n)."""
        best = 0.0
        for i in range(self.n):
            best = max(best, float(self.distances_from_index_to_all(i).max()))
        return best

    def min_interpoint_distance(self) -> float:
        """Exact smallest inter-point distance (quadratic; small n)."""
        best = np.inf
        for i in range(self.n):
            d = self.distances_from_index_to_all(i)
            d[i] = np.inf
            best = min(best, float(d.min()))
        return best

    def aspect_ratio(self) -> float:
        """Exact aspect ratio ``diam(P) / min inter-point distance``."""
        return self.diameter() / self.min_interpoint_distance()


class ScaledMetric(MetricSpace):
    """``D'(a, b) = factor * D(a, b)`` — used to normalize the minimum
    inter-point distance to 2 as Section 2.1 assumes.

    Scaling preserves all metric axioms and the doubling dimension, and
    multiplies every distance (hence the diameter) by the same factor, so
    the aspect ratio is unchanged.
    """

    def __init__(self, inner: MetricSpace, factor: float):
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        self.inner = inner
        self.factor = float(factor)

    def distance(self, a: Any, b: Any) -> float:
        return self.factor * self.inner.distance(a, b)

    def distances(self, a: Any, batch: Any) -> np.ndarray:
        return self.factor * self.inner.distances(a, batch)

    def distances_many(self, queries: Any, batch: Any, lens: np.ndarray) -> np.ndarray:
        return self.factor * self.inner.distances_many(queries, batch, lens)

    def cross_distances(self, queries: Any, batch: Any) -> np.ndarray:
        return self.factor * self.inner.cross_distances(queries, batch)

    def pairwise(self, batch: Any) -> np.ndarray:
        return self.factor * self.inner.pairwise(batch)


class ExplicitMatrixMetric(MetricSpace):
    """A metric given by an explicit ``n x n`` distance matrix.

    Points are integer ids ``0..n-1``.  Useful for tests and for small
    hand-crafted metric spaces.  The constructor validates symmetry and
    zero diagonal; triangle inequality validation is opt-in (cubic).
    """

    def __init__(self, matrix: np.ndarray, validate_triangle: bool = False):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("distance matrix must be square")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("distance matrix must be symmetric")
        if not np.all(np.diag(matrix) == 0):
            raise ValueError("distance matrix must have zero diagonal")
        if (matrix < 0).any():
            raise ValueError("distances must be non-negative")
        self.matrix = matrix
        if validate_triangle:
            self.check_axioms(np.arange(len(matrix)))

    def distance(self, a: int, b: int) -> float:
        return float(self.matrix[int(a), int(b)])

    def distances(self, a: int, batch: np.ndarray) -> np.ndarray:
        return self.matrix[int(a), np.asarray(batch, dtype=np.intp)].astype(
            np.float64, copy=False
        )

    def distances_many(
        self, queries: np.ndarray, batch: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        rows = np.repeat(np.asarray(queries, dtype=np.intp), np.asarray(lens))
        return self.matrix[rows, np.asarray(batch, dtype=np.intp)].astype(
            np.float64, copy=False
        )

    def cross_distances(self, queries: np.ndarray, batch: np.ndarray) -> np.ndarray:
        rows = np.asarray(queries, dtype=np.intp)
        cols = np.asarray(batch, dtype=np.intp)
        return self.matrix[np.ix_(rows, cols)].astype(np.float64, copy=False)
