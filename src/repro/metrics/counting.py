"""Distance-evaluation accounting.

The paper defines query time as the number of distance computations
(Section 1.1: a "Q query time" guarantee translates into an ``O(Q)``
running time "because distance calculation is the bottleneck of greedy").
Algorithms in this library therefore never count work themselves; wrapping
the metric in :class:`CountingMetric` makes every scalar evaluation — and
every element of a batch evaluation — tick a shared counter.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["CountingMetric"]


class CountingMetric(MetricSpace):
    """Transparent wrapper that counts distance evaluations.

    A batch request of ``m`` points counts as ``m`` evaluations, matching
    the paper's accounting (each out-neighbor of a hop vertex costs one
    distance computation regardless of vectorization).
    """

    def __init__(self, inner: MetricSpace):
        self.inner = inner
        self.count = 0

    def reset(self) -> int:
        """Zero the counter, returning the previous value."""
        old, self.count = self.count, 0
        return old

    def distance(self, a: Any, b: Any) -> float:
        self.count += 1
        return self.inner.distance(a, b)

    def distances(self, a: Any, batch: Any) -> np.ndarray:
        out = self.inner.distances(a, batch)
        self.count += len(out)
        return out

    def distances_many(self, queries: Any, batch: Any, lens: Any) -> np.ndarray:
        out = self.inner.distances_many(queries, batch, lens)
        self.count += len(out)
        return out

    def cross_distances(self, queries: Any, batch: Any) -> np.ndarray:
        out = self.inner.cross_distances(queries, batch)
        self.count += out.shape[0] * out.shape[1]
        return out

    def pairwise(self, batch: Any) -> np.ndarray:
        out = self.inner.pairwise(batch)
        self.count += out.shape[0] * out.shape[1]
        return out
