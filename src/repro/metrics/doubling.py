"""Doubling-dimension tooling: the packing bound (Fact 2.3) and empirical
estimators.

Fact 2.3 is the workhorse of every size/degree analysis in the paper: any
subset ``X`` of a metric space with doubling dimension ``lambda`` and
aspect ratio ``A`` has ``|X| <= (8A)^lambda`` points.  We expose the bound
itself (for tests asserting the degree analyses of Sections 2.3 and 2.4)
and a sampling estimator of the doubling constant of a finite dataset.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.base import Dataset

__all__ = [
    "packing_bound",
    "check_packing",
    "estimate_doubling_constant",
    "greedy_half_radius_cover",
]


def packing_bound(aspect_ratio: float, doubling_dimension: float) -> float:
    """Fact 2.3's explicit bound ``(8A)^lambda`` on the size of a subset
    with aspect ratio ``A`` in a ``lambda``-doubling space."""
    if aspect_ratio < 1:
        raise ValueError("aspect ratio is at least 1 by definition")
    return (8.0 * aspect_ratio) ** doubling_dimension


def check_packing(
    subset_size: int, aspect_ratio: float, doubling_dimension: float
) -> bool:
    """``True`` iff ``subset_size`` respects Fact 2.3 for the given
    parameters."""
    return subset_size <= packing_bound(aspect_ratio, doubling_dimension)


def greedy_half_radius_cover(
    dataset: Dataset, ball_member_ids: np.ndarray, radius: float
) -> list[int]:
    """Greedily cover the points ``ball_member_ids`` with balls of radius
    ``radius / 2`` centered at member points; return the chosen centers.

    Greedy set cover with centers restricted to the set itself needs at
    most ``2^(2*lambda)`` balls when the true doubling dimension is
    ``lambda`` (centers in ``M`` would need ``2^lambda``), so the estimate
    of :func:`estimate_doubling_constant` is at most twice the truth —
    fine for sanity checks on workloads.
    """
    remaining = list(map(int, ball_member_ids))
    centers: list[int] = []
    while remaining:
        c = remaining[0]
        centers.append(c)
        dists = dataset.distances_from_index(c, np.array(remaining, dtype=np.intp))
        remaining = [p for p, dist in zip(remaining, dists) if dist > radius / 2.0]
    return centers


def estimate_doubling_constant(
    dataset: Dataset,
    rng: np.random.Generator,
    trials: int = 32,
) -> float:
    """Estimate ``log2`` of the doubling constant of ``dataset`` by random
    ball sampling.

    For each trial: pick a random center ``p`` and a random radius between
    the center's nearest-neighbor distance and its eccentricity, collect
    the ball members, greedily cover them with half-radius balls, and
    record ``log2`` of the cover size.  The maximum over trials is an
    (up-to-factor-2, see :func:`greedy_half_radius_cover`) empirical
    stand-in for the doubling dimension of the *dataset* — useful for
    characterizing workloads in benches, not a certified bound.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    worst = 0.0
    for _ in range(trials):
        center = int(rng.integers(dataset.n))
        row = dataset.distances_from_index_to_all(center)
        row_wo_self = np.delete(row, center)
        lo, hi = float(row_wo_self.min()), float(row.max())
        if hi <= 0:
            continue
        lo = max(lo, hi * 1e-9)
        radius = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        members = np.flatnonzero(row <= radius)
        if len(members) < 2:
            continue
        cover = greedy_half_radius_cover(dataset, members, radius)
        worst = max(worst, math.log2(len(cover)))
    return worst
