"""Euclidean and related norm-induced metrics on ``R^d``.

The paper's Theorem 1.3 lives in ``(R^d, L2)`` with constant ``d``; the
Section 4 lower bound uses ``L_inf`` between grid points.  Points are
``(d,)`` float64 arrays and batches are ``(m, d)`` arrays, so all methods
vectorize with numpy.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["EuclideanMetric", "ChebyshevMetric", "MinkowskiMetric"]


class EuclideanMetric(MetricSpace):
    """The ``L2`` metric on ``R^d``.

    The doubling dimension of ``(R^d, L2)`` is ``Theta(d)`` (the paper
    uses ``d <= lambda = O(d)``), so algorithms parameterized by the
    doubling dimension may take ``d`` as a proxy.
    """

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.sqrt(np.dot(diff, diff)))

    def distances(self, a: np.ndarray, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        diff = batch - np.asarray(a, dtype=np.float64)[None, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def distances_many(
        self, queries: np.ndarray, batch: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        # One flat evaluation for a whole lockstep hop.  The row-wise
        # einsum reduction is per-row independent, so each element is
        # bit-identical to the per-segment `distances` result above.
        queries = np.asarray(queries, dtype=np.float64)
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        if queries.ndim == 1:
            queries = queries[None, :]
        diff = batch - np.repeat(queries, np.asarray(lens), axis=0)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def cross_distances(self, queries: np.ndarray, batch: np.ndarray) -> np.ndarray:
        # ||q - p||^2 = ||q||^2 + ||p||^2 - 2 q.p with the cross term as
        # one BLAS GEMM — the fast ground-truth path.
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        q_sq = np.einsum("ij,ij->i", queries, queries)
        b_sq = np.einsum("ij,ij->i", batch, batch)
        d2 = q_sq[:, None] + b_sq[None, :] - 2.0 * (queries @ batch.T)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)

    def pairwise(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch, dtype=np.float64)
        # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped against fp noise.
        sq = np.einsum("ij,ij->i", batch, batch)
        gram = batch @ batch.T
        d2 = sq[:, None] + sq[None, :] - 2.0 * gram
        np.maximum(d2, 0.0, out=d2)
        np.fill_diagonal(d2, 0.0)
        return np.sqrt(d2)


class ChebyshevMetric(MetricSpace):
    """The ``L_inf`` metric on ``R^d`` (doubling dimension exactly ``d``).

    Used by the Section 4 hard instance, whose intra-``P`` distances are
    ``L_inf`` between integer grid points.
    """

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        return float(np.abs(a - b).max())

    def distances(self, a: np.ndarray, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        return np.abs(batch - np.asarray(a, dtype=np.float64)[None, :]).max(axis=1)

    def distances_many(
        self, queries: np.ndarray, batch: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        return np.abs(batch - np.repeat(queries, np.asarray(lens), axis=0)).max(axis=1)


class MinkowskiMetric(MetricSpace):
    """The ``Lp`` metric on ``R^d`` for ``p >= 1``.

    Provided for workload variety (the theory of Sections 2-4 applies to
    any metric of bounded doubling dimension, which every fixed-``d``
    ``Lp`` space has).
    """

    def __init__(self, p: float):
        if p < 1:
            raise ValueError("Lp is a metric only for p >= 1")
        self.p = float(p)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
        return float((diff**self.p).sum() ** (1.0 / self.p))

    def distances(self, a: np.ndarray, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        diff = np.abs(batch - np.asarray(a, dtype=np.float64)[None, :])
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def distances_many(
        self, queries: np.ndarray, batch: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        diff = np.abs(batch - np.repeat(queries, np.asarray(lens), axis=0))
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)
