"""Normalization and spread estimation (Section 2.1 and the Section 2.4 remark).

The constructions of Sections 2 and 5 assume the smallest inter-point
distance of ``P`` is exactly 2, so that the aspect ratio is
``Delta = diam(P) / 2`` and the net hierarchy has levels ``0..h`` with
``h = ceil(log2 diam(P))``.  This module provides:

* :func:`normalize_min_distance` — wrap a metric so the minimum inter-point
  distance becomes 2 (a pure rescaling; preserves axioms, doubling
  dimension, and aspect ratio);
* :func:`estimate_extremes` — the remark of Section 2.4 (footnote 1): from
  ``n`` ANN queries obtain ``d_min_hat in [d_min/2, d_min]`` and
  ``d_max_hat in [d_max, 2*d_max]`` without a quadratic scan, so the
  algorithm never needs the exact ``d_min``/``diam(P)``;
* :func:`spread_parameters` — the derived ``(h, Delta)`` the builders use.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.metrics.base import Dataset, ScaledMetric

__all__ = [
    "normalize_min_distance",
    "estimate_extremes",
    "spread_parameters",
    "SpreadEstimate",
]


class SpreadEstimate:
    """Estimated distance extremes of a dataset.

    ``d_min_hat`` lies in ``[d_min/2, d_min]`` and ``d_max_hat`` in
    ``[d_max, 2*d_max]``, so ``aspect_ratio_hat = d_max_hat / d_min_hat``
    overestimates the true aspect ratio by a factor of at most 4 — exactly
    the guarantee the Section 2.4 remark supplies.
    """

    def __init__(self, d_min_hat: float, d_max_hat: float):
        if not 0 < d_min_hat <= d_max_hat:
            raise ValueError("need 0 < d_min_hat <= d_max_hat")
        self.d_min_hat = float(d_min_hat)
        self.d_max_hat = float(d_max_hat)

    @property
    def aspect_ratio_hat(self) -> float:
        return self.d_max_hat / self.d_min_hat

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SpreadEstimate(d_min_hat={self.d_min_hat}, "
            f"d_max_hat={self.d_max_hat})"
        )


def estimate_extremes(
    dataset: Dataset,
    second_nearest: Callable[[int], float] | None = None,
) -> SpreadEstimate:
    """Estimate ``d_min`` and ``d_max`` per the Section 2.4 remark.

    ``d_max_hat``: pick any point ``p0`` and set ``2 * max_p D(p0, p)`` —
    by the triangle inequality this is within ``[d_max, 2*d_max]``.

    ``d_min_hat``: for each point ``p`` record the distance to a 2-ANN of
    ``p`` among ``P - {p}`` (the paper builds a dynamic 2-ANN structure;
    pass its query as ``second_nearest``), then halve the smallest record.
    Each record is within ``[d_min_p, 2*d_min_p]`` of ``p``'s true nearest
    distance, so the halved minimum is within ``[d_min/2, d_min]``.  The
    default implementation is an exact vectorized scan (a valid 2-ANN).
    """
    n = dataset.n
    row0 = dataset.distances_from_index_to_all(0)
    d_max_hat = 2.0 * float(row0.max())

    if second_nearest is None:

        def second_nearest(i: int) -> float:
            row = dataset.distances_from_index_to_all(i)
            row[i] = np.inf
            return float(row.min())

    smallest = min(second_nearest(i) for i in range(n))
    if smallest <= 0:
        raise ValueError("dataset contains duplicate points (d_min = 0)")
    return SpreadEstimate(d_min_hat=smallest / 2.0, d_max_hat=d_max_hat)


def normalize_min_distance(
    dataset: Dataset,
    target: float = 2.0,
    spread: SpreadEstimate | None = None,
) -> tuple[Dataset, float]:
    """Return a dataset whose metric is rescaled so the minimum inter-point
    distance is (approximately) ``target``, plus the factor applied.

    With an exact ``d_min`` the minimum becomes exactly ``target``; with a
    :class:`SpreadEstimate` it lands in ``[target, 2*target]``, which every
    construction in the paper tolerates (constants absorb the factor 2).
    """
    d_min = spread.d_min_hat if spread is not None else None
    if d_min is None:
        d_min = float(
            min(
                _row_min_excluding_self(dataset, i)
                for i in range(dataset.n)
            )
        )
    if d_min <= 0:
        raise ValueError("dataset contains duplicate points (d_min = 0)")
    # The 1e-12 headroom keeps the *recomputed* minimum at or above the
    # target despite float rounding — the net hierarchy relies on every
    # insertion distance clearing 2^1 exactly when the input is normalized.
    factor = (target / d_min) * (1.0 + 1e-12)
    scaled = Dataset(ScaledMetric(dataset.metric, factor), dataset.points)
    return scaled, factor


def _row_min_excluding_self(dataset: Dataset, i: int) -> float:
    row = dataset.distances_from_index_to_all(i)
    row[i] = np.inf
    return float(row.min())


def spread_parameters(diameter: float) -> tuple[int, float]:
    """Derive ``(h, Delta)`` from the (possibly estimated) diameter of a
    dataset already normalized to minimum inter-point distance 2.

    ``h = ceil(log2 diam(P))`` per equation (1) and ``Delta = diam(P)/2``
    per Section 2.1.
    """
    if diameter < 2:
        raise ValueError("normalized dataset must have diameter >= 2")
    h = max(1, math.ceil(math.log2(diameter)))
    return h, diameter / 2.0
