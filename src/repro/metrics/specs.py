"""Picklable metric specs — the spawn-safe wire form of a metric.

A *spec* is a small JSON-safe dict describing a coordinate metric
(Euclidean / Chebyshev / Minkowski, optionally wrapped in the
normalization :class:`~repro.metrics.base.ScaledMetric`).  Specs serve
two consumers:

* **persistence** (:mod:`repro.core.persistence`) embeds them in the
  saved index header so a load reconstructs the exact metric;
* **process workers** (the sharded build/search pools) receive a spec
  instead of a live metric object, so shard tasks stay picklable under
  *any* multiprocessing start method — including ``spawn``, where
  nothing is inherited from the parent.

The supported family is closed by construction: anything else (counting
wrappers, tree metrics, explicit matrices, user subclasses) has no
faithful wire form here and raises :class:`NotImplementedError` rather
than being pickled silently.
"""

from __future__ import annotations

from typing import Any

from repro.metrics.base import MetricSpace, ScaledMetric
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric

__all__ = ["metric_to_spec", "metric_from_spec"]


def metric_to_spec(metric: MetricSpace) -> dict[str, Any]:
    """JSON/pickle-safe spec of a coordinate metric, or ``NotImplementedError``."""
    if isinstance(metric, EuclideanMetric):
        return {"kind": "euclidean"}
    if isinstance(metric, ChebyshevMetric):
        return {"kind": "chebyshev"}
    if isinstance(metric, MinkowskiMetric):
        return {"kind": "minkowski", "p": float(metric.p)}
    if isinstance(metric, ScaledMetric):
        return {
            "kind": "scaled",
            "factor": float(metric.factor),
            "inner": metric_to_spec(metric.inner),
        }
    raise NotImplementedError(
        f"cannot save an index over {type(metric).__name__}: only coordinate "
        "metrics (EuclideanMetric, ChebyshevMetric, MinkowskiMetric, "
        "optionally ScaledMetric-wrapped) can be serialized"
    )


def metric_from_spec(spec: dict[str, Any]) -> MetricSpace:
    """Inverse of :func:`metric_to_spec`."""
    kind = spec.get("kind")
    if kind == "euclidean":
        return EuclideanMetric()
    if kind == "chebyshev":
        return ChebyshevMetric()
    if kind == "minkowski":
        return MinkowskiMetric(spec["p"])
    if kind == "scaled":
        return ScaledMetric(metric_from_spec(spec["inner"]), spec["factor"])
    raise ValueError(f"unknown metric spec {spec!r}")
