"""The tree metric underlying the Section 3 lower bound (Figure 1).

The paper builds a metric space from a complete binary tree ``T`` with
``2 * Delta`` leaves (``h + 1`` levels, ``h = log2(2 * Delta)``, leaves at
level 0).  Each tree edge from a parent to a child ``v`` weighs 1 if ``v``
is a leaf and ``2^(level(v) - 1)`` otherwise.  ``M`` is the set of leaves
and ``D`` is the path weight, which collapses to the closed form

    ``D(v1, v2) = 2^ell``  where ``ell`` is the level of ``LCA(v1, v2)``,

for distinct leaves (and 0 otherwise).  The space is an ultrametric: for
any three leaves, the two largest pairwise distances are equal, which is
strictly stronger than the triangle inequality.  Its doubling dimension is
exactly 1 (Appendix C): any ball equals the leaf set of some subtree and
splits into the two child subtrees' leaf balls of half the radius.

Leaves are represented as integers ``0 .. 2*Delta - 1`` in left-to-right
order, so the LCA level of two distinct leaves is simply the bit length of
``v1 XOR v2`` — the construction is purely arithmetic, no tree object is
materialized.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["TreeMetric", "lca_level"]

_MAX_HEIGHT = 62  # leaf ids must fit in int64


def lca_level(v1: int, v2: int) -> int:
    """Level (counted from the leaves, which sit at level 0) of the lowest
    common ancestor of leaves ``v1`` and ``v2`` in a complete binary tree.

    Equals the bit length of ``v1 XOR v2``: two leaves agree on all bit
    positions above the LCA level and first differ at bit ``level - 1``.
    """
    return int(int(v1) ^ int(v2)).bit_length()


class TreeMetric(MetricSpace):
    """Ultrametric on the leaves of a complete binary tree of height ``h``.

    Parameters
    ----------
    height:
        Number of edge-levels ``h``; the tree has ``2^h`` leaves and the
        diameter of the leaf set is ``2^h``.  With the paper's convention
        ``2 * Delta = 2^h`` leaves, i.e. ``Delta = 2^(h-1)``.
    """

    #: Doubling dimension of this metric space (proved in Appendix C).
    DOUBLING_DIMENSION = 1.0

    def __init__(self, height: int):
        if not 1 <= height <= _MAX_HEIGHT:
            raise ValueError(f"height must be in [1, {_MAX_HEIGHT}]")
        self.height = int(height)
        self.num_leaves = 1 << self.height

    # ------------------------------------------------------------------

    def _validate(self, v: int) -> int:
        v = int(v)
        if not 0 <= v < self.num_leaves:
            raise ValueError(f"leaf id {v} out of range [0, {self.num_leaves})")
        return v

    def distance(self, a: int, b: int) -> float:
        a, b = self._validate(a), self._validate(b)
        if a == b:
            return 0.0
        return float(1 << lca_level(a, b))

    def distances(self, a: int, batch: np.ndarray) -> np.ndarray:
        a = self._validate(a)
        batch = np.asarray(batch, dtype=np.int64)
        xor = np.bitwise_xor(batch, np.int64(a))
        out = np.zeros(len(batch), dtype=np.float64)
        nz = xor != 0
        # bit_length(x) = floor(log2(x)) + 1; exact in float64 for x < 2^53,
        # and our ids are capped at 2^62 so route through exact exponent
        # extraction instead of log2 to stay safe at the top of the range.
        exponents = np.frexp(xor[nz].astype(np.float64))[1]  # == bit_length
        out[nz] = np.ldexp(1.0, exponents)
        return out

    # ------------------------------------------------------------------
    # Tree navigation helpers used by the hard-instance generator.
    # ------------------------------------------------------------------

    def leftmost_leaf_of_subtree(self, ancestor_level: int, path_prefix: int) -> int:
        """Leaf id of the leftmost leaf under the node at ``ancestor_level``
        whose root-to-node path is encoded by ``path_prefix`` (the high bits
        of all its leaves)."""
        return path_prefix << ancestor_level

    def subtree_leaves(self, ancestor_level: int, path_prefix: int) -> np.ndarray:
        """All leaf ids under the node at ``ancestor_level`` with the given
        high-bit prefix, in left-to-right order."""
        base = path_prefix << ancestor_level
        return base + np.arange(1 << ancestor_level, dtype=np.int64)

    def ancestor_prefix(self, leaf: int, level: int) -> int:
        """High-bit prefix identifying the ancestor of ``leaf`` at ``level``."""
        return self._validate(leaf) >> level
