"""r-net substrate: greedy nets, verification, and the full ``Y_0..Y_h``
hierarchy consumed by the G_net construction (Section 2)."""

from repro.nets.hierarchy import NetHierarchy, farthest_point_order
from repro.nets.rnet import RNetViolation, greedy_rnet, verify_rnet

__all__ = [
    "NetHierarchy",
    "RNetViolation",
    "farthest_point_order",
    "greedy_rnet",
    "verify_rnet",
]
