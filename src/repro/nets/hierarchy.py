"""The net hierarchy ``Y_0, ..., Y_h`` of Section 2.1 (equation (2)).

The G_net construction needs, for each level ``i in [0, h]``, a ``2^i``-net
``Y_i`` of ``P``.  The paper invokes Har-Peled & Mendel [15] to compute all
levels in ``O(n log(n Delta))`` time.  We substitute a single
farthest-point (Gonzalez) traversal, which yields **all** levels at once:

    Let ``p_1, p_2, ...`` be the traversal order and ``d_k`` the distance
    of ``p_k`` to ``{p_1, .., p_{k-1}}`` at selection time (``d_1 = inf``).
    The ``d_k`` are non-increasing, and for any ``r`` the prefix
    ``{p_1, .., p_k}`` with ``d_k >= r > d_{k+1}`` is an r-net of ``P``:

    * separation — each prefix point was ``>= d_k >= r`` from all earlier
      points when chosen;
    * covering — every non-prefix point is within ``d_{k+1} < r`` of the
      prefix (the traversal always picks the farthest remaining point).

Consequently the levels are *nested* (``Y_h ⊆ ... ⊆ Y_0``), which is a
convenience the paper does not require but never hurts.  The traversal
costs ``O(n^2)`` scalar distance evaluations (vectorized row-at-a-time);
see DESIGN.md §5 for why this substitution preserves every property the
proofs consume.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.base import Dataset

__all__ = ["NetHierarchy", "farthest_point_order"]


def farthest_point_order(
    dataset: Dataset, start: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Gonzalez farthest-point traversal of the whole dataset.

    Returns ``(order, insertion_distances)`` where ``order`` is a
    permutation of ``0..n-1`` and ``insertion_distances[k]`` is the
    distance of ``order[k]`` to the first ``k`` points at selection time
    (``inf`` for the first point).  Ties are broken toward the smaller
    point id, making the traversal deterministic.
    """
    n = dataset.n
    order = np.empty(n, dtype=np.intp)
    insertion = np.empty(n, dtype=np.float64)
    cover = np.full(n, np.inf)

    current = int(start)
    for k in range(n):
        order[k] = current
        insertion[k] = cover[current]
        d = dataset.distances_from_index_to_all(current)
        np.minimum(cover, d, out=cover)
        cover[current] = -np.inf  # never re-selected
        if k + 1 < n:
            current = int(np.argmax(cover))
    return order, insertion


class NetHierarchy:
    """All nets ``Y_0 .. Y_h`` of a dataset, as prefixes of one traversal.

    Parameters
    ----------
    dataset:
        A dataset normalized so the minimum inter-point distance is at
        least 2 (Section 2.1's convention); then ``Y_0 = P`` holds by
        definition and the hierarchy is exactly the paper's.
    height:
        ``h = ceil(log2 diam(P))`` (equation (1)).  If omitted it is
        derived from the largest insertion distance (which equals the
        eccentricity of the start point, a 2-approximation of the
        diameter, so the derived ``h`` may exceed the exact one by 1 —
        harmless: top levels just repeat the singleton net).
    """

    def __init__(self, dataset: Dataset, height: int | None = None, start: int = 0):
        self.dataset = dataset
        self.order, self.insertion_distances = farthest_point_order(dataset, start)
        finite = self.insertion_distances[1:]
        self._max_finite = float(finite.max()) if len(finite) else 0.0
        if height is None:
            if self._max_finite <= 0:
                raise ValueError("degenerate dataset: all points identical")
            height = max(1, math.ceil(math.log2(2.0 * self._max_finite)))
        self.height = int(height)

        # prefix_len[i] = |Y_i| = number of traversal points with insertion
        # distance >= 2^i.  insertion_distances is non-increasing after the
        # first entry, so a binary search suffices; we keep it simple.
        self._prefix_len = np.empty(self.height + 1, dtype=np.intp)
        for i in range(self.height + 1):
            self._prefix_len[i] = int(
                np.count_nonzero(self.insertion_distances >= float(2**i))
            )
        if self._prefix_len.min() < 1:
            raise ValueError("every net level must contain at least one point")

    # ------------------------------------------------------------------

    @property
    def max_insertion_distance(self) -> float:
        """Largest finite insertion distance = eccentricity of the start
        point, a 2-approximation of ``diam(P)`` from below."""
        return self._max_finite

    def level(self, i: int) -> np.ndarray:
        """Point ids of the ``2^i``-net ``Y_i`` (a traversal prefix)."""
        if not 0 <= i <= self.height:
            raise ValueError(f"level {i} outside [0, {self.height}]")
        return self.order[: self._prefix_len[i]]

    def level_size(self, i: int) -> int:
        if not 0 <= i <= self.height:
            raise ValueError(f"level {i} outside [0, {self.height}]")
        return int(self._prefix_len[i])

    def net_for_radius(self, r: float) -> np.ndarray:
        """Prefix that forms an r-net of ``P`` for an arbitrary ``r > 0``."""
        if r <= 0:
            raise ValueError("net radius must be positive")
        k = int(np.count_nonzero(self.insertion_distances >= r))
        return self.order[: max(k, 1)]

    @property
    def levels(self) -> list[np.ndarray]:
        """All levels ``[Y_0, ..., Y_h]``."""
        return [self.level(i) for i in range(self.height + 1)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        sizes = ", ".join(str(self.level_size(i)) for i in range(self.height + 1))
        return f"NetHierarchy(h={self.height}, sizes=[{sizes}])"
