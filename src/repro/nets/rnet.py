"""r-nets: the computational-geometry tool at the heart of Section 2.

Given ``X`` and ``r > 0``, an *r-net* ``Y`` of ``X`` satisfies

* separation: ``D(y1, y2) >= r`` for distinct ``y1, y2 in Y``;
* covering:   every ``x in X`` has some ``y in Y`` with ``D(x, y) <= r``.

The classical greedy construction (scan points, keep each point that is at
distance ``>= r`` from every kept point) produces an r-net: kept points
are pairwise ``>= r`` by construction, and every discarded point was
within ``< r`` of an earlier kept point.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Dataset

__all__ = ["greedy_rnet", "verify_rnet", "RNetViolation"]


class RNetViolation(AssertionError):
    """Raised by :func:`verify_rnet` with a description of the violation."""


def greedy_rnet(
    dataset: Dataset,
    r: float,
    candidate_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy r-net of the points ``candidate_ids`` (default: all of ``P``).

    Returns the chosen center ids in selection order.  Deterministic for a
    fixed candidate order.  Cost is ``O(|Y| * |X|)`` batched distance
    evaluations, where ``Y`` is the output net.
    """
    if r <= 0:
        raise ValueError("net radius r must be positive")
    if candidate_ids is None:
        candidate_ids = np.arange(dataset.n, dtype=np.intp)
    else:
        candidate_ids = np.asarray(candidate_ids, dtype=np.intp)
    m = len(candidate_ids)
    if m == 0:
        return candidate_ids

    # cover_dist[j] = distance from candidate j to the nearest chosen center.
    cover_dist = np.full(m, np.inf)
    chosen: list[int] = []
    while True:
        uncovered = np.flatnonzero(cover_dist >= r)
        if len(uncovered) == 0:
            break
        j = int(uncovered[0])
        center = int(candidate_ids[j])
        chosen.append(center)
        dists = dataset.distances_from_index(center, candidate_ids)
        np.minimum(cover_dist, dists, out=cover_dist)
    return np.array(chosen, dtype=np.intp)


def verify_rnet(
    dataset: Dataset,
    center_ids: np.ndarray,
    r: float,
    covered_ids: np.ndarray | None = None,
) -> None:
    """Raise :class:`RNetViolation` unless ``center_ids`` is an r-net of
    ``covered_ids`` (default: all of ``P``).

    Checks the separation property over all center pairs and the covering
    property for every point; quadratic, intended for tests.
    """
    centers = np.asarray(center_ids, dtype=np.intp)
    if covered_ids is None:
        covered_ids = np.arange(dataset.n, dtype=np.intp)
    covered = np.asarray(covered_ids, dtype=np.intp)

    if len(centers) == 0:
        if len(covered) > 0:
            raise RNetViolation("empty net cannot cover a non-empty set")
        return
    if len(np.unique(centers)) != len(centers):
        raise RNetViolation("net contains duplicate centers")
    if not np.isin(centers, covered).all():
        raise RNetViolation("net centers must come from the covered set")

    for k, c in enumerate(centers):
        others = np.delete(centers, k)
        if len(others) > 0:
            d = dataset.distances_from_index(int(c), others)
            if (d < r).any():
                bad = int(others[int(np.argmin(d))])
                raise RNetViolation(
                    f"separation violated: D({c}, {bad}) = {d.min()} < r = {r}"
                )

    # Covering: nearest center of every covered point must be within r.
    nearest = np.full(len(covered), np.inf)
    for c in centers:
        d = dataset.distances_from_index(int(c), covered)
        np.minimum(nearest, d, out=nearest)
    if (nearest > r).any():
        bad = int(covered[int(np.argmax(nearest))])
        raise RNetViolation(
            f"covering violated: point {bad} is {nearest.max()} > r = {r} "
            "away from every center"
        )
