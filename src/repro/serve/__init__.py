"""``repro.serve`` — a long-lived asyncio serving layer over one index.

The lockstep engines (and the compiled accel backends on top of them)
make *batches* 5-30x cheaper per query than single calls — but a
network front door receives queries one at a time.  This package closes
the gap with three cooperating pieces, all stdlib-only:

* :class:`~repro.serve.coalescer.Coalescer` — collects concurrent
  single-query requests that are compatible on ``(k, beam_width,
  rerank_factor, backend, filter)`` for up to ``max_wait_ms`` (or
  ``max_batch`` requests, whichever first) and dispatches them as **one**
  ``index.search()`` batch, scattering per-row results back to the
  awaiting futures.
* :class:`~repro.serve.cache.QueryCache` — an LRU over exact
  ``(query bytes, params, index generation)`` keys; hit/miss counters
  surface in ``/stats``.
* :class:`~repro.serve.state.IndexHolder` — snapshot-style
  reader/writer separation: every mutation builds against an
  :meth:`~repro.core.index.ProximityGraphIndex.snapshot` copy and
  atomically swaps the ``(index, generation)`` pair, so an in-flight
  search never observes a partially-mutated index.

:class:`~repro.serve.http.SearchServer` wires them behind a plain
HTTP/1.1 endpoint (``asyncio.start_server``, no new runtime deps):
``POST /search``, ``POST /add``, ``POST /delete``, ``GET /healthz``,
``GET /stats``.  Start it from the shell with ``python -m repro serve
INDEX`` or programmatically::

    from repro.serve import IndexHolder, SearchServer
    server = SearchServer(IndexHolder(index))
    asyncio.run(server.serve_forever("127.0.0.1", 8080))
"""

from repro.serve.cache import QueryCache
from repro.serve.coalescer import BatchKey, Coalescer
from repro.serve.http import SearchServer
from repro.serve.state import IndexHolder

__all__ = [
    "BatchKey",
    "Coalescer",
    "IndexHolder",
    "QueryCache",
    "SearchServer",
]
