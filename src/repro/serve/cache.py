"""An exact-match LRU over search responses.

Keys are ``(query bytes, shape, BatchKey, index generation)`` — byte
equality, not nearness: the cache only ever answers a repeat of the
*identical* request, so it can never change a result, only skip the
traversal.  The index generation in the key makes every mutation an
implicit full invalidation (a swapped index may answer differently;
stale entries simply stop being reachable and age out of the LRU).

All access happens on the event-loop thread, so there is no lock; the
structure is a plain ``OrderedDict`` moved-to-end on hit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["QueryCache"]


class QueryCache:
    """LRU of ``capacity`` entries with hit/miss counters.

    ``capacity=0`` disables caching (every :meth:`get` misses, `put`
    drops) — the serving layer still works, just uncached.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(query: np.ndarray, batch_key: Any, generation: int) -> Hashable:
        arr = np.ascontiguousarray(query, dtype=np.float64)
        return (arr.tobytes(), arr.shape, batch_key, generation)

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> dict[str, Any]:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
