"""The ``Coalescer`` — turn concurrent single queries into one batch.

Requests arrive one query at a time; the lockstep engines want batches.
The coalescer buckets pending requests by :class:`BatchKey` — the
parameters that must agree for two queries to share one
``index.search()`` call — and flushes a bucket when it reaches
``max_batch`` requests or its oldest request has waited ``max_wait_ms``,
whichever comes first.  The batch runs in a thread-pool executor (the
search is CPU-bound numpy; the event loop keeps accepting requests
while it runs), and each awaiting future receives its own row of the
:class:`~repro.core.search.SearchResult`.

Latency/throughput knobs: ``max_wait_ms`` bounds the queueing latency a
lone request pays (one tick), ``max_batch`` bounds per-flush lockstep
state.  Under load the bucket fills long before the timer fires and the
tick adds nothing.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.search import SearchParams

__all__ = ["BatchKey", "Coalescer"]


@dataclass(frozen=True)
class BatchKey:
    """Everything two requests must agree on to share one search call.

    Queries under the same key are answered by one
    ``index.search(Q, k, params)`` — so ``k``, every routing knob, and
    the filter must match exactly.  ``allowed_ids`` is a sorted tuple
    (order-insensitive: the filter is a set).
    """

    k: int = 1
    mode: str = "auto"
    beam_width: int | None = None
    rerank_factor: int | None = None
    backend: str = "auto"
    allowed_ids: tuple[int, ...] | None = None

    def params(self, seed: int | None = None) -> SearchParams:
        return SearchParams(
            mode=self.mode,
            beam_width=self.beam_width,
            rerank_factor=self.rerank_factor,
            backend=self.backend,
            seed=seed,
            allowed_ids=list(self.allowed_ids)
            if self.allowed_ids is not None
            else None,
        )


@dataclass
class RowResult:
    """One request's slice of a batch search."""

    ids: np.ndarray
    distances: np.ndarray
    evals: int
    batch_size: int  # how many requests shared the dispatch


@dataclass
class CoalescerStats:
    requests: int = 0
    batches: int = 0
    coalesced_requests: int = 0  # requests that shared a batch with others
    max_batch_size: int = 0
    batch_size_counts: dict[int, int] = field(default_factory=dict)
    errors: int = 0

    def record(self, size: int) -> None:
        self.batches += 1
        self.max_batch_size = max(self.max_batch_size, size)
        self.batch_size_counts[size] = self.batch_size_counts.get(size, 0) + 1
        if size > 1:
            self.coalesced_requests += size

    def summary(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.requests / self.batches, 2)
            if self.batches
            else 0.0,
            "batch_size_counts": {
                str(s): c for s, c in sorted(self.batch_size_counts.items())
            },
            "errors": self.errors,
        }


class Coalescer:
    """Gather compatible requests, dispatch one lockstep batch per tick.

    Single-threaded with the event loop: :meth:`submit` and the flush
    callbacks all run on the loop, so the pending dict needs no lock.
    Only the search itself leaves the loop (into ``executor``).
    """

    def __init__(
        self,
        holder: Any,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.holder = holder
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._executor = executor or ThreadPoolExecutor(max_workers=2)
        self._owns_executor = executor is None
        self._pending: dict[BatchKey, list[tuple[np.ndarray, asyncio.Future]]] = {}
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self.stats = CoalescerStats()

    def submit(self, query: np.ndarray, key: BatchKey) -> "asyncio.Future[RowResult]":
        """Enqueue one (already validated) query; await the future.

        The caller is responsible for front-door validation
        (``index.validate_queries``) *before* submitting — a bad query
        inside a batch would fail the whole dispatch and error every
        batch-mate's future.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        group = self._pending.setdefault(key, [])
        group.append((np.asarray(query, dtype=np.float64), fut))
        self.stats.requests += 1
        if len(group) >= self.max_batch:
            self._flush(key)
        elif len(group) == 1:
            self._timers[key] = loop.call_later(
                self.max_wait_ms / 1000.0, self._flush, key
            )
        return fut

    async def flush_all(self) -> None:
        """Dispatch every pending bucket now (shutdown/test hook)."""
        for key in list(self._pending):
            self._flush(key)

    def close(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        if self._owns_executor:
            self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------

    def _flush(self, key: BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        group = self._pending.pop(key, None)
        if not group:
            return
        loop = asyncio.get_running_loop()
        # Pin the index object for the whole batch: the holder may swap
        # mid-search, but this batch keeps traversing its own snapshot.
        index, _generation = self.holder.state
        Q = np.stack([q for q, _ in group])
        self.stats.record(len(group))
        # Vary the traversal seed per dispatched batch.  Start vertices
        # derive from the search seed, and with the library default
        # (seed=None -> the index's build seed) every 1-row batch would
        # greedy-descend from the *same* start vertex forever — fine for
        # the deterministic library API, but a serving layer answering a
        # query stream wants start diversity, and result quality must
        # not depend on how traffic happened to coalesce.
        seq = self.stats.batches
        task = loop.run_in_executor(
            self._executor,
            lambda: index.search(Q, k=key.k, params=key.params(seed=seq)),
        )
        task.add_done_callback(lambda t: self._scatter(t, group))

    def _scatter(
        self,
        task: "asyncio.Future",
        group: list[tuple[np.ndarray, asyncio.Future]],
    ) -> None:
        exc = task.exception() if not task.cancelled() else None
        if task.cancelled() or exc is not None:
            self.stats.errors += 1
            for _, fut in group:
                if not fut.done():
                    if exc is not None:
                        fut.set_exception(exc)
                    else:
                        fut.cancel()
            return
        result = task.result()
        for i, (_, fut) in enumerate(group):
            if not fut.done():  # client may have gone away
                fut.set_result(
                    RowResult(
                        ids=result.ids[i],
                        distances=result.distances[i],
                        evals=int(result.evals[i]),
                        batch_size=len(group),
                    )
                )
