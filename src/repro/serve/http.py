"""``SearchServer`` — the plain-HTTP front door (stdlib asyncio only).

One ``asyncio.start_server`` loop speaking minimal HTTP/1.1 with
keep-alive.  Request/response bodies are JSON.  Endpoints:

``POST /search``
    ``{"query": [..], "k": 3, "beam_width": .., "rerank_factor": ..,
    "backend": "..", "mode": "..", "allowed_ids": [..]}`` →
    ``{"ids": [..], "distances": [..], "evals": n, "batch_size": b,
    "cached": bool, "generation": g}``.  The query is validated (finite
    values, dimension) *before* it is enqueued, so a malformed request
    fails alone with a 400 instead of poisoning its coalesced
    batch-mates.
    Padding follows the ``SearchResult`` contract: when fewer than ``k``
    neighbors exist, the tail holds ``id == -1`` and ``distance ==
    null`` (JSON has no ``Infinity``; a ``-1`` id always pairs with a
    ``null`` distance).
``POST /add``
    ``{"points": [[..], ..], "ids": [..]?}`` → ``{"ids": [..],
    "generation": g}``.  Runs through the holder's snapshot-swap writer.
``POST /delete``
    ``{"ids": [..]}`` → ``{"deleted": n, "generation": g}``.  A batch
    with any unknown id 400s atomically — nothing is deleted.
``GET /healthz``
    ``{"status": "ok", "n": .., "active": .., "generation": g}``.
``GET /stats``
    Coalescer counters (batch-size histogram), cache hit/miss, index
    stats, uptime.

Writes run on a dedicated single worker thread (serialized anyway by
the holder's lock); searches run on the coalescer's executor.  The
event loop itself never blocks on index work.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Any

import numpy as np

from repro.serve.cache import QueryCache
from repro.serve.coalescer import BatchKey, Coalescer, RowResult
from repro.serve.state import IndexHolder

__all__ = ["SearchServer"]

_MAX_BODY = 64 * 1024 * 1024


class _BadRequest(ValueError):
    """Client error → 400 with ``{"error": ...}``."""


def _json_row(row: RowResult, generation: int, cached: bool) -> dict[str, Any]:
    ids = [int(v) for v in row.ids]
    return {
        "ids": ids,
        "distances": [
            None if v < 0 else float(d) for v, d in zip(ids, row.distances)
        ],
        "evals": row.evals,
        "batch_size": row.batch_size,
        "cached": cached,
        "generation": generation,
    }


def _parse_batch_key(body: dict[str, Any]) -> BatchKey:
    allowed = body.get("allowed_ids")
    if allowed is not None:
        if not isinstance(allowed, list):
            raise _BadRequest("allowed_ids must be a list of ids")
        allowed = tuple(sorted(int(v) for v in allowed))
    k = body.get("k", 1)
    if not isinstance(k, int) or k < 1:
        raise _BadRequest("k must be a positive integer")
    beam = body.get("beam_width")
    if beam is not None and (not isinstance(beam, int) or beam < 1):
        raise _BadRequest("beam_width must be a positive integer")
    rerank = body.get("rerank_factor")
    if rerank is not None and (not isinstance(rerank, int) or rerank < 1):
        raise _BadRequest("rerank_factor must be a positive integer")
    return BatchKey(
        k=k,
        mode=str(body.get("mode", "auto")),
        beam_width=beam,
        rerank_factor=rerank,
        backend=str(body.get("backend", "auto")),
        allowed_ids=allowed,
    )


def _parse_query(body: dict[str, Any]) -> np.ndarray:
    if "query" not in body:
        raise _BadRequest("missing 'query'")
    try:
        q = np.asarray(body["query"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"query is not numeric: {exc}") from exc
    if q.ndim != 1 or q.size == 0:
        raise _BadRequest(
            "query must be a flat non-empty list of coordinates "
            "(one query per /search request; concurrency is batched "
            "server-side)"
        )
    return q


class SearchServer:
    """The coalescer, cache, and holder behind one HTTP listener."""

    def __init__(
        self,
        holder: IndexHolder,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        search_workers: int = 2,
    ) -> None:
        self.holder = holder
        self.coalescer = Coalescer(
            holder,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            executor=ThreadPoolExecutor(max_workers=max(1, search_workers)),
        )
        self.coalescer._owns_executor = True  # shut down with the server
        self.cache = QueryCache(cache_size)
        self._writer_pool = ThreadPoolExecutor(max_workers=1)
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (useful with ``port=0``)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8080) -> None:
        bound_host, bound_port = await self.start(host, port)
        print(f"repro serve: listening on http://{bound_host}:{bound_port}")
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close every open keep-alive connection so the handler tasks
        # finish on their own (EOF) instead of being cancelled at loop
        # teardown, then wait for any in-flight request to complete.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self.coalescer.close()
        self._writer_pool.shutdown(wait=False)

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._route(method, path, body)
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            name, _, value = h.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if length > _MAX_BODY:
            raise asyncio.IncompleteReadError(b"", length)
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: HTTPStatus,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status.value} {status.phrase}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # -- routing --------------------------------------------------------

    async def _route(
        self, method: str, path: str, raw: bytes
    ) -> tuple[HTTPStatus, dict[str, Any]]:
        try:
            if method == "GET" and path == "/healthz":
                return HTTPStatus.OK, self._healthz()
            if method == "GET" and path == "/stats":
                return HTTPStatus.OK, self._stats()
            if method == "POST":
                try:
                    body = json.loads(raw.decode("utf-8")) if raw else {}
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise _BadRequest(f"invalid JSON body: {exc}") from exc
                if not isinstance(body, dict):
                    raise _BadRequest("body must be a JSON object")
                if path == "/search":
                    return HTTPStatus.OK, await self._search(body)
                if path == "/add":
                    return HTTPStatus.OK, await self._add(body)
                if path == "/delete":
                    return HTTPStatus.OK, await self._delete(body)
            return HTTPStatus.NOT_FOUND, {"error": f"no route {method} {path}"}
        except _BadRequest as exc:
            return HTTPStatus.BAD_REQUEST, {"error": str(exc)}
        except (ValueError, KeyError) as exc:
            # Front-door validation errors from the index itself.
            return HTTPStatus.BAD_REQUEST, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a 500 must not kill the loop
            return HTTPStatus.INTERNAL_SERVER_ERROR, {"error": str(exc)}

    async def _search(self, body: dict[str, Any]) -> dict[str, Any]:
        q = _parse_query(body)
        key = _parse_batch_key(body)
        # Pin one (index, generation) pair for validation, cache lookup,
        # and dispatch — never re-read the holder mid-request.
        index, generation = self.holder.state
        # Validate HERE, not inside the batch: one NaN query must fail
        # alone, not error every future sharing its dispatch.
        index.validate_queries(q.reshape(1, -1))
        cache_key = QueryCache.key(q, key, generation)
        hit = self.cache.get(cache_key)
        if hit is not None:
            out = dict(hit)
            out["cached"] = True
            return out
        row = await self.coalescer.submit(q, key)
        out = _json_row(row, generation, cached=False)
        self.cache.put(cache_key, out)
        return out

    async def _add(self, body: dict[str, Any]) -> dict[str, Any]:
        if "points" not in body:
            raise _BadRequest("missing 'points'")
        try:
            pts = np.asarray(body["points"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"points are not numeric: {exc}") from exc
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.size == 0:
            raise _BadRequest("points must be a non-empty (n, d) nested list")
        if not np.isfinite(pts).all():
            raise _BadRequest("points contain non-finite values")
        ids = body.get("ids")
        loop = asyncio.get_running_loop()
        new_ids = await loop.run_in_executor(
            self._writer_pool, lambda: self.holder.add(pts, ids=ids)
        )
        return {
            "ids": [int(v) for v in new_ids],
            "generation": self.holder.generation,
        }

    async def _delete(self, body: dict[str, Any]) -> dict[str, Any]:
        if "ids" not in body or not isinstance(body["ids"], list):
            raise _BadRequest("missing 'ids' (a list of external ids)")
        ids = [int(v) for v in body["ids"]]
        loop = asyncio.get_running_loop()
        try:
            removed = await loop.run_in_executor(
                self._writer_pool, lambda: self.holder.delete(ids)
            )
        except KeyError as exc:
            # Atomic: an unknown id fails the whole batch, zero deletes.
            raise _BadRequest(str(exc.args[0]) if exc.args else str(exc)) from exc
        return {"deleted": int(removed), "generation": self.holder.generation}

    def _healthz(self) -> dict[str, Any]:
        index, generation = self.holder.state
        return {
            "status": "ok",
            "n": int(index.n),
            "active": int(index.active_count),
            "generation": generation,
        }

    def _stats(self) -> dict[str, Any]:
        index, generation = self.holder.state
        return {
            "coalescer": self.coalescer.stats.summary(),
            "cache": self.cache.summary(),
            "index": {
                "n": int(index.n),
                "active": int(index.active_count),
                "tombstones": int(index.tombstone_count),
                "generation": generation,
            },
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }
