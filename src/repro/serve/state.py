"""``IndexHolder`` — snapshot-swap reader/writer separation.

The serving layer has concurrent readers (coalesced search batches
running in executor threads) and occasional writers (``/add``,
``/delete``).  The index facades' mutations are *not* atomic from a
reader's perspective — ``add`` rebinds ``dataset``/``graph``/store in
sequence, ``delete`` flips tombstone bits in place — so a search
overlapping a mutation on the same object could traverse a graph that
disagrees with its point array.

The holder removes the race wholesale instead of locking the hot path:

* readers grab an immutable ``(index, generation)`` pair via
  :attr:`state` — one attribute read, atomic under the GIL — and use
  that object for the whole search, never re-reading it mid-flight;
* writers serialize on a lock, build the mutation against an
  :meth:`~repro.core.index.ProximityGraphIndex.snapshot` copy, and only
  then swap the pair in.  A reader therefore sees either the whole
  mutation or none of it, and the old object stays fully consistent for
  every search still running on it (Python references keep it alive
  until the last one returns).

``generation`` increments on every swap; the query cache folds it into
its keys, so a swap implicitly invalidates every cached result.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["IndexHolder"]


class IndexHolder:
    """One mutable slot holding the currently-served index."""

    def __init__(self, index: Any) -> None:
        self._state: tuple[Any, int] = (index, 0)
        self._write_lock = threading.Lock()

    # -- readers --------------------------------------------------------

    @property
    def state(self) -> tuple[Any, int]:
        """The ``(index, generation)`` pair, read atomically.

        Callers must keep using the returned *object* — re-reading
        ``holder.state`` mid-request could observe a newer swap.
        """
        return self._state

    @property
    def current(self) -> Any:
        return self._state[0]

    @property
    def generation(self) -> int:
        return self._state[1]

    # -- writers --------------------------------------------------------

    def mutate(self, fn: Callable[[Any], Any]) -> Any:
        """Run ``fn(snapshot)`` and swap the mutated snapshot in.

        Writers serialize on the holder's lock (one snapshot-mutate-swap
        at a time, so no mutation is ever lost to a concurrent swap).
        If ``fn`` raises, nothing is swapped — the served index is
        untouched, matching the facades' own no-partial-mutation
        contract.  Returns whatever ``fn`` returned.
        """
        with self._write_lock:
            index, generation = self._state
            snap = index.snapshot()
            out = fn(snap)
            self._state = (snap, generation + 1)
            return out

    # Convenience wrappers the HTTP layer calls from its writer thread.

    def add(self, points: Any, ids: Sequence[int] | None = None) -> np.ndarray:
        return self.mutate(lambda ix: ix.add(points, ids=ids))

    def delete(self, ids: Any) -> int:
        return self.mutate(lambda ix: ix.delete(ids))

    def compact(self) -> None:
        self.mutate(lambda ix: ix.compact())
