"""Pluggable vector storage: how an index holds its vectors.

The layer between metrics and the graph engines::

    metrics  →  storage  →  engine  →  index / sharded

See :mod:`repro.storage.base` for the contract.  Most callers go
through one of the factories here:

* :func:`make_store` — train-and-encode in one step (the flat index's
  ``build(..., storage=...)`` path);
* :func:`train_store_params` / :func:`store_from_params` /
  :func:`encode_with_params` — the split form the sharded index uses to
  train codebooks **once** over the whole collection and share them
  across shards (each shard encodes its own rows against the shared
  training state);
* :func:`store_from_arrays` — reconstruction from a persisted or
  process-shipped wire form (spec dict + arrays).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.storage.base import (
    FlatQueryView,
    QuantizerTrainingError,
    QueryDistanceView,
    StorageConfigError,
    StorageError,
    VectorStore,
    decompose_metric,
)
from repro.storage.disk import DiskTierStore, advise_memmap
from repro.storage.flat import FLAT_DTYPES, FlatStore
from repro.storage.pq import PQParams, PQStore, encode_pq, train_pq
from repro.storage.sq8 import SQ8Params, SQ8Store, encode_sq8, train_sq8

__all__ = [
    "FLAT_DTYPES",
    "STORAGE_KINDS",
    "DiskTierStore",
    "FlatQueryView",
    "FlatStore",
    "PQParams",
    "PQStore",
    "QuantizerTrainingError",
    "QueryDistanceView",
    "SQ8Params",
    "SQ8Store",
    "StorageConfigError",
    "StorageError",
    "VectorStore",
    "advise_memmap",
    "decompose_metric",
    "encode_with_params",
    "make_store",
    "store_from_arrays",
    "store_from_params",
    "train_store_params",
    "validate_storage_options",
]

STORAGE_KINDS = ("flat", "sq8", "pq")

_PQ_OPTION_KEYS = frozenset({"m", "ks", "strict"})
_FLAT_OPTION_KEYS = frozenset({"dtype"})


def validate_storage_options(
    kind: str, options: dict[str, Any] | None = None, dim: int | None = None
) -> None:
    """Fail-fast, data-free validation of a storage configuration.

    The one home of the per-kind option rules: every front door (flat
    and sharded ``build``/``set_storage``, the factories here, the pq
    trainer) routes through it, so a bad quantizer config raises
    :class:`StorageConfigError` *before* any expensive work — in
    particular before a multi-process sharded graph build.  ``dim``
    (when already known) additionally checks the pq subspace split.
    """
    opts = dict(options or {})
    if kind not in STORAGE_KINDS:
        raise StorageConfigError(
            f"unknown storage kind {kind!r}; use one of {STORAGE_KINDS}"
        )
    if kind == "flat":
        unknown = set(opts) - _FLAT_OPTION_KEYS
        if unknown:
            raise StorageConfigError(
                f"unknown flat options {sorted(unknown)}; "
                f"valid: {sorted(_FLAT_OPTION_KEYS)}"
            )
        dtype = opts.get("dtype", "float64")
        if dtype not in FLAT_DTYPES:
            raise StorageConfigError(
                f"flat dtype must be one of {FLAT_DTYPES}, got {dtype!r}"
            )
        return
    if kind == "sq8":
        if opts:
            raise StorageConfigError(
                f"{kind} storage takes no options, got {sorted(opts)}"
            )
        return
    unknown = set(opts) - _PQ_OPTION_KEYS
    if unknown:
        raise StorageConfigError(
            f"unknown pq options {sorted(unknown)}; "
            f"valid: {sorted(_PQ_OPTION_KEYS)}"
        )
    ks = int(opts.get("ks", 256))
    if not 1 <= ks <= 256:
        raise StorageConfigError(
            f"pq centroid count ks={ks} must be in 1..256 (codes are uint8)"
        )
    m = opts.get("m")
    if m is not None and dim is not None:
        m = int(m)
        if m < 1 or m > dim:
            raise StorageConfigError(f"pq needs 1 <= m <= d={dim}, got m={m}")
        if dim % m != 0:
            raise StorageConfigError(
                f"pq subspace count m={m} must divide the dimension d={dim}"
            )


def _point_dim(points: Any) -> int | None:
    arr = np.asarray(points)
    return int(arr.shape[1]) if arr.ndim == 2 else None


def make_store(
    kind: str, metric: Any, points: Any, seed: int = 0, **options: Any
) -> VectorStore:
    """Train a store of ``kind`` over ``points`` and encode them."""
    validate_storage_options(kind, options, dim=_point_dim(points))
    if kind == "flat":
        return FlatStore(metric, points, **options)
    if kind == "sq8":
        return SQ8Store.train(metric, points, seed=seed, **options)
    return PQStore.train(metric, points, seed=seed, **options)


def train_store_params(
    kind: str, points: Any, seed: int = 0, **options: Any
) -> Any:
    """Training state only — no codes.  ``None`` for flat storage.

    The sharded build trains once over the *full* collection through
    this, then hands the same params to every shard's
    :func:`store_from_params`.
    """
    validate_storage_options(kind, options, dim=_point_dim(points))
    if kind == "flat":
        return None
    if kind == "sq8":
        return train_sq8(points)
    return train_pq(points, seed=seed, **options)


def encode_with_params(kind: str, params: Any, points: Any) -> np.ndarray | None:
    """Encode rows under frozen training state (``None`` for flat)."""
    if kind == "flat":
        return None
    if kind == "sq8":
        return encode_sq8(params, points)
    if kind == "pq":
        return encode_pq(params, points)
    raise StorageConfigError(
        f"unknown storage kind {kind!r}; use one of {STORAGE_KINDS}"
    )


def store_from_params(
    kind: str,
    metric: Any,
    points: Any,
    params: Any,
    codes: np.ndarray | None = None,
    options: dict[str, Any] | None = None,
    trained_on: int | None = None,
) -> VectorStore:
    """Assemble a store from shared training state (+ optional
    pre-encoded codes, e.g. a shared-arena view)."""
    if kind == "flat":
        return FlatStore(metric, points, **(options or {}))
    if codes is None:
        codes = encode_with_params(kind, params, points)
    if kind == "sq8":
        return SQ8Store(
            metric, params, codes, options=options, trained_on=trained_on
        )
    if kind == "pq":
        return PQStore(
            metric, params, codes, options=options, trained_on=trained_on
        )
    raise StorageConfigError(
        f"unknown storage kind {kind!r}; use one of {STORAGE_KINDS}"
    )


def store_from_arrays(
    spec: dict[str, Any], arrays: dict[str, np.ndarray], metric: Any, points: Any
) -> VectorStore:
    """Inverse of ``store.spec()`` + ``store.arrays()`` — the load path
    of persistence format v4 and of worker shard payloads."""
    kind = spec.get("kind", "flat")
    if kind == "flat":
        return FlatStore(metric, points, dtype=spec.get("dtype", "float64"))
    if kind == "sq8":
        params = SQ8Params(
            minv=np.asarray(arrays["minv"], dtype=np.float64),
            scale=np.asarray(arrays["scale"], dtype=np.float64),
        )
        return SQ8Store(
            metric,
            params,
            np.asarray(arrays["codes"], dtype=np.uint8),
            options=spec.get("options"),
            drift=int(spec.get("drift", 0)),
            trained_on=spec.get("trained_on"),
        )
    if kind == "pq":
        params = PQParams(
            codebooks=np.asarray(arrays["codebooks"], dtype=np.float64),
            ks_requested=int(spec.get("ks", arrays["codebooks"].shape[1])),
        )
        return PQStore(
            metric,
            params,
            np.asarray(arrays["codes"], dtype=np.uint8),
            options=spec.get("options"),
            drift=int(spec.get("drift", 0)),
            trained_on=spec.get("trained_on"),
        )
    raise StorageConfigError(f"unknown storage spec {spec!r}")
