"""The ``VectorStore`` abstraction — how an index *holds* its vectors.

Until this layer existed, every consumer of point data — the lockstep
engines, the index facade, the sharded fan-out — scanned the raw
float64 coordinate array through :class:`~repro.metrics.base.Dataset`.
That couples traversal cost to full-precision storage: memory footprint,
cache behavior, and distance throughput are all bounded by ``8 * d``
bytes per vector.  A :class:`VectorStore` decouples them.  It sits
*between* the metrics layer and the graph engines:

    metrics  →  **storage**  →  engine  →  index / sharded

A store answers one question: *given a query batch, what is the
(possibly approximate) distance from query i to stored vector v?*  The
engines consume that through a per-batch :class:`QueryDistanceView`,
bound once per search batch via :meth:`VectorStore.bind` — which is
where product quantization pays its asymmetric-distance (ADC) lookup
tables *once per batch* instead of once per hop.

Three stores ship:

* :class:`~repro.storage.flat.FlatStore` — the raw array, distances
  delegated verbatim to the metric.  Bit-identical to the
  pre-storage-layer behavior by construction.
* :class:`~repro.storage.sq8.SQ8Store` — per-dimension 8-bit scalar
  quantization (``8x`` smaller than float64); candidates are dequantized
  on the fly and fed to the *same* metric kernels, so every coordinate
  metric works.
* :class:`~repro.storage.pq.PQStore` — product quantization with
  k-means codebooks and ADC tables; ``m`` bytes per vector.

Approximate traversal pairs with an **exact rerank** stage in
``index.search()`` (see ``SearchParams.rerank_factor``): the graph walk
runs over codes, an over-fetched candidate pool survives to a single
exact-distance pass, and reported distances are always exact.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace, ScaledMetric

__all__ = [
    "StorageError",
    "StorageConfigError",
    "QuantizerTrainingError",
    "QueryDistanceView",
    "FlatQueryView",
    "VectorStore",
    "decompose_metric",
]


class StorageError(Exception):
    """Base class of every storage-layer error."""


class StorageConfigError(StorageError, ValueError):
    """A store was configured with parameters it cannot honor (wrong
    point shape, indivisible subspace count, unsupported metric, ...)."""


class QuantizerTrainingError(StorageError, ValueError):
    """Training data cannot support the requested quantizer (e.g. fewer
    points than centroids under ``strict=True``)."""


def decompose_metric(metric: MetricSpace) -> tuple[MetricSpace, float]:
    """Unwrap (possibly nested) :class:`ScaledMetric` layers.

    Returns ``(inner, factor)`` such that ``metric.distance(a, b) ==
    factor * inner.distance(a, b)``.  Quantized stores compute their
    approximations against the inner metric's geometry and multiply the
    normalization factor back at the end — exactly what the scaled
    metric itself does.
    """
    factor = 1.0
    while isinstance(metric, ScaledMetric):
        factor *= metric.factor
        metric = metric.inner
    return metric, factor


class QueryDistanceView:
    """Per-batch distance oracle the lockstep engines traverse against.

    Bound once per query batch by :meth:`VectorStore.bind`; holds
    whatever per-batch state the store needs (nothing for flat/SQ8, the
    ADC lookup tables for PQ).  Engines call exactly two methods:

    * :meth:`scalar` — distance from query row ``qi`` to stored vector
      ``v`` (start-vertex initialization);
    * :meth:`segmented` — the segmented many-to-many primitive: distance
      from query row ``q_rows[i]`` to each candidate of segment ``i``
      (one call per lockstep hop).

    Both report in the *metric's* units (normalization scale included),
    so engine semantics — budgets, tie-breaks, pool bounds — are
    storage-agnostic.

    The view is also the **bit-identity oracle** of the compiled accel
    backends (:mod:`repro.accel`): a compiled traversal makes its
    routing decisions in kernel arithmetic but re-evaluates every
    *reported* distance through :meth:`segmented` (and seeds start
    vertices from :meth:`scalar`), so whatever floats a view produces
    are the floats every backend returns.
    """

    def scalar(self, qi: int, v: int) -> float:
        raise NotImplementedError

    def segmented(
        self, q_rows: np.ndarray, cand: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class FlatQueryView(QueryDistanceView):
    """The exact view: delegate straight to the metric over raw points.

    This is the default every engine builds when no store is passed, and
    what :class:`~repro.storage.flat.FlatStore` binds — the calls are
    the very ``Dataset.distance_to_query`` / ``distances_to_queries``
    compositions the engines made before the storage layer existed, so
    results are bit-identical.
    """

    __slots__ = ("metric", "points", "Q")

    def __init__(self, metric: MetricSpace, points: Any, Q: Any) -> None:
        self.metric = metric
        self.points = points
        self.Q = Q

    def scalar(self, qi: int, v: int) -> float:
        return self.metric.distance(self.Q[qi], self.points[v])

    def segmented(
        self, q_rows: np.ndarray, cand: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        idx = np.asarray(cand, dtype=np.intp)
        rows = np.asarray(q_rows, dtype=np.intp)
        return self.metric.distances_many(self.Q[rows], self.points[idx], lens)


class VectorStore(ABC):
    """How an index holds (and measures distances over) its vectors.

    Concrete stores are :class:`~repro.storage.flat.FlatStore`,
    :class:`~repro.storage.sq8.SQ8Store`, and
    :class:`~repro.storage.pq.PQStore`; build them through
    :func:`repro.storage.make_store`.  The mutable-index facade keeps its
    store in sync with the collection: ``add()`` routes new points
    through :meth:`refresh` (encoding with the *frozen* training state
    and bumping :attr:`drift`), ``compact()`` through :meth:`retrained`
    (a fresh training pass over the survivors, drift reset to zero).
    """

    kind: str = "?"
    is_quantized: bool = False
    # How far search() over-fetches before the exact rerank when the
    # caller leaves SearchParams.rerank_factor unset.
    default_rerank_factor: int = 1

    #: Vectors encoded with training statistics older than the data —
    #: grows on every post-build add(), reset by a retrain (compact()).
    drift: int = 0
    #: The keyword options the store was trained with (replayed by
    #: retrained() so compaction keeps the configured quantizer).
    options: dict[str, Any]

    # -- traversal ------------------------------------------------------

    @abstractmethod
    def bind(self, Q: Any) -> QueryDistanceView:
        """Bind a query batch; per-batch work (PQ's ADC LUTs) runs here."""

    def rerank_distances(self, dataset: Any, q: Any, cand: np.ndarray) -> np.ndarray:
        """Exact distances from query ``q`` to candidate rows ``cand``.

        The hook the two-stage search's exact-rerank pass calls instead
        of touching ``dataset.points`` directly, so a store that knows
        *where* the full-precision vectors live can gather them well.
        The in-RAM default delegates to the dataset verbatim;
        :class:`~repro.storage.disk.DiskTierStore` overrides it with an
        ascending-offset gather over the memory-mapped cold tier.  Every
        override must return distances bit-identical to this default.
        """
        return dataset.distances_to_query(q, cand)

    # -- collection lifecycle ------------------------------------------

    @abstractmethod
    def refresh(self, dataset: Any, added: int) -> "VectorStore":
        """Absorb ``added`` new trailing points of ``dataset`` (encoded
        through the existing training state; quantized stores bump
        :attr:`drift`).  Returns the store to install (may be ``self``)."""

    @abstractmethod
    def retrained(self, dataset: Any, seed: int) -> "VectorStore":
        """A freshly trained store over ``dataset`` with the same
        options — the compaction path.  Drift resets to zero."""

    # -- accounting -----------------------------------------------------

    @property
    @abstractmethod
    def n(self) -> int:
        """Stored vector count."""

    @abstractmethod
    def traversal_bytes_per_vector(self) -> float:
        """Resident bytes per vector touched by graph traversal."""

    @abstractmethod
    def aux_bytes(self) -> int:
        """Fixed overhead (codebooks, per-dimension scales, ...)."""

    # -- wire form ------------------------------------------------------

    @property
    def codes(self) -> np.ndarray | None:
        """The per-vector code matrix (``None`` for exact stores)."""
        return None

    @abstractmethod
    def spec(self) -> dict[str, Any]:
        """JSON-safe description (kind, options, training stats)."""

    def param_arrays(self) -> dict[str, np.ndarray]:
        """Training-state arrays *excluding* codes (small; codebooks,
        scales).  Ships inline in worker payloads while codes may
        travel by shared-memory reference."""
        return {}

    def arrays(self) -> dict[str, np.ndarray]:
        """Every array persistence must write (codes included)."""
        out = dict(self.param_arrays())
        if self.codes is not None:
            out["codes"] = self.codes
        return out

    # ------------------------------------------------------------------

    def clone(self) -> "VectorStore":
        """A shallow copy whose lifecycle is independent of this store's.

        Valid because stores follow a rebind discipline: ``refresh()``
        *rebinds* attributes (``self._codes = concatenate(...)``) and
        never writes into an existing array, so a shallow copy shares
        immutable arrays safely.  Mutable per-instance containers
        (``options``) are copied.  This is the snapshot-isolation hook
        of ``ProximityGraphIndex.snapshot()``.
        """
        out = copy.copy(self)
        out.options = dict(self.options)
        return out

    def detach(self) -> "VectorStore":
        """Copy any view-backed code matrix into private memory.

        A sharded index keeps per-shard codes as views into a
        shared-memory arena that is unlinked when that index closes; a
        snapshot that outlives it must own its arrays.  Returns ``self``.
        """
        codes = self.codes
        if codes is not None and codes.base is not None:
            # Every code-holding store keeps its matrix in ``_codes``.
            self._codes = codes.copy()  # type: ignore[attr-defined]
        return self

    def summary(self) -> dict[str, Any]:
        """JSON-safe stats()-style summary."""
        return {
            "kind": self.kind,
            "quantized": self.is_quantized,
            "n": int(self.n),
            "bytes_per_vector": round(float(self.traversal_bytes_per_vector()), 2),
            "aux_bytes": int(self.aux_bytes()),
            "drift": int(self.drift),
        }
