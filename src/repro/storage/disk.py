"""``DiskTierStore`` — the two-tier wrapper behind beyond-RAM indexes.

The DiskANN observation, applied to this stack: graph traversal only
ever needs the *compact* representation (quantized codes, or the raw
rows for flat storage) plus the CSR adjacency, while the full-precision
vectors are touched exactly once per query — by the exact-rerank pass
over the over-fetched candidate pool.  So a persisted index can keep
its **hot tier** (codes + adjacency) resident and leave its **cold
tier** (the float64 ``vectors.bin``) on disk behind an ``np.memmap``,
and still answer bit-identically to the in-RAM index.

:class:`DiskTierStore` is the load-time wrapper persistence format v5
installs (see :mod:`repro.core.persistence`): it delegates the whole
:class:`~repro.storage.base.VectorStore` traversal surface to an inner
SQ8/PQ/flat store — same ``kind``, same ``codes``, same ``bind`` — so
the engines, the accel planner, and ``store.spec()`` round-trips are
all unchanged, and overrides exactly the three behaviors where disk
residency matters:

* :meth:`rerank_distances` gathers candidate rows from the cold tier in
  **ascending file-offset order** (one forward sweep over the mapping,
  minimizing page faults and readahead waste) and scatters the
  distances back to candidate order — bit-identical to the direct
  fancy-index because the metric's ``distances`` kernel is row-wise;
* :meth:`detach` is a no-op: the base class copies view-backed codes
  into private memory because shared-*arena* views die with their
  owner, but a file-backed mapping outlives every snapshot, so copying
  would defeat the whole tier;
* :meth:`refresh` **unwraps**: ``add()`` concatenates the memmap with
  the new rows into a fresh RAM array (copy-on-write materialization —
  nothing is ever written through the mapping), after which the cold
  tier no longer backs the collection and the inner store alone is the
  right store to install.

With flat inner storage there is no hot/cold split — traversal reads
the raw rows, i.e. the cold tier itself — so the wrapper still works
but every hop may fault a page; prefer quantized storage (``sq8``/
``pq``) for indexes that exceed RAM.
"""

from __future__ import annotations

import mmap as _mmap
from typing import Any

import numpy as np

from repro.storage.base import QueryDistanceView, VectorStore

__all__ = ["DiskTierStore", "advise_memmap"]


def advise_memmap(arr: Any, pattern: str) -> bool:
    """Best-effort ``madvise`` hint on a memmap-backed array.

    ``pattern`` is ``"random"`` (rerank gathers scattered rows — don't
    waste readahead) or ``"sequential"`` (a full forward sweep, e.g. a
    re-save).  Returns whether a hint was actually issued: the private
    ``._mmap`` handle and ``mmap.madvise`` both exist only on some
    platforms/numpy builds, and a plain ndarray (post-``refresh`` RAM
    tier) has neither — every miss is a silent no-op by design.
    """
    handle = getattr(arr, "_mmap", None)
    if handle is None or not hasattr(handle, "madvise"):
        return False
    advice = {
        "random": getattr(_mmap, "MADV_RANDOM", None),
        "sequential": getattr(_mmap, "MADV_SEQUENTIAL", None),
    }.get(pattern)
    if advice is None:
        return False
    try:
        handle.madvise(advice)
    except (OSError, ValueError):  # pragma: no cover - platform quirk
        return False
    return True


class DiskTierStore(VectorStore):
    """Two-tier store: inner (hot) codes + memory-mapped (cold) vectors.

    Built by the v5 loader, never by ``make_store`` — ``kind`` reports
    the *inner* kind so every consumer that dispatches on it (the accel
    planner, ``spec()`` round-trips, stats) sees the store it already
    knows.  ``vectors`` is the full-precision row array backing the
    exact-rerank stage; normally the read-only ``np.memmap`` over
    ``vectors.bin``, rebound to a plain RAM array the first time a
    mutation materializes the collection.
    """

    def __init__(self, inner: VectorStore, vectors: Any) -> None:
        if isinstance(inner, DiskTierStore):
            raise ValueError("DiskTierStore cannot wrap another DiskTierStore")
        if len(vectors) != inner.n:
            raise ValueError(
                f"cold tier holds {len(vectors)} vectors but the inner "
                f"store encodes {inner.n}"
            )
        self.inner = inner
        self.vectors = vectors
        # Rerank gathers are scattered even in ascending order; tell the
        # kernel not to read ahead aggressively.
        advise_memmap(vectors, "random")

    # -- delegated traversal surface ------------------------------------
    # Plain attribute delegation keeps the wrapper invisible: the accel
    # planner reads kind/codes/params/metric, persistence reads
    # spec()/arrays(), stats reads the accounting trio.

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def is_quantized(self) -> bool:  # type: ignore[override]
        return self.inner.is_quantized

    @property
    def default_rerank_factor(self) -> int:  # type: ignore[override]
        return self.inner.default_rerank_factor

    @property
    def drift(self) -> int:  # type: ignore[override]
        return self.inner.drift

    @property
    def options(self) -> dict[str, Any]:  # type: ignore[override]
        return self.inner.options

    @property
    def metric(self) -> Any:
        return self.inner.metric  # type: ignore[attr-defined]

    @property
    def params(self) -> Any:
        return self.inner.params  # type: ignore[attr-defined]

    def bind(self, Q: Any) -> QueryDistanceView:
        return self.inner.bind(Q)

    @property
    def n(self) -> int:
        return self.inner.n

    def traversal_bytes_per_vector(self) -> float:
        return self.inner.traversal_bytes_per_vector()

    def aux_bytes(self) -> int:
        return self.inner.aux_bytes()

    @property
    def codes(self) -> np.ndarray | None:
        return self.inner.codes

    def spec(self) -> dict[str, Any]:
        return self.inner.spec()

    def param_arrays(self) -> dict[str, np.ndarray]:
        return self.inner.param_arrays()

    def arrays(self) -> dict[str, np.ndarray]:
        return self.inner.arrays()

    def summary(self) -> dict[str, Any]:
        out = self.inner.summary()
        out["disk_backed"] = isinstance(self.vectors, np.memmap)
        return out

    # -- the disk-aware overrides ---------------------------------------

    def rerank_distances(self, dataset: Any, q: Any, cand: np.ndarray) -> np.ndarray:
        """Exact distances via an ascending-offset cold-tier gather.

        Sorting the candidate ids turns the rerank's page accesses into
        one forward sweep over ``vectors.bin``; the distances are
        scattered back to the caller's candidate order, so the result is
        bit-identical to ``dataset.distances_to_query(q, cand)`` (the
        metric's ``distances`` kernel is row-wise — row order cannot
        change any row's float).
        """
        cand = np.asarray(cand, dtype=np.intp)
        order = np.argsort(cand, kind="stable")
        gathered = np.asarray(self.vectors[cand[order]])
        out = np.empty(len(cand), dtype=np.float64)
        out[order] = dataset.metric.distances(q, gathered)
        return out

    def clone(self) -> "DiskTierStore":
        out = DiskTierStore.__new__(DiskTierStore)
        out.inner = self.inner.clone()
        out.vectors = self.vectors
        return out

    def detach(self) -> "DiskTierStore":
        # The base class copies view-backed codes because arena views
        # die with their owning index; a file mapping does not, and
        # copying it into RAM is exactly what this store exists to
        # avoid.  Arena-backed codes never occur here: this store is
        # only ever constructed by the v5 loader over file arrays.
        return self

    # -- collection lifecycle -------------------------------------------

    def refresh(self, dataset: Any, added: int) -> VectorStore:
        # add() already rebuilt dataset.points as a RAM concatenation of
        # the mapped rows and the new ones (copy-on-write; the mapping
        # is opened read-only and is never written through).  The cold
        # tier therefore no longer backs the collection: hand the index
        # the refreshed inner store and drop the wrapper.
        return self.inner.refresh(dataset, added)

    def retrained(self, dataset: Any, seed: int) -> VectorStore:
        return self.inner.retrained(dataset, seed)
