"""``FlatStore`` — full-precision vectors, the exact reference store.

The store every index gets by default.  It owns no data of its own: it
references the dataset's point array and delegates every distance to the
metric through :class:`~repro.storage.base.FlatQueryView` — the same
calls the engines made before the storage layer existed, so search
results are bit-identical to the pre-storage behavior.

``dtype="float32"`` opts into a SIMD-friendly half-width *traversal*
copy of the points: graph traversal measures distances against the
float32 array (rows upconvert to float64 on gather, exactly the SQ8
dequantize-on-gather shape, so the metric kernels are unchanged), while
the exact rerank pass and every reported distance still use the raw
float64 points.  That halves traversal-resident bytes per vector at a
recall cost bounded by float32 rounding (~1e-7 relative), pinned by
``tests/test_storage.py``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace
from repro.storage.base import FlatQueryView, StorageConfigError, VectorStore

__all__ = ["FlatStore"]

FLAT_DTYPES = ("float64", "float32")


class FlatStore(VectorStore):
    """The raw coordinate (or id) array, measured exactly — or, with
    ``dtype="float32"``, traversed through a float32 shadow copy and
    reranked exactly."""

    kind = "flat"
    is_quantized = False
    default_rerank_factor = 1

    def __init__(
        self, metric: MetricSpace, points: Any, dtype: str = "float64"
    ) -> None:
        if dtype not in FLAT_DTYPES:
            raise StorageConfigError(
                f"flat dtype must be one of {FLAT_DTYPES}, got {dtype!r}"
            )
        self.metric = metric
        self.points = points
        self.dtype = dtype
        self.drift = 0
        if dtype == "float32":
            self._traversal: Any = np.ascontiguousarray(
                np.asarray(points), dtype=np.float32
            )
            # Two-stage search: traverse the rounded coordinates, rerank
            # the reported pool against the exact float64 points.
            self.is_quantized = True
            self.options: dict[str, Any] = {"dtype": "float32"}
        else:
            self._traversal = points
            self.options = {}

    # -- traversal ------------------------------------------------------

    def bind(self, Q: Any) -> FlatQueryView:
        return FlatQueryView(self.metric, self._traversal, Q)

    # -- collection lifecycle ------------------------------------------

    def refresh(self, dataset: Any, added: int) -> "FlatStore":
        return FlatStore(dataset.metric, dataset.points, dtype=self.dtype)

    def retrained(self, dataset: Any, seed: int) -> "FlatStore":
        return FlatStore(dataset.metric, dataset.points, dtype=self.dtype)

    # -- accounting -----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.points)

    def traversal_bytes_per_vector(self) -> float:
        arr = np.asarray(self._traversal)
        if arr.dtype == object or not len(arr):
            return 0.0
        return arr.nbytes / len(arr)

    def aux_bytes(self) -> int:
        return 0

    # -- wire form ------------------------------------------------------

    def spec(self) -> dict[str, Any]:
        if self.dtype == "float64":
            return {"kind": "flat"}
        return {"kind": "flat", "dtype": self.dtype}
