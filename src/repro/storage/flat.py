"""``FlatStore`` — full-precision vectors, the exact reference store.

The store every index gets by default.  It owns no data of its own: it
references the dataset's point array and delegates every distance to the
metric through :class:`~repro.storage.base.FlatQueryView` — the same
calls the engines made before the storage layer existed, so search
results are bit-identical to the pre-storage behavior.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace
from repro.storage.base import FlatQueryView, VectorStore

__all__ = ["FlatStore"]


class FlatStore(VectorStore):
    """The raw coordinate (or id) array, measured exactly."""

    kind = "flat"
    is_quantized = False
    default_rerank_factor = 1

    def __init__(self, metric: MetricSpace, points: Any) -> None:
        self.metric = metric
        self.points = points
        self.drift = 0
        self.options: dict[str, Any] = {}

    # -- traversal ------------------------------------------------------

    def bind(self, Q: Any) -> FlatQueryView:
        return FlatQueryView(self.metric, self.points, Q)

    # -- collection lifecycle ------------------------------------------

    def refresh(self, dataset: Any, added: int) -> "FlatStore":
        return FlatStore(dataset.metric, dataset.points)

    def retrained(self, dataset: Any, seed: int) -> "FlatStore":
        return FlatStore(dataset.metric, dataset.points)

    # -- accounting -----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.points)

    def traversal_bytes_per_vector(self) -> float:
        arr = np.asarray(self.points)
        if arr.dtype == object or not len(arr):
            return 0.0
        return arr.nbytes / len(arr)

    def aux_bytes(self) -> int:
        return 0

    # -- wire form ------------------------------------------------------

    def spec(self) -> dict[str, Any]:
        return {"kind": "flat"}
