"""``PQStore`` — product quantization with ADC traversal.

The vector space is split into ``m`` contiguous subspaces of ``d / m``
dimensions each; a k-means codebook of up to 256 centroids is trained
per subspace, and every vector is stored as its ``m`` nearest-centroid
ids — **one byte per subspace**, the standard production compression for
proximity-graph ANN (the regime the fast-convergent proximity-graph
line in PAPERS.md optimizes for).

Distances are *asymmetric* (ADC): the query stays full precision, and
:meth:`PQStore.bind` precomputes one ``(m, ks)`` lookup table per query
— the per-subspace distance contribution from the query's subvector to
every centroid — **once per batch**.  Each traversal hop then reduces
to a table gather plus a row reduction, independent of ``d``.

Metric support follows the decomposition of the coordinate norms:

* Euclidean — contributions are per-subspace *squared* distances,
  combined by sum, finished by ``sqrt``;
* Minkowski ``Lp`` — per-subspace ``|.|^p`` sums, combined by sum,
  finished by ``** (1/p)``;
* Chebyshev — per-subspace max-abs, combined by ``max``.

All three are exact decompositions of the respective norm *given the
centroid approximation*; a wrapping normalization
:class:`~repro.metrics.base.ScaledMetric` multiplies through at the
end.  Other metrics raise :class:`StorageConfigError`.

Degenerate guards (tested): ``d % m != 0`` and ``ks > 256`` raise
:class:`StorageConfigError`; training sets smaller than the requested
centroid count *fall back* to ``ks = n`` (recorded in the spec as
``ks_effective``) — or raise :class:`QuantizerTrainingError` under
``strict=True`` — never divide by zero on an empty cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric
from repro.storage.base import (
    QuantizerTrainingError,
    QueryDistanceView,
    StorageConfigError,
    VectorStore,
    decompose_metric,
)
from repro.storage.sq8 import _coords

__all__ = ["PQParams", "PQStore", "train_pq", "encode_pq", "default_subspaces"]

_KMEANS_ITERS = 12


def default_subspaces(d: int) -> int:
    """Largest ``m <= min(d, 8)`` dividing ``d`` — one byte per subspace
    without padding."""
    for m in range(min(d, 8), 0, -1):
        if d % m == 0:
            return m
    return 1  # pragma: no cover - m=1 always divides


@dataclass(frozen=True)
class PQParams:
    """Frozen training state: the per-subspace codebooks."""

    codebooks: np.ndarray  # (m, ks, dsub) float64
    ks_requested: int

    @property
    def m(self) -> int:
        return int(self.codebooks.shape[0])

    @property
    def ks(self) -> int:
        return int(self.codebooks.shape[1])

    @property
    def dsub(self) -> int:
        return int(self.codebooks.shape[2])

    @property
    def dim(self) -> int:
        return self.m * self.dsub

    def nbytes(self) -> int:
        return int(self.codebooks.nbytes)


def _kmeans(data: np.ndarray, ks: int, rng: np.random.Generator) -> np.ndarray:
    """Plain seeded Lloyd iterations; empty clusters keep their previous
    centroid (they can re-acquire members next round)."""
    n = len(data)
    centroids = data[rng.choice(n, size=ks, replace=False)].copy()
    for _ in range(_KMEANS_ITERS):
        d2 = (
            (data**2).sum(axis=1)[:, None]
            - 2.0 * data @ centroids.T
            + (centroids**2).sum(axis=1)[None, :]
        )
        labels = np.argmin(d2, axis=1)
        sums = np.zeros_like(centroids)
        np.add.at(sums, labels, data)
        counts = np.bincount(labels, minlength=ks)
        filled = counts > 0
        new = centroids.copy()
        new[filled] = sums[filled] / counts[filled, None]
        if np.allclose(new, centroids):
            centroids = new
            break
        centroids = new
    return centroids


def train_pq(
    points: Any,
    m: int | None = None,
    ks: int = 256,
    seed: int = 0,
    strict: bool = False,
) -> PQParams:
    """Train per-subspace codebooks over ``points``.

    ``m`` defaults to :func:`default_subspaces`; ``ks`` is the centroid
    count per subspace (≤ 256 so codes fit a byte).  With fewer training
    points than centroids the codebook falls back to ``ks = n`` (every
    point its own centroid) unless ``strict=True``, which raises
    :class:`QuantizerTrainingError` instead.
    """
    from repro.storage import validate_storage_options

    x = _coords(points, "pq storage")
    n, d = x.shape
    if m is None:
        m = default_subspaces(d)
    m = int(m)
    ks = int(ks)
    validate_storage_options("pq", {"m": m, "ks": ks}, dim=d)
    if n < ks:
        if strict:
            raise QuantizerTrainingError(
                f"pq training needs at least ks={ks} points, got n={n} "
                "(pass a smaller ks, or strict=False to fall back to ks=n)"
            )
        ks_eff = n
    else:
        ks_eff = ks
    dsub = d // m
    rng = np.random.default_rng(seed)
    codebooks = np.empty((m, ks_eff, dsub), dtype=np.float64)
    for j in range(m):
        codebooks[j] = _kmeans(x[:, j * dsub : (j + 1) * dsub], ks_eff, rng)
    return PQParams(codebooks=codebooks, ks_requested=ks)


def encode_pq(params: PQParams, points: Any) -> np.ndarray:
    """Nearest-centroid code per subspace, ``(n, m)`` uint8."""
    x = _coords(points, "pq storage")
    if x.shape[1] != params.dim:
        raise StorageConfigError(
            f"pq store trained on {params.dim}-d points, got {x.shape[1]}-d"
        )
    m, dsub = params.m, params.dsub
    codes = np.empty((len(x), m), dtype=np.uint8)
    for j in range(m):
        sub = x[:, j * dsub : (j + 1) * dsub]
        cb = params.codebooks[j]
        d2 = (
            (sub**2).sum(axis=1)[:, None]
            - 2.0 * sub @ cb.T
            + (cb**2).sum(axis=1)[None, :]
        )
        codes[:, j] = np.argmin(d2, axis=1).astype(np.uint8)
    return codes


def _adc_mode(metric: MetricSpace) -> tuple[str, float | None, float]:
    """Resolve the LUT accumulation for a (possibly scaled) metric:
    ``(combine, power, factor)`` with combine in {"sum", "max"}."""
    inner, factor = decompose_metric(metric)
    if isinstance(inner, EuclideanMetric):
        return "sum", 2.0, factor
    if isinstance(inner, MinkowskiMetric):
        return "sum", float(inner.p), factor
    if isinstance(inner, ChebyshevMetric):
        return "max", None, factor
    raise StorageConfigError(
        "pq ADC supports Euclidean, Minkowski, and Chebyshev metrics "
        f"(optionally ScaledMetric-wrapped); got {type(inner).__name__}"
    )


class _PQView(QueryDistanceView):
    """Per-batch ADC state: one ``(m, ks)`` LUT per query."""

    __slots__ = ("codes", "luts", "combine", "power", "factor", "_cols")

    def __init__(
        self,
        metric: MetricSpace,
        params: PQParams,
        codes: np.ndarray,
        Q: Any,
    ) -> None:
        combine, power, factor = _adc_mode(metric)
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.shape[1] != params.dim:
            raise StorageConfigError(
                f"pq store trained on {params.dim}-d points, got "
                f"{Q.shape[1]}-d queries"
            )
        m, ks, dsub = params.m, params.ks, params.dsub
        luts = np.empty((len(Q), m, ks), dtype=np.float64)
        for j in range(m):
            diff = Q[:, None, j * dsub : (j + 1) * dsub] - params.codebooks[j][None]
            if combine == "max":
                luts[:, j, :] = np.abs(diff).max(axis=2)
            elif power == 2.0:
                luts[:, j, :] = np.einsum("qkd,qkd->qk", diff, diff)
            else:
                luts[:, j, :] = (np.abs(diff) ** power).sum(axis=2)
        self.codes = codes
        self.luts = luts
        self.combine = combine
        self.power = power
        self.factor = factor
        self._cols = np.arange(m, dtype=np.intp)

    def _finalize(self, acc: np.ndarray) -> np.ndarray:
        if self.combine == "sum":
            if self.power == 2.0:
                acc = np.sqrt(acc)
            else:
                acc = acc ** (1.0 / self.power)
        return self.factor * acc

    def scalar(self, qi: int, v: int) -> float:
        contrib = self.luts[qi, self._cols, self.codes[v]]
        acc = contrib.sum() if self.combine == "sum" else contrib.max()
        return float(self._finalize(np.asarray(acc)))

    def segmented(
        self, q_rows: np.ndarray, cand: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        rows = np.repeat(
            np.asarray(q_rows, dtype=np.intp), np.asarray(lens, dtype=np.int64)
        )
        c = self.codes[np.asarray(cand, dtype=np.intp)]
        contrib = self.luts[rows[:, None], self._cols[None, :], c]
        acc = contrib.sum(axis=1) if self.combine == "sum" else contrib.max(axis=1)
        return self._finalize(acc)


class PQStore(VectorStore):
    """Product-quantized vectors with per-batch ADC lookup tables."""

    kind = "pq"
    is_quantized = True
    default_rerank_factor = 4

    def __init__(
        self,
        metric: MetricSpace,
        params: PQParams,
        codes: np.ndarray,
        options: dict[str, Any] | None = None,
        drift: int = 0,
        trained_on: int | None = None,
    ) -> None:
        _adc_mode(metric)  # fail fast on unsupported metrics
        self.metric = metric
        self.params = params
        # Kernel-layout contract: C-contiguous uint8 codes, zero-copy
        # consumable by the compiled accel ADC kernels (mirrors SQ8Store).
        self._codes = np.ascontiguousarray(codes, dtype=np.uint8)
        self.options = dict(options or {})
        self.drift = int(drift)
        self.trained_on = int(trained_on if trained_on is not None else len(codes))

    @classmethod
    def train(
        cls, metric: MetricSpace, points: Any, seed: int = 0, **options: Any
    ) -> "PQStore":
        params = train_pq(points, seed=seed, **options)
        return cls(metric, params, encode_pq(params, points), options=options)

    # -- traversal ------------------------------------------------------

    def bind(self, Q: Any) -> _PQView:
        return _PQView(self.metric, self.params, self._codes, Q)

    # -- collection lifecycle ------------------------------------------

    def refresh(self, dataset: Any, added: int) -> "PQStore":
        fresh = _coords(dataset.points, "pq storage")[len(self._codes) :]
        if len(fresh) != added:
            raise StorageConfigError(
                f"store holds {len(self._codes)} codes but the dataset "
                f"grew to {len(dataset.points)} points (expected +{added})"
            )
        self._codes = np.concatenate([self._codes, encode_pq(self.params, fresh)])
        self.metric = dataset.metric
        self.drift += added
        return self

    def retrained(self, dataset: Any, seed: int) -> "PQStore":
        return PQStore.train(
            dataset.metric, dataset.points, seed=seed, **self.options
        )

    # -- accounting -----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._codes)

    def traversal_bytes_per_vector(self) -> float:
        return float(self.params.m)

    def aux_bytes(self) -> int:
        return self.params.nbytes()

    # -- wire form ------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The ``(n, m)`` uint8 code matrix, C-contiguous (the layout
        the compiled accel ADC kernels consume without copying)."""
        return self._codes

    def param_arrays(self) -> dict[str, np.ndarray]:
        return {"codebooks": self.params.codebooks}

    def spec(self) -> dict[str, Any]:
        return {
            "kind": "pq",
            "options": dict(self.options),
            "trained_on": int(self.trained_on),
            "drift": int(self.drift),
            "m": self.params.m,
            "ks": self.params.ks_requested,
            "ks_effective": self.params.ks,
            "dsub": self.params.dsub,
        }

    def summary(self) -> dict[str, Any]:
        out = super().summary()
        out["m"] = self.params.m
        out["ks"] = self.params.ks
        return out
