"""``SQ8Store`` — per-dimension 8-bit scalar quantization.

Each dimension is affinely mapped onto ``0..255`` by its training
min/range (``code = round((x - min) / scale)`` with ``scale = range /
255``), storing one ``uint8`` per dimension — ``8x`` smaller than the
float64 source.  Distances are *asymmetric*: the query stays full
precision and candidates are dequantized on the fly, then fed to the
**same** metric kernels the exact path uses — which is what makes SQ8
work for every coordinate metric (Euclidean, Chebyshev, Minkowski,
scaled or not) without per-metric code.

Degenerate guard: a constant dimension has zero range.  Its scale is
stored as 0 and encoding routes through a divide-safe substitute, so
the code is 0 and decoding reproduces the constant exactly — never a
division by zero or a NaN.  Points encoded after training (``add()``)
clamp into the trained range; the clamp loss is part of what the
:attr:`~repro.storage.base.VectorStore.drift` counter surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.metrics.base import MetricSpace
from repro.storage.base import QueryDistanceView, StorageConfigError, VectorStore

__all__ = ["SQ8Params", "SQ8Store", "train_sq8", "encode_sq8"]


@dataclass(frozen=True)
class SQ8Params:
    """Frozen training state: per-dimension offset and step."""

    minv: np.ndarray  # (d,) float64
    scale: np.ndarray  # (d,) float64; 0 marks a constant dimension

    @property
    def dim(self) -> int:
        return len(self.minv)

    @property
    def constant_dims(self) -> int:
        return int((self.scale == 0.0).sum())

    def nbytes(self) -> int:
        return int(self.minv.nbytes + self.scale.nbytes)


def _coords(points: Any, who: str) -> np.ndarray:
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise StorageConfigError(
            f"{who} needs (n, d) coordinate points, got shape {arr.shape}"
        )
    return arr


def train_sq8(points: Any) -> SQ8Params:
    """Per-dimension min/range over the training points."""
    x = _coords(points, "sq8 storage")
    minv = x.min(axis=0)
    rng = x.max(axis=0) - minv
    # Zero-range (constant) dimensions store scale 0: encode emits code
    # 0 through the safe divisor, decode reproduces minv exactly.
    scale = rng / 255.0
    return SQ8Params(minv=minv, scale=scale)


def encode_sq8(params: SQ8Params, points: Any) -> np.ndarray:
    """Encode rows under frozen params; out-of-range values clamp."""
    x = _coords(points, "sq8 storage")
    if x.shape[1] != params.dim:
        raise StorageConfigError(
            f"sq8 store trained on {params.dim}-d points, got {x.shape[1]}-d"
        )
    safe = np.where(params.scale > 0.0, params.scale, 1.0)
    q = np.rint((x - params.minv) / safe)
    np.clip(q, 0.0, 255.0, out=q)
    return q.astype(np.uint8)


def decode_sq8(params: SQ8Params, codes: np.ndarray) -> np.ndarray:
    return codes.astype(np.float64) * params.scale + params.minv


class _SQ8View(QueryDistanceView):
    """Dequantize candidates, then reuse the exact metric kernels."""

    __slots__ = ("metric", "params", "codes", "Q")

    def __init__(
        self,
        metric: MetricSpace,
        params: SQ8Params,
        codes: np.ndarray,
        Q: Any,
    ) -> None:
        self.metric = metric
        self.params = params
        self.codes = codes
        self.Q = np.asarray(Q, dtype=np.float64)

    def scalar(self, qi: int, v: int) -> float:
        row = decode_sq8(self.params, self.codes[v][None, :])
        return float(self.metric.distances(self.Q[qi], row)[0])

    def segmented(
        self, q_rows: np.ndarray, cand: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        idx = np.asarray(cand, dtype=np.intp)
        rows = np.asarray(q_rows, dtype=np.intp)
        decoded = decode_sq8(self.params, self.codes[idx])
        return self.metric.distances_many(self.Q[rows], decoded, lens)


class SQ8Store(VectorStore):
    """8-bit scalar-quantized vectors with asymmetric exact-kernel
    distances."""

    kind = "sq8"
    is_quantized = True
    default_rerank_factor = 2

    def __init__(
        self,
        metric: MetricSpace,
        params: SQ8Params,
        codes: np.ndarray,
        options: dict[str, Any] | None = None,
        drift: int = 0,
        trained_on: int | None = None,
    ) -> None:
        self.metric = metric
        self.params = params
        # Kernel-layout contract: the code matrix is always C-contiguous
        # uint8, so the compiled accel backends can hand it to their
        # kernels as a zero-copy view (persistence and callers may pass
        # slices or otherwise non-contiguous arrays).
        self._codes = np.ascontiguousarray(codes, dtype=np.uint8)
        self.options = dict(options or {})
        self.drift = int(drift)
        self.trained_on = int(trained_on if trained_on is not None else len(codes))

    @classmethod
    def train(
        cls, metric: MetricSpace, points: Any, seed: int = 0, **options: Any
    ) -> "SQ8Store":
        from repro.storage import validate_storage_options

        validate_storage_options("sq8", options)
        params = train_sq8(points)
        return cls(metric, params, encode_sq8(params, points))

    # -- traversal ------------------------------------------------------

    def bind(self, Q: Any) -> _SQ8View:
        return _SQ8View(self.metric, self.params, self._codes, Q)

    # -- collection lifecycle ------------------------------------------

    def refresh(self, dataset: Any, added: int) -> "SQ8Store":
        fresh = _coords(dataset.points, "sq8 storage")[len(self._codes) :]
        if len(fresh) != added:
            raise StorageConfigError(
                f"store holds {len(self._codes)} codes but the dataset "
                f"grew to {len(dataset.points)} points (expected +{added})"
            )
        self._codes = np.concatenate([self._codes, encode_sq8(self.params, fresh)])
        self.metric = dataset.metric
        self.drift += added
        return self

    def retrained(self, dataset: Any, seed: int) -> "SQ8Store":
        return SQ8Store.train(dataset.metric, dataset.points, seed=seed)

    # -- accounting -----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._codes)

    def traversal_bytes_per_vector(self) -> float:
        return float(self._codes.shape[1])

    def aux_bytes(self) -> int:
        return self.params.nbytes()

    # -- wire form ------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The ``(n, d)`` uint8 code matrix, C-contiguous (the layout
        the compiled accel kernels consume without copying)."""
        return self._codes

    def param_arrays(self) -> dict[str, np.ndarray]:
        return {"minv": self.params.minv, "scale": self.params.scale}

    def spec(self) -> dict[str, Any]:
        return {
            "kind": "sq8",
            "options": dict(self.options),
            "trained_on": int(self.trained_on),
            "drift": int(self.drift),
            "constant_dims": self.params.constant_dims,
        }

    def summary(self) -> dict[str, Any]:
        out = super().summary()
        out["constant_dims"] = self.params.constant_dims
        return out
