"""Seeded synthetic workloads (point sets and query sets) used by tests,
examples, and every benchmark."""

from repro.workloads.queries import (
    data_queries,
    far_queries,
    near_data_queries,
    uniform_queries,
)
from repro.workloads.synthetic import (
    exponential_cluster_chain,
    exponential_line,
    gaussian_clusters,
    geometric_clusters,
    grid_points,
    jittered_grid,
    low_doubling_curve,
    make_dataset,
    uniform_cube,
)

__all__ = [
    "data_queries",
    "exponential_cluster_chain",
    "exponential_line",
    "far_queries",
    "gaussian_clusters",
    "geometric_clusters",
    "grid_points",
    "jittered_grid",
    "low_doubling_curve",
    "make_dataset",
    "near_data_queries",
    "uniform_cube",
    "uniform_queries",
]
