"""Query-point generators.

A (1+eps)-PG must serve *every* query of the metric space from *every*
start vertex, so benches and tests draw queries from several regimes:
near the data (the easy case systems advertise), uniformly over the
bounding box, far outside it (stressing the top net levels), and the data
points themselves (where the exact NN is known to be distance 0).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_queries",
    "near_data_queries",
    "far_queries",
    "data_queries",
]


def uniform_queries(
    m: int, points: np.ndarray, rng: np.random.Generator, margin: float = 0.1
) -> np.ndarray:
    """``m`` uniform queries over the data bounding box inflated by
    ``margin`` per side."""
    lo, hi = points.min(axis=0), points.max(axis=0)
    pad = (hi - lo) * margin
    return rng.uniform(lo - pad, hi + pad, size=(m, points.shape[1]))


def near_data_queries(
    m: int, points: np.ndarray, rng: np.random.Generator, noise: float = 0.05
) -> np.ndarray:
    """``m`` queries sampled as data points plus Gaussian noise scaled by
    ``noise`` times the bounding-box diagonal."""
    idx = rng.integers(len(points), size=m)
    diag = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
    return points[idx] + rng.normal(0.0, max(noise * diag, 1e-12), size=(m, points.shape[1]))


def far_queries(
    m: int, points: np.ndarray, rng: np.random.Generator, factor: float = 4.0
) -> np.ndarray:
    """``m`` queries placed ``factor`` bounding-box diagonals away in
    random directions — exercises the coarse net levels."""
    center = points.mean(axis=0)
    diag = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
    dirs = rng.normal(size=(m, points.shape[1]))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    return center + dirs * diag * factor


def data_queries(
    m: int, points: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """``m`` data points reused as queries (exact NN distance 0)."""
    idx = rng.choice(len(points), size=min(m, len(points)), replace=False)
    return points[idx]
